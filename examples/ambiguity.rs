//! The generalization-ambiguity example of Sections 1.2 / 4.5.
//!
//! Run with: `cargo run -p sedex --release --example ambiguity`
//!
//! Source: `Inst(name, studentID, employeeID, courseId)` collapses graduate
//! students and professors into one table; the target splits them into
//! `Grad` and `Prof`. The paper shows ++Spicy produces the redundant
//! 4-tuple solution while the expected solution has 2 tuples. This example
//! runs BOTH engines and prints the difference.

use sedex::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Schemas of Section 1.2.
    let inst =
        RelationSchema::with_any_columns("Inst", &["name", "studentID", "employeeID", "courseId"])
            .primary_key(&["name"])?
            .foreign_key(&["courseId"], "Course")?;
    let course = RelationSchema::with_any_columns("Course", &["courseId", "credit"])
        .primary_key(&["courseId"])?;
    let source_schema = Schema::from_relations(vec![inst, course])?;

    let grad = RelationSchema::with_any_columns("Grad", &["name", "stId", "course"])
        .primary_key(&["name"])?;
    let prof = RelationSchema::with_any_columns("Prof", &["name", "empId", "course"])
        .primary_key(&["name"])?;
    let target_schema = Schema::from_relations(vec![grad, prof])?;

    let mut sigma = Correspondences::new();
    sigma.add_qualified("Inst", "name", "Grad", "name");
    sigma.add_qualified("Inst", "name", "Prof", "name");
    sigma.add_qualified("Inst", "studentID", "Grad", "stId");
    sigma.add_qualified("Inst", "employeeID", "Prof", "empId");
    sigma.add_qualified("Inst", "courseId", "Grad", "course");
    sigma.add_qualified("Inst", "courseId", "Prof", "course");

    // The instance of Section 1.2: I1 is a student, I2 an employee.
    let mut source = Instance::new(source_schema.clone());
    source.insert("Course", tuple!["c1", 3i64], ConflictPolicy::Reject)?;
    source.insert("Course", tuple!["c2", 2i64], ConflictPolicy::Reject)?;
    source.insert(
        "Inst",
        tuple!["I1", "st1", Value::Null, "c1"],
        ConflictPolicy::Reject,
    )?;
    source.insert(
        "Inst",
        tuple!["I2", Value::Null, "e1", "c2"],
        ConflictPolicy::Reject,
    )?;

    println!("== source ==\n{source}");

    // ++Spicy: mapping-level exchange fires both generalization mappings
    // for every tuple.
    let spicy = SpicyEngine::new(&source_schema, &target_schema, &sigma);
    println!("== ++Spicy mappings ==");
    for t in spicy.tgds() {
        println!("  {t}");
    }
    let (spicy_out, spicy_rep) = spicy.run(&source, &target_schema)?;
    println!("== ++Spicy result (redundant) ==\n{spicy_out}");
    println!("   size: {}\n", spicy_rep.stats);

    // SEDEX: per-tuple tree matching resolves the ambiguity.
    let (sedex_out, sedex_rep) = SedexEngine::new().exchange(&source, &target_schema, &sigma)?;
    println!("== SEDEX result (expected solution) ==\n{sedex_out}");
    println!("   size: {}", sedex_rep.stats);

    assert_eq!(spicy_out.relation("Grad").unwrap().len(), 2);
    assert_eq!(spicy_out.relation("Prof").unwrap().len(), 2);
    assert_eq!(sedex_out.relation("Grad").unwrap().len(), 1);
    assert_eq!(sedex_out.relation("Prof").unwrap().len(), 1);
    assert_eq!(sedex_rep.stats.nulls, 0);
    println!(
        "\n++Spicy materialized {} atoms ({} nulls); SEDEX {} atoms ({} nulls).",
        spicy_rep.stats.atoms(),
        spicy_rep.stats.nulls,
        sedex_rep.stats.atoms(),
        sedex_rep.stats.nulls
    );
    Ok(())
}
