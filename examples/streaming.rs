//! Streaming (pay-as-you-go) exchange with `SedexSession`: tuples arrive
//! one at a time — as from a CDC feed — and are exchanged immediately, with
//! the script repository persisting across arrivals.
//!
//! Run with: `cargo run -p sedex --release --example streaming`

use sedex::prelude::*;
use sedex::storage::Tuple;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sensors = RelationSchema::with_any_columns("sensors", &["sid", "site", "unit"])
        .primary_key(&["sid"])?;
    let readings = RelationSchema::with_any_columns("readings", &["rid", "sensor", "val"])
        .primary_key(&["rid"])?
        .foreign_key(&["sensor"], "sensors")?;
    let source = Schema::from_relations(vec![sensors, readings])?;

    let flat = RelationSchema::with_any_columns(
        "measurements",
        &["m_id", "m_sensor", "m_site", "m_unit", "m_val"],
    )
    .primary_key(&["m_id"])?;
    let target = Schema::from_relations(vec![flat])?;

    let sigma = Correspondences::from_name_pairs([
        ("rid", "m_id"),
        ("sensor", "m_sensor"),
        ("site", "m_site"),
        ("unit", "m_unit"),
        ("val", "m_val"),
    ]);

    let mut session = SedexSession::new(SedexConfig::default(), source, target, sigma)?;

    // Dimension data arrives first (or is preloaded).
    session.feed("sensors", tuple!["t1", "roof", "°C"])?;
    session.feed("sensors", tuple!["t2", "basement", "°C"])?;

    // Readings stream in; each is exchanged the moment it arrives.
    for i in 0..10_000 {
        let sensor = if i % 2 == 0 { "t1" } else { "t2" };
        session.exchange_tuple(
            "readings",
            Tuple::of([
                format!("r{i}"),
                sensor.to_string(),
                format!("{}", 15 + (i * 7) % 20),
            ]),
        )?;
    }

    println!(
        "streamed 10k readings → {} measurement rows, {} distinct scripts cached",
        session.target().relation("measurements").unwrap().len(),
        session.scripts_cached(),
    );
    let report = session.report();
    println!(
        "scripts: {} generated / {} reused ({:.2}% hit ratio); Tg {:?}, Te {:?}",
        report.scripts_generated,
        report.scripts_reused,
        report.reuse_percent(),
        report.tg,
        report.te
    );
    let (out, report) = session.finish();
    assert_eq!(out.relation("measurements").unwrap().len(), 10_000);
    assert!(report.reuse_percent() > 99.9);
    println!("\n\"The only space required is to store scripts\" — Fig. 1 of the paper, live.");
    Ok(())
}
