//! An auditable ETL run: CFDs loaded from their textual format, the
//! generated SQL transformation scripts printed for review, and the result
//! scored against an expected solution with the IQ quality module.
//!
//! Run with: `cargo run -p sedex --release --example etl_audit`

use sedex::core::scriptgen::generate_script;
use sedex::core::translate::{slot_values, translate};
use sedex::core::{quality, sql_statements, sql_template, CfdInterpreter, Matcher};
use sedex::prelude::*;
use sedex::treerep::{relation_tree, tuple_tree, SchemaForest, TreeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- hospital source with incomplete data ------------------------------
    let doctor =
        RelationSchema::with_any_columns("Doctor", &["did", "specialty"]).primary_key(&["did"])?;
    let patient =
        RelationSchema::with_any_columns("Patient", &["pid", "disease", "treatment", "doctor"])
            .primary_key(&["pid"])?
            .foreign_key(&["doctor"], "Doctor")?;
    let source_schema = Schema::from_relations(vec![doctor, patient])?;

    let mut src = Instance::new(source_schema);
    src.insert(
        "Doctor",
        tuple!["doc1", Value::Null],
        ConflictPolicy::Reject,
    )?;
    src.insert(
        "Patient",
        tuple!["p1", Value::Null, "dialysis", "doc1"],
        ConflictPolicy::Reject,
    )?;
    src.insert(
        "Patient",
        tuple!["p2", "flu", "rest", "doc1"],
        ConflictPolicy::Reject,
    )?;

    // --- CFDs in the textual format (the paper loads these from XML) -------
    let cfd_text = "\
# domain knowledge repairing the incomplete source
Patient.treatment = 'dialysis' => Patient.disease = 'kidney disease'
Patient.disease = 'kidney disease' => Doctor.specialty = 'Urologist'
";
    let cfds = CfdInterpreter::parse(cfd_text)?;
    println!("loaded {} CFDs from text\n", cfds.len());

    // --- target: one denormalized case table ------------------------------
    let cases = RelationSchema::with_any_columns(
        "cases",
        &[
            "case_id",
            "illness",
            "cure",
            "physician",
            "physician_specialty",
        ],
    )
    .primary_key(&["case_id"])?;
    let target = Schema::from_relations(vec![cases])?;
    let sigma = Correspondences::from_name_pairs([
        ("pid", "case_id"),
        ("disease", "illness"),
        ("treatment", "cure"),
        ("doctor", "physician"),
        ("specialty", "physician_specialty"),
    ]);

    // --- show the generated transformation script for the first patient ---
    // (CFD application is part of the engine; for the preview we apply them
    // to a scratch copy so the printed SQL matches what the engine runs.)
    let mut preview_src = src.clone();
    cfds.apply(&mut preview_src)?;
    let cfg = TreeConfig::default();
    let forest = SchemaForest::new(&target, &cfg)?;
    let matcher = Matcher::new(&forest, 2, 1);
    let tx = tuple_tree(&preview_src, "Patient", 0, &cfg)?;
    let m = matcher.best_match(&tx, &sigma).expect("target exists");
    let tr = relation_tree(&target, &m.relation, &cfg)?;
    let ty = translate(&tx, &tr, &sigma);
    let script = generate_script(&ty, &target);
    println!("== reusable SQL template (shape-keyed in the repository) ==");
    print!("{}", sql_template(&script, &target));
    println!("\n== bound for patient p1 ==");
    print!("{}", sql_statements(&script, &target, &slot_values(&tx)));

    // --- run the full exchange --------------------------------------------
    let engine = SedexEngine::new().with_cfds(cfds);
    let (out, report) = engine.exchange(&src, &target, &sigma)?;
    println!("\n== exchanged instance ==\n{out}");
    println!("report: {}", report.stats);

    // --- audit against the expected solution -------------------------------
    let mut expected = Instance::new(target.clone());
    expected.insert(
        "cases",
        tuple!["p1", "kidney disease", "dialysis", "doc1", "Urologist"],
        ConflictPolicy::Reject,
    )?;
    expected.insert(
        "cases",
        tuple!["p2", "flu", "rest", "doc1", "Urologist"],
        ConflictPolicy::Reject,
    )?;
    let q = quality::compare(&out, &expected);
    println!(
        "IQ audit: precision {:.2}, recall {:.2}, F1 {:.2}",
        q.precision(),
        q.recall(),
        q.f1()
    );
    assert_eq!(q.f1(), 1.0);
    println!("\nThe CFD-repaired exchange reproduces the expected solution exactly.");
    Ok(())
}
