//! Quickstart: a minimal end-to-end SEDEX exchange.
//!
//! Run with: `cargo run -p sedex --release --example quickstart`
//!
//! A tiny CRM migration: the legacy system stores contacts in one table;
//! the new system splits people from companies. SEDEX decides, per row,
//! which target table hosts the entity.

use sedex::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Schemas.
    let contacts = RelationSchema::with_any_columns(
        "contacts",
        &["cid", "display_name", "birthday", "vat_number"],
    )
    .primary_key(&["cid"])?;
    let source = Schema::from_relations(vec![contacts])?;

    let people = RelationSchema::with_any_columns("people", &["pid", "pname", "born"])
        .primary_key(&["pid"])?;
    let companies = RelationSchema::with_any_columns("companies", &["coid", "coname", "vat"])
        .primary_key(&["coid"])?;
    let target = Schema::from_relations(vec![people, companies])?;

    // 2. Property correspondences (what a schema matcher would produce).
    let sigma = Correspondences::from_name_pairs([
        ("cid", "pid"),
        ("cid", "coid"),
        ("display_name", "pname"),
        ("display_name", "coname"),
        ("birthday", "born"),
        ("vat_number", "vat"),
    ]);

    // 3. Source data: people have birthdays, companies have VAT numbers.
    let mut src = Instance::new(source);
    src.insert(
        "contacts",
        tuple!["c1", "Ada Lovelace", "1815-12-10", Value::Null],
        ConflictPolicy::Reject,
    )?;
    src.insert(
        "contacts",
        tuple!["c2", "Acme Corp", Value::Null, "VAT-0042"],
        ConflictPolicy::Reject,
    )?;
    src.insert(
        "contacts",
        tuple!["c3", "Grace Hopper", "1906-12-09", Value::Null],
        ConflictPolicy::Reject,
    )?;

    // 4. Exchange.
    let engine = SedexEngine::new();
    let (out, report) = engine.exchange(&src, &target, &sigma)?;

    println!("== target instance ==\n{out}");
    println!("== report ==");
    println!("  {}", report.stats);
    println!(
        "  scripts: {} generated, {} reused (hit ratio {:.0}%)",
        report.scripts_generated,
        report.scripts_reused,
        report.reuse_percent()
    );
    println!("  time: Tg {:?} + Te {:?}", report.tg, report.te);

    assert_eq!(out.relation("people").unwrap().len(), 2);
    assert_eq!(out.relation("companies").unwrap().len(), 1);
    assert_eq!(report.stats.nulls, 0);
    println!("\nEach contact landed in exactly one target table — no nulls, no duplicates.");
    Ok(())
}
