//! A realistic domain scenario: migrating an order-management schema into a
//! reporting warehouse, with CFD-based enrichment and multi-threading.
//!
//! Run with: `cargo run -p sedex --release --example warehouse_migration`
//!
//! Demonstrates: foreign-key chains (orders → customers → regions),
//! denormalization into a wide fact table, conditional functional
//! dependencies filling in missing data, script reuse at scale, and the
//! parallel tree-building mode.

use sedex::core::{Cfd, CfdInterpreter, SedexConfig, SedexEngine};
use sedex::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- OLTP source schema ---------------------------------------------
    let regions = RelationSchema::with_any_columns("regions", &["rid", "rname", "currency"])
        .primary_key(&["rid"])?;
    let customers =
        RelationSchema::with_any_columns("customers", &["cid", "cname", "segment", "region"])
            .primary_key(&["cid"])?
            .foreign_key(&["region"], "regions")?;
    let orders =
        RelationSchema::with_any_columns("orders", &["oid", "customer", "amount", "status"])
            .primary_key(&["oid"])?
            .foreign_key(&["customer"], "customers")?;
    let source_schema = Schema::from_relations(vec![regions, customers, orders])?;

    // --- warehouse target: one wide fact table + a dimension -------------
    let fact = RelationSchema::with_any_columns(
        "fact_orders",
        &[
            "order_id",
            "cust_name",
            "cust_segment",
            "region_name",
            "order_amount",
            "order_status",
        ],
    )
    .primary_key(&["order_id"])?
    .foreign_key(&["region_name"], "dim_region")?;
    let dim_region = RelationSchema::with_any_columns("dim_region", &["region_name2", "curr"])
        .primary_key(&["region_name2"])?;
    let target_schema = Schema::from_relations(vec![fact, dim_region])?;

    let mut sigma = Correspondences::new();
    sigma.add_names("oid", "order_id");
    sigma.add_names("cname", "cust_name");
    sigma.add_names("segment", "cust_segment");
    sigma.add_qualified("customers", "region", "fact_orders", "region_name");
    sigma.add_names("amount", "order_amount");
    sigma.add_names("status", "order_status");
    sigma.add_qualified("regions", "rid", "dim_region", "region_name2");
    sigma.add_names("currency", "curr");

    // --- populate the source ---------------------------------------------
    let mut src = Instance::new(source_schema);
    src.insert(
        "regions",
        tuple!["eu", "Europe", "EUR"],
        ConflictPolicy::Reject,
    )?;
    src.insert(
        "regions",
        tuple!["na", "North America", "USD"],
        ConflictPolicy::Reject,
    )?;
    // Asia-Pacific's currency is unknown — a CFD will fill it in.
    src.insert(
        "regions",
        tuple!["apac", "Asia-Pacific", Value::Null],
        ConflictPolicy::Reject,
    )?;
    for i in 0..200 {
        let region = ["eu", "na", "apac"][i % 3];
        // Every 7th customer has an unknown segment — a CFD will fill it.
        let segment = if i % 7 == 0 {
            Value::Null
        } else {
            Value::text(["smb", "enterprise"][i % 2])
        };
        src.insert(
            "customers",
            tuple![format!("c{i}"), format!("Customer {i}"), segment, region],
            ConflictPolicy::Reject,
        )?;
    }
    for i in 0..2000 {
        src.insert(
            "orders",
            tuple![
                format!("o{i}"),
                format!("c{}", i % 200),
                (100 + (i * 37) % 900) as i64,
                ["open", "shipped", "returned"][i % 3]
            ],
            ConflictPolicy::Reject,
        )?;
    }

    // --- CFDs: domain knowledge repairing the source ----------------------
    // Intra-table: Asia-Pacific region trades in USD.
    // Inter-table: a returned order implies its customer is "smb" when the
    // segment is unknown (toy rule for demonstration).
    let cfds = CfdInterpreter::load([
        Cfd::Intra {
            relation: "regions".into(),
            cond_col: "rname".into(),
            cond_val: Value::text("Asia-Pacific"),
            det_col: "currency".into(),
            det_val: Value::text("USD"),
        },
        Cfd::Inter {
            left_rel: "orders".into(),
            left_col: "status".into(),
            left_val: Value::text("returned"),
            right_rel: "customers".into(),
            right_col: "segment".into(),
            right_val: Value::text("smb"),
        },
    ]);

    // --- exchange, parallel ----------------------------------------------
    let engine = SedexEngine::with_config(SedexConfig {
        threads: 4,
        ..SedexConfig::default()
    })
    .with_cfds(cfds);
    let (out, report) = engine.exchange(&src, &target_schema, &sigma)?;

    println!(
        "fact_orders rows: {}",
        out.relation("fact_orders").unwrap().len()
    );
    println!(
        "dim_region rows:  {}",
        out.relation("dim_region").unwrap().len()
    );
    println!("stats: {}", report.stats);
    println!(
        "scripts: {} generated, {} reused ({:.1}% hit ratio)",
        report.scripts_generated,
        report.scripts_reused,
        report.reuse_percent()
    );
    println!("time: Tg {:?} + Te {:?}", report.tg, report.te);

    assert_eq!(out.relation("fact_orders").unwrap().len(), 2000);
    assert_eq!(out.relation("dim_region").unwrap().len(), 3);
    // Scripts are heavily reused: only a handful of distinct tuple shapes.
    assert!(report.reuse_percent() > 95.0);
    // The APAC currency was filled in by the CFD before exchange.
    let dim = out.relation("dim_region").unwrap();
    let apac = dim.lookup_pk(&[Value::text("apac")]).expect("apac row");
    assert_eq!(apac.values()[1], Value::text("USD"));
    println!("\nWarehouse migration complete — CFD-repaired, deduplicated, parallel.");
    Ok(())
}
