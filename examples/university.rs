//! The paper's running example (Figs. 2–8): the university scenario.
//!
//! Run with: `cargo run -p sedex --release --example university`
//!
//! Walks through the exact artifacts printed in the paper: the relation
//! trees of Fig. 4, the tuple trees of Fig. 5, the pq-gram distances of
//! Section 4.3 (0.71 / 0.76 / 1.0), the translated tree of Fig. 8 and the
//! final exchanged instance.

use sedex::core::{Matcher, SedexEngine};
use sedex::scenarios::university;
use sedex::treerep::{
    post_order_key, reduce_to_relation_tree, relation_tree, tuple_tree, SchemaForest, TreeConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = university::scenario();
    let inst = university::fig3_instance()?;
    let cfg = TreeConfig::default();

    println!("== Fig. 4: relation trees of the source schema ==");
    for rel in ["Student", "Prof", "Dep", "Registration"] {
        let rt = relation_tree(&scenario.source, rel, &cfg)?;
        println!("-- {rel} (height {}) --\n{}", rt.height(), rt.tree.render());
    }

    println!("== Fig. 5: tuple trees of the Student tuples ==");
    for row in 0..2 {
        let tt = tuple_tree(&inst, "Student", row, &cfg)?;
        println!("-- t{} --\n{}", row + 1, tt.tree.render());
    }

    println!("== Section 4.3: matching the first Registration tuple ==");
    let target_forest = SchemaForest::new(&scenario.target, &cfg)?;
    let matcher = Matcher::new(&target_forest, 2, 1);
    let tt = tuple_tree(&inst, "Registration", 0, &cfg)?;
    let m = matcher
        .best_match(&tt, &scenario.sigma)
        .expect("non-empty target forest");
    for (rel, d) in &m.ranking {
        println!("  dist(Tt, T{rel}) = {d:.2}");
    }
    println!("  → host relation: {}", m.relation);

    println!("\n== Section 4.4.2: script repository key ==");
    let st = tuple_tree(&inst, "Student", 0, &cfg)?;
    println!(
        "  key of first Student tuple: \"{}\"",
        post_order_key(&reduce_to_relation_tree(&st))
    );

    println!("\n== full exchange ==");
    let (out, report) = SedexEngine::new().exchange(&inst, &scenario.target, &scenario.sigma)?;
    println!("{out}");
    println!("report: {}", report.stats);
    println!(
        "processed {} tuples, skipped {} already-seen, reused {} scripts",
        report.tuples_processed, report.tuples_skipped_seen, report.scripts_reused
    );
    Ok(())
}
