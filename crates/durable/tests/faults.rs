//! Fault-injection tests: damage WAL segments and snapshots in every way a
//! crash (or bit rot) can — by corrupting files after the fact *and* by
//! injecting the failures live through a [`FaultPlan`] — and check that
//! recovery returns to the last consistent state, and never panics.

use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use sedex_core::SedexConfig;
use sedex_durable::{
    recover_shard_dir, DurableShard, FaultKind, FaultPlan, FaultPoint, FsyncPolicy, RecoveryReport,
    SessionSnapshot, WalRecord,
};
use sedex_scenarios::textfmt;
use sedex_storage::Instance;

const SCENARIO: &str = "\
[source]
Dep(dname*, building)
Student(sname*, program, dep->Dep)

[target]
Stu(student*, prog, dpt)

[correspondences]
sname <-> student
program <-> prog
dep <-> dpt

[data]
Dep: d1, b1
";

/// Fresh per-test directory under the system temp dir.
fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sedex-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn push_record(i: usize) -> WalRecord {
    let (relation, tuple) =
        textfmt::parse_data_line(&format!("Student: s{i}, p{i}, d1"), 1).unwrap();
    WalRecord::Push {
        session: "s1".to_owned(),
        relation,
        tuple,
    }
}

/// Stable rendering of an instance for byte-for-byte state comparison.
fn dump(instance: &Instance) -> String {
    let mut rels: Vec<(&str, _)> = instance.relations().collect();
    rels.sort_by_key(|(name, _)| name.to_owned());
    let mut out = String::new();
    for (name, rel) in rels {
        let mut rows: Vec<String> = rel.iter().map(|t| format!("{t:?}")).collect();
        rows.sort();
        for row in rows {
            out.push_str(&format!("{name}: {row}\n"));
        }
    }
    out
}

/// Write `open + n pushes` into a fresh shard directory.
fn seed_log(dir: &Path, n: usize) -> DurableShard {
    let mut shard = DurableShard::open(
        dir.to_path_buf(),
        FsyncPolicy::Off,
        &RecoveryReport::default(),
        None,
    )
    .unwrap();
    shard
        .append(&WalRecord::Open {
            session: "s1".to_owned(),
            scenario: SCENARIO.to_owned(),
        })
        .unwrap();
    for i in 0..n {
        shard.append(&push_record(i)).unwrap();
    }
    shard
}

#[test]
fn truncated_wal_tail_recovers_to_last_complete_record() {
    let dir = tmp_dir("torn");
    let shard = seed_log(&dir, 5);
    let wal = dir.join(format!("wal-{}.log", shard.generation()));
    drop(shard);

    // Crash mid-append: cut the file 3 bytes short of the last record.
    let len = std::fs::metadata(&wal).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    file.set_len(len - 3).unwrap();

    let (sessions, report) = recover_shard_dir(&dir, &SedexConfig::default(), None).unwrap();
    assert_eq!(report.torn_tails, 1);
    assert_eq!(report.records_replayed, 5); // open + 4 intact pushes
    assert_eq!(report.replay_errors, 0);
    assert_eq!(sessions.len(), 1);
    assert_eq!(sessions[0].tuples_in, 4);
    assert_eq!(
        sessions[0].session.target().relation("Stu").unwrap().len(),
        4
    );

    // The tear was truncated away: a second recovery is tear-free and
    // lands on the identical state.
    let before = dump(sessions[0].session.target());
    let (again, report2) = recover_shard_dir(&dir, &SedexConfig::default(), None).unwrap();
    assert_eq!(report2.torn_tails, 0);
    assert_eq!(dump(again[0].session.target()), before);
}

#[test]
fn flipped_crc_byte_stops_replay_at_the_corruption() {
    let dir = tmp_dir("crcflip");
    let mut shard = seed_log(&dir, 3);
    let wal = dir.join(format!("wal-{}.log", shard.generation()));
    // Note where the intact prefix ends, then append two more records.
    let intact = std::fs::metadata(&wal).unwrap().len();
    shard.append(&push_record(3)).unwrap();
    shard.append(&push_record(4)).unwrap();
    drop(shard);

    // Flip one byte inside the 5th record's payload.
    let mut bytes = std::fs::read(&wal).unwrap();
    let victim = intact as usize + 12;
    bytes[victim] ^= 0x40;
    std::fs::write(&wal, &bytes).unwrap();

    let (sessions, report) = recover_shard_dir(&dir, &SedexConfig::default(), None).unwrap();
    // Replay stops at the corrupt frame: the prefix (open + 3 pushes) is
    // applied, the rest of the segment is treated as a torn tail.
    assert_eq!(report.torn_tails, 1);
    assert_eq!(report.records_replayed, 4);
    assert_eq!(sessions.len(), 1);
    assert_eq!(
        sessions[0].session.target().relation("Stu").unwrap().len(),
        3
    );
}

#[test]
fn deleting_newest_snapshot_falls_back_to_previous_one() {
    let dir = tmp_dir("snaploss");
    let config = SedexConfig::default();

    // Generation 1: open + 3 pushes, then crash.
    drop(seed_log(&dir, 3));

    // Restart: recover, checkpoint (first snapshot), one more push.
    let (sessions, report) = recover_shard_dir(&dir, &config, None).unwrap();
    let mut shard = DurableShard::open(dir.clone(), FsyncPolicy::Off, &report, None).unwrap();
    let snaps: Vec<SessionSnapshot> = sessions
        .iter()
        .map(|s| SessionSnapshot {
            name: s.name.clone(),
            scenario: s.scenario.clone(),
            requests: s.requests,
            tuples_in: s.tuples_in,
            state: s.session.export_state(),
        })
        .collect();
    let watermark = shard.last_lsn();
    shard.checkpoint(watermark, snaps).unwrap();
    shard.append(&push_record(3)).unwrap();
    drop(shard);

    // Restart again: recover, checkpoint (second snapshot), one more push.
    let (sessions, report) = recover_shard_dir(&dir, &config, None).unwrap();
    let mut shard = DurableShard::open(dir.clone(), FsyncPolicy::Off, &report, None).unwrap();
    let snaps: Vec<SessionSnapshot> = sessions
        .iter()
        .map(|s| SessionSnapshot {
            name: s.name.clone(),
            scenario: s.scenario.clone(),
            requests: s.requests,
            tuples_in: s.tuples_in,
            state: s.session.export_state(),
        })
        .collect();
    let watermark = shard.last_lsn();
    shard.checkpoint(watermark, snaps).unwrap();
    shard.append(&push_record(4)).unwrap();
    let newest_snapshot = dir.join(format!("snapshot-{}.snap", shard.generation()));
    drop(shard);

    // Baseline: everything intact.
    let (baseline, report) = recover_shard_dir(&dir, &config, None).unwrap();
    assert_eq!(baseline.len(), 1);
    assert_eq!(
        baseline[0].session.target().relation("Stu").unwrap().len(),
        5
    );
    let baseline_dump = dump(baseline[0].session.target());
    let newest_gen = report.snapshot_generation.unwrap();

    // Lose the newest snapshot: recovery falls back to the previous one
    // and replays the retained WAL segments to the identical state.
    std::fs::remove_file(&newest_snapshot).unwrap();
    let (fallback, report) = recover_shard_dir(&dir, &config, None).unwrap();
    assert!(report.snapshot_generation.unwrap() < newest_gen);
    assert_eq!(fallback.len(), 1);
    assert_eq!(dump(fallback[0].session.target()), baseline_dump);
    assert_eq!(
        fallback[0].session.scripts_cached(),
        baseline[0].session.scripts_cached()
    );
}

#[test]
fn conservative_watermark_replays_idempotently_and_loses_nothing() {
    // The checkpoint protocol captures the watermark *before* exporting
    // session state, so records appended in between have `lsn > watermark`
    // even though their effects are already in the snapshot. Recovery must
    // re-replay them onto the snapshot state and land on the same result.
    let dir = tmp_dir("conswm");
    let config = SedexConfig::default();

    // open + 3 pushes (lsn 1..=4), capture the watermark, then two more
    // pushes land before the state export happens.
    let mut shard = seed_log(&dir, 3);
    let watermark = shard.last_lsn();
    shard.append(&push_record(3)).unwrap();
    shard.append(&push_record(4)).unwrap();

    // Export: the snapshot state includes all 5 pushes (recovery of the
    // live log is the simplest way to materialise it).
    let (sessions, _report) = recover_shard_dir(&dir, &config, None).unwrap();
    let baseline_dump = dump(sessions[0].session.target());
    let snaps: Vec<SessionSnapshot> = sessions
        .iter()
        .map(|s| SessionSnapshot {
            name: s.name.clone(),
            scenario: s.scenario.clone(),
            requests: s.requests,
            tuples_in: s.tuples_in,
            state: s.session.export_state(),
        })
        .collect();
    shard.checkpoint(watermark, snaps).unwrap();
    drop(shard);

    // Recovery replays the two post-watermark pushes onto a snapshot that
    // already contains them: idempotent, no errors, identical state.
    let (recovered, report) = recover_shard_dir(&dir, &config, None).unwrap();
    assert_eq!(report.records_replayed, 2);
    assert_eq!(report.replay_errors, 0);
    assert_eq!(recovered.len(), 1);
    assert_eq!(dump(recovered[0].session.target()), baseline_dump);
    assert_eq!(
        recovered[0].session.target().relation("Stu").unwrap().len(),
        5
    );
}

#[test]
fn injected_fsync_error_still_leaves_the_record_process_crash_safe() {
    // The frame is written to the OS before the fsync attempt, so an
    // injected fsync failure surfaces as an append error to the caller —
    // but a *process* crash after it still finds the record on disk.
    let dir = tmp_dir("fsyncfault");
    let plan = Arc::new(FaultPlan::new().rule(
        FaultPoint::WalFsync,
        2,
        FaultKind::Error(ErrorKind::Interrupted),
    ));
    let mut shard = DurableShard::open(
        dir.clone(),
        FsyncPolicy::Always,
        &RecoveryReport::default(),
        None,
    )
    .unwrap()
    .with_fault_plan(Some(Arc::clone(&plan)));
    shard
        .append(&WalRecord::Open {
            session: "s1".to_owned(),
            scenario: SCENARIO.to_owned(),
        })
        .unwrap(); // fsync #1 succeeds
    let err = shard.append(&push_record(0)).unwrap_err(); // fsync #2 injected
    assert_eq!(err.kind(), ErrorKind::Interrupted);
    assert_eq!(plan.injected(FaultPoint::WalFsync), 1);
    drop(shard);

    let (sessions, report) = recover_shard_dir(&dir, &SedexConfig::default(), None).unwrap();
    assert_eq!(report.replay_errors, 0);
    assert_eq!(sessions.len(), 1);
    // Both records made it to the page cache before the injected failure.
    assert_eq!(
        sessions[0].session.target().relation("Stu").unwrap().len(),
        1
    );
}

#[test]
fn injected_short_write_leaves_a_torn_frame_that_recovery_truncates() {
    let dir = tmp_dir("shortwrite");
    let plan = Arc::new(FaultPlan::new().rule(FaultPoint::WalAppend, 3, FaultKind::ShortWrite));
    let mut shard = DurableShard::open(
        dir.clone(),
        FsyncPolicy::Off,
        &RecoveryReport::default(),
        None,
    )
    .unwrap()
    .with_fault_plan(Some(Arc::clone(&plan)));
    shard
        .append(&WalRecord::Open {
            session: "s1".to_owned(),
            scenario: SCENARIO.to_owned(),
        })
        .unwrap();
    shard.append(&push_record(0)).unwrap();
    let err = shard.append(&push_record(1)).unwrap_err(); // half a frame hits disk
    assert_eq!(err.kind(), ErrorKind::WriteZero);
    drop(shard);

    // Exactly the artifact a crash mid-append leaves: recovery truncates
    // the torn frame and lands on the intact prefix.
    let (sessions, report) = recover_shard_dir(&dir, &SedexConfig::default(), None).unwrap();
    assert_eq!(report.torn_tails, 1);
    assert_eq!(report.records_replayed, 2);
    assert_eq!(
        sessions[0].session.target().relation("Stu").unwrap().len(),
        1
    );

    // The tear is gone; a second recovery is clean and identical.
    let (again, report2) = recover_shard_dir(&dir, &SedexConfig::default(), None).unwrap();
    assert_eq!(report2.torn_tails, 0);
    assert_eq!(
        dump(again[0].session.target()),
        dump(sessions[0].session.target())
    );
}

#[test]
fn injected_snapshot_write_failure_keeps_the_log_as_fallback() {
    let dir = tmp_dir("snapfault");
    let config = SedexConfig::default();
    let plan = Arc::new(FaultPlan::new().rule(
        FaultPoint::SnapshotWrite,
        1,
        FaultKind::Error(ErrorKind::Other),
    ));
    let mut shard = DurableShard::open(
        dir.clone(),
        FsyncPolicy::Off,
        &RecoveryReport::default(),
        None,
    )
    .unwrap()
    .with_fault_plan(Some(Arc::clone(&plan)));
    shard
        .append(&WalRecord::Open {
            session: "s1".to_owned(),
            scenario: SCENARIO.to_owned(),
        })
        .unwrap();
    for i in 0..3 {
        shard.append(&push_record(i)).unwrap();
    }
    let generation = shard.generation();

    // First checkpoint dies before the temp file exists; nothing rotated,
    // nothing deleted, the full log remains the recovery path.
    let (sessions, _) = recover_shard_dir(&dir, &config, None).unwrap();
    let snaps: Vec<SessionSnapshot> = sessions
        .iter()
        .map(|s| SessionSnapshot {
            name: s.name.clone(),
            scenario: s.scenario.clone(),
            requests: s.requests,
            tuples_in: s.tuples_in,
            state: s.session.export_state(),
        })
        .collect();
    let watermark = shard.last_lsn();
    assert!(shard.checkpoint(watermark, snaps.clone()).is_err());
    assert_eq!(shard.generation(), generation, "no rotation on failure");

    let (recovered, report) = recover_shard_dir(&dir, &config, None).unwrap();
    assert!(report.snapshot_generation.is_none());
    assert_eq!(report.records_replayed, 4);
    assert_eq!(
        recovered[0].session.target().relation("Stu").unwrap().len(),
        3
    );

    // The rule fired once; the retry succeeds and rotates normally.
    shard.checkpoint(watermark, snaps).unwrap();
    assert_eq!(shard.generation(), generation + 1);
    let (after, report) = recover_shard_dir(&dir, &config, None).unwrap();
    assert!(report.snapshot_generation.is_some());
    assert_eq!(
        dump(after[0].session.target()),
        dump(recovered[0].session.target())
    );
}

#[test]
fn empty_and_garbage_directories_never_panic() {
    let dir = tmp_dir("garbage");
    // Empty directory: nothing to recover.
    let (sessions, report) = recover_shard_dir(&dir, &SedexConfig::default(), None).unwrap();
    assert!(sessions.is_empty());
    assert_eq!(report.records_replayed, 0);

    // Garbage snapshot and WAL files: skipped, not fatal.
    std::fs::write(dir.join("snapshot-7.snap"), b"not a snapshot").unwrap();
    std::fs::write(dir.join("wal-7.log"), b"definitely not frames").unwrap();
    let (sessions, report) = recover_shard_dir(&dir, &SedexConfig::default(), None).unwrap();
    assert!(sessions.is_empty());
    assert!(report.snapshot_generation.is_none());
    assert_eq!(report.torn_tails, 1);
}
