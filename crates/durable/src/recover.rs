//! Crash recovery: rebuild live sessions from the latest valid snapshot plus
//! the WAL tail.
//!
//! Directory layout per shard (`<data-dir>/shard-<i>/`):
//!
//! * `snapshot-<g>.snap` — full state as of generation `g`'s start,
//! * `wal-<g>.log` — records appended during generation `g`.
//!
//! Recovery invariants:
//!
//! 1. pick the highest generation whose snapshot validates (CRC over the
//!    whole body); a deleted or corrupt newest snapshot falls back to the
//!    previous one, whose WAL segment is retained for exactly this purpose;
//! 2. replay every retained WAL segment in generation order, skipping
//!    records with `lsn ≤` the snapshot watermark (they are already
//!    reflected in it). The **lsn filter, not the generation, decides
//!    coverage**: the watermark is captured before session state is
//!    exported, so a record that raced the checkpoint can sit in a
//!    segment *older* than the snapshot's generation yet carry
//!    `lsn >` watermark — it must still be replayed;
//! 3. a torn tail (crash mid-append) truncates the segment at the last valid
//!    frame — records before the tear are applied, the tear is counted, and
//!    recovery continues with the state it has;
//! 4. replay is idempotent: feeds skip duplicates, exchanges merge at the
//!    target, script installs overwrite the same key, re-opens and re-closes
//!    are no-ops — so an operation that raced a checkpoint is safe to see
//!    twice.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

use sedex_core::{Observer, SedexConfig, SedexSession};
use sedex_scenarios::textfmt;

use sedex_storage::codec::ByteReader;

use crate::record::WalRecord;
use crate::snapshot::{decode_session_state, read_snapshot, SessionSnapshot};
use crate::wal::{read_segment, truncate_to};

/// A session rebuilt by recovery, plus its tenant bookkeeping.
pub struct RecoveredSession {
    /// Session name.
    pub name: String,
    /// The scenario body it was opened with (kept for future snapshots).
    pub scenario: String,
    /// Requests served before the crash.
    pub requests: u64,
    /// Tuples pushed or fed before the crash.
    pub tuples_in: u64,
    /// The live session, warm repository and all.
    pub session: SedexSession,
}

/// What recovery of one shard directory did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Generation of the snapshot recovery started from (`None`: no valid
    /// snapshot, replay started from empty state).
    pub snapshot_generation: Option<u64>,
    /// Sessions restored from the snapshot.
    pub snapshot_sessions: usize,
    /// WAL segments scanned.
    pub segments_scanned: usize,
    /// Records replayed (applied to sessions).
    pub records_replayed: u64,
    /// Records skipped because the snapshot already covered their LSN.
    pub records_skipped: u64,
    /// Torn tails found (and truncated) across segments.
    pub torn_tails: usize,
    /// Records that decoded but failed to apply (counted, not fatal).
    pub replay_errors: u64,
    /// Highest LSN seen anywhere (snapshot watermark or replayed record).
    pub max_lsn: u64,
    /// Highest generation seen among snapshot and WAL files.
    pub max_generation: u64,
    /// Per-kind record counts across scanned segments (`open`, `push`, …).
    pub record_kinds: Vec<(String, u64)>,
}

/// List `(generation, path)` pairs for files named `<prefix>-<g><suffix>`.
fn list_generations(
    dir: &Path,
    prefix: &str,
    suffix: &str,
) -> io::Result<Vec<(u64, std::path::PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name.strip_prefix(prefix) {
            if let Some(num) = rest.strip_suffix(suffix) {
                if let Ok(g) = num.parse::<u64>() {
                    out.push((g, entry.path()));
                }
            }
        }
    }
    out.sort_by_key(|&(g, _)| g);
    Ok(out)
}

/// Snapshot path for generation `g` inside `dir`.
pub fn snapshot_path(dir: &Path, generation: u64) -> std::path::PathBuf {
    dir.join(format!("snapshot-{generation}.snap"))
}

/// WAL segment path for generation `g` inside `dir`.
pub fn wal_path(dir: &Path, generation: u64) -> std::path::PathBuf {
    dir.join(format!("wal-{generation}.log"))
}

/// All snapshot files in `dir`, ascending by generation.
pub fn list_snapshots(dir: &Path) -> io::Result<Vec<(u64, std::path::PathBuf)>> {
    list_generations(dir, "snapshot-", ".snap")
}

/// All WAL segments in `dir`, ascending by generation.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, std::path::PathBuf)>> {
    list_generations(dir, "wal-", ".log")
}

/// Build a live session from a scenario body, feeding its `[data]` seeds —
/// the same semantics as the service's `OPEN` verb.
pub fn open_session(
    config: &SedexConfig,
    scenario: &str,
    observer: Option<&Arc<dyn Observer>>,
) -> Result<SedexSession, String> {
    let file = textfmt::parse_scenario(scenario).map_err(|e| format!("scenario {e}"))?;
    let s = file.scenario;
    let mut session = SedexSession::new(config.clone(), s.source, s.target, s.sigma)
        .map_err(|e| format!("session: {e}"))?
        .with_cfds(file.cfds);
    if let Some(obs) = observer {
        session = session.with_observer(Arc::clone(obs));
    }
    for (rel, inst) in file.instance.relations() {
        for t in inst.iter() {
            session
                .feed(rel, t.clone())
                .map_err(|e| format!("seed data: {e}"))?;
        }
    }
    Ok(session)
}

/// Rebuild a session from a [`SessionSnapshot`].
fn restore_session(
    config: &SedexConfig,
    snap: SessionSnapshot,
    observer: Option<&Arc<dyn Observer>>,
) -> Result<RecoveredSession, String> {
    let mut session = open_session(config, &snap.scenario, observer)?;
    session.restore_state(snap.state);
    Ok(RecoveredSession {
        name: snap.name,
        scenario: snap.scenario,
        requests: snap.requests,
        tuples_in: snap.tuples_in,
        session,
    })
}

/// Apply one replayed record to the session map. Errors are reported, not
/// propagated — recovery always returns the best state it can reach.
fn apply_record(
    sessions: &mut HashMap<String, RecoveredSession>,
    config: &SedexConfig,
    observer: Option<&Arc<dyn Observer>>,
    record: WalRecord,
) -> Result<(), String> {
    match record {
        WalRecord::Open { session, scenario } => {
            if sessions.contains_key(&session) {
                return Ok(()); // replay of an op the snapshot already covers
            }
            let live = open_session(config, &scenario, observer)?;
            sessions.insert(
                session.clone(),
                RecoveredSession {
                    name: session,
                    scenario,
                    requests: 0,
                    tuples_in: 0,
                    session: live,
                },
            );
            Ok(())
        }
        WalRecord::Feed {
            session,
            relation,
            tuple,
        } => {
            let s = sessions
                .get_mut(&session)
                .ok_or_else(|| format!("feed for unknown session `{session}`"))?;
            s.tuples_in += 1;
            s.session
                .feed(&relation, tuple)
                .map(|_| ())
                .map_err(|e| format!("feed {relation}: {e}"))
        }
        WalRecord::Push {
            session,
            relation,
            tuple,
        } => {
            let s = sessions
                .get_mut(&session)
                .ok_or_else(|| format!("push for unknown session `{session}`"))?;
            s.tuples_in += 1;
            s.session
                .exchange_tuple(&relation, tuple)
                .map(|_| ())
                .map_err(|e| format!("push {relation}: {e}"))
        }
        WalRecord::ScriptAdd {
            session,
            key,
            script,
        } => {
            let s = sessions
                .get_mut(&session)
                .ok_or_else(|| format!("script for unknown session `{session}`"))?;
            s.session.install_script(key, script);
            Ok(())
        }
        WalRecord::Flush { session } => {
            let s = sessions
                .get_mut(&session)
                .ok_or_else(|| format!("flush for unknown session `{session}`"))?;
            s.session
                .exchange_pending()
                .map(|_| ())
                .map_err(|e| format!("flush: {e}"))
        }
        WalRecord::Close { session } => {
            sessions.remove(&session);
            Ok(())
        }
        WalRecord::Install {
            session,
            scenario,
            requests,
            tuples_in,
            state,
        } => {
            // A whole inherited session (migration handoff or standby
            // promotion). Replay overwrites any existing entry: the record
            // carries the complete state, so redoing it is idempotent.
            let decoded = decode_session_state(&mut ByteReader::new(&state))
                .map_err(|e| format!("install state for `{session}`: {e:?}"))?;
            let mut live = open_session(config, &scenario, observer)?;
            live.restore_state(decoded);
            sessions.insert(
                session.clone(),
                RecoveredSession {
                    name: session,
                    scenario,
                    requests,
                    tuples_in,
                    session: live,
                },
            );
            Ok(())
        }
    }
}

/// Apply one WAL record to a map of live sessions — the same replay path
/// crash recovery uses, exposed for remote replay: a cluster standby feeds
/// replicated records through here to keep warm shadow sessions of a peer.
pub fn replay_record(
    sessions: &mut HashMap<String, RecoveredSession>,
    config: &SedexConfig,
    observer: Option<&Arc<dyn Observer>>,
    record: WalRecord,
) -> Result<(), String> {
    apply_record(sessions, config, observer, record)
}

/// Recover one shard directory: latest valid snapshot + WAL tail replay.
/// Torn tails are truncated (best-effort) and counted. Returns the live
/// sessions (sorted by name) and a report of what happened.
pub fn recover_shard_dir(
    dir: &Path,
    config: &SedexConfig,
    observer: Option<&Arc<dyn Observer>>,
) -> io::Result<(Vec<RecoveredSession>, RecoveryReport)> {
    let mut report = RecoveryReport::default();
    let mut sessions: HashMap<String, RecoveredSession> = HashMap::new();
    let mut kinds: HashMap<&'static str, u64> = HashMap::new();

    let snapshots = list_snapshots(dir)?;
    let segments = list_segments(dir)?;
    report.max_generation = snapshots
        .iter()
        .chain(segments.iter())
        .map(|&(g, _)| g)
        .max()
        .unwrap_or(0);

    // 1. newest snapshot that validates wins; corrupt/missing ones fall
    //    through to older generations.
    let mut base_lsn = 0u64;
    for &(g, ref path) in snapshots.iter().rev() {
        if let Some(snap) = read_snapshot(path)? {
            base_lsn = snap.lsn;
            report.snapshot_generation = Some(g);
            report.snapshot_sessions = snap.sessions.len();
            report.max_lsn = snap.lsn;
            for s in snap.sessions {
                match restore_session(config, s, observer) {
                    Ok(rs) => {
                        sessions.insert(rs.name.clone(), rs);
                    }
                    Err(_) => report.replay_errors += 1,
                }
            }
            break;
        }
    }

    // 2. replay every retained segment in generation order. LSNs are
    //    monotone across generations, and the per-record `lsn <= base_lsn`
    //    skip below — not the segment's generation — decides what the
    //    snapshot already covers: a record that raced a checkpoint lives in
    //    an older-generation segment but carries an LSN above the
    //    conservatively-captured watermark, and must be replayed.
    for &(_g, ref path) in &segments {
        report.segments_scanned += 1;
        let seg = read_segment(path)?;
        if seg.torn.is_some() {
            report.torn_tails += 1;
            let _ = truncate_to(path, seg.valid_bytes);
        }
        for payload in &seg.payloads {
            let (lsn, record) = match WalRecord::decode(payload) {
                Ok(ok) => ok,
                Err(_) => {
                    report.replay_errors += 1;
                    continue;
                }
            };
            *kinds.entry(record.kind_name()).or_insert(0) += 1;
            report.max_lsn = report.max_lsn.max(lsn);
            if lsn <= base_lsn {
                report.records_skipped += 1;
                continue;
            }
            match apply_record(&mut sessions, config, observer, record) {
                Ok(()) => report.records_replayed += 1,
                Err(_) => report.replay_errors += 1,
            }
        }
    }

    // Replayed exchanges regenerate scripts; drain the "new" markers so the
    // service does not re-log scripts that are about to be checkpointed.
    let mut out: Vec<RecoveredSession> = sessions.into_values().collect();
    for s in &mut out {
        let _ = s.session.take_new_scripts();
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    let mut record_kinds: Vec<(String, u64)> =
        kinds.into_iter().map(|(k, v)| (k.to_owned(), v)).collect();
    record_kinds.sort();
    report.record_kinds = record_kinds;
    Ok((out, report))
}

/// Recover every `shard-<i>` directory under `data_dir`. Returns the shard
/// index alongside each directory's result, ascending by index.
pub fn recover_data_dir(
    data_dir: &Path,
    config: &SedexConfig,
    observer: Option<&Arc<dyn Observer>>,
) -> io::Result<Vec<(u64, Vec<RecoveredSession>, RecoveryReport)>> {
    let mut out = Vec::new();
    if !data_dir.exists() {
        return Ok(out);
    }
    let mut shard_dirs = list_generations(data_dir, "shard-", "")?;
    shard_dirs.retain(|(_, p)| p.is_dir());
    for (idx, dir) in shard_dirs {
        let (sessions, report) = recover_shard_dir(&dir, config, observer)?;
        out.push((idx, sessions, report));
    }
    Ok(out)
}

/// Human-readable inspection of a data directory — the `sedex recover <dir>`
/// command. Replays into throwaway sessions; the only file modification is
/// the same best-effort torn-tail truncation a server restart performs.
pub fn inspect(data_dir: &Path) -> io::Result<String> {
    use std::fmt::Write as _;
    let mut out = String::new();
    let config = SedexConfig::default();
    let mut shard_dirs = list_generations(data_dir, "shard-", "")?;
    shard_dirs.retain(|(_, p)| p.is_dir());
    if shard_dirs.is_empty() {
        let _ = writeln!(out, "no shard directories under {}", data_dir.display());
        return Ok(out);
    }
    let mut total_sessions = 0usize;
    for (idx, dir) in shard_dirs {
        let snapshots = list_snapshots(&dir)?;
        let segments = list_segments(&dir)?;
        let (sessions, report) = recover_shard_dir(&dir, &config, None)?;
        let _ = writeln!(
            out,
            "shard {idx}: {} snapshot(s), {} wal segment(s)",
            snapshots.len(),
            segments.len()
        );
        match report.snapshot_generation {
            Some(g) => {
                let _ = writeln!(
                    out,
                    "  snapshot: generation {g}, {} session(s)",
                    report.snapshot_sessions
                );
            }
            None => {
                let _ = writeln!(out, "  snapshot: none valid (replay from empty)");
            }
        }
        let _ = writeln!(
            out,
            "  wal: {} replayed, {} skipped (≤ watermark), {} torn tail(s), {} error(s)",
            report.records_replayed,
            report.records_skipped,
            report.torn_tails,
            report.replay_errors
        );
        if !report.record_kinds.is_empty() {
            let kinds: Vec<String> = report
                .record_kinds
                .iter()
                .map(|(k, n)| format!("{k}={n}"))
                .collect();
            let _ = writeln!(out, "  records: {}", kinds.join(" "));
        }
        for s in &sessions {
            let r = s.session.report_snapshot();
            let _ = writeln!(
                out,
                "  session {}: {} tuples in, {} scripts cached, hit ratio {:.3}",
                s.name,
                s.tuples_in,
                s.session.scripts_cached(),
                r.hit_ratio()
            );
        }
        total_sessions += sessions.len();
    }
    let _ = writeln!(out, "recoverable sessions: {total_sessions}");
    Ok(out)
}
