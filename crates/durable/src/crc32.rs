//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! guarding every WAL record and snapshot body. Implemented in-tree because
//! the workspace is std-only; the table is built at compile time.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE, the `cksum`/zlib polynomial, reflected form).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_byte_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32(data);
        for i in 0..data.len() {
            let mut flipped = data.to_vec();
            flipped[i] ^= 0x40;
            assert_ne!(crc32(&flipped), base, "flip at {i} undetected");
        }
    }
}
