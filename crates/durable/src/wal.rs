//! The write-ahead log: length-prefixed, CRC32-checksummed record frames in
//! an append-only segment file.
//!
//! Frame layout (all little-endian):
//!
//! ```text
//! +--------+--------+-----------------+
//! | len u32| crc u32| payload (len B) |
//! +--------+--------+-----------------+
//! ```
//!
//! `crc` is the CRC-32 of the payload. A reader walks frames from the start
//! and stops at the first frame that does not validate — a short header, a
//! length running past end-of-file, an oversized length, or a checksum
//! mismatch. Everything before the stop point is intact (each frame was
//! independently checksummed); everything after is a *torn tail* left by a
//! crash mid-append, and recovery truncates it instead of failing.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;

use crate::crc32::crc32;
use crate::fault::{FaultKind, FaultPlan, FaultPoint};

/// Frame header size: `len` + `crc`.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Upper bound on one record's payload; a length field above this is treated
/// as corruption (it would otherwise make a torn length field look like a
/// multi-gigabyte allocation).
pub const MAX_RECORD_BYTES: u32 = 256 * 1024 * 1024;

/// When (how often) appended records are `fsync`ed to stable storage.
///
/// Every append always `write`s the full frame to the OS, so *process*
/// crashes (kill -9) lose nothing that was acknowledged — the page cache
/// survives the process. The fsync policy decides what a *machine* crash
/// (power loss) can lose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append. Maximum durability, minimum throughput.
    Always,
    /// `fsync` after every `n` appends (and on checkpoints/shutdown).
    EveryN(u64),
    /// Never `fsync` from the append path; only checkpoints and shutdown
    /// sync. Fastest; a power loss may lose the unsynced tail.
    Off,
}

impl FromStr for FsyncPolicy {
    type Err = String;

    /// Accepts `always`, `off`, or `every-N` (e.g. `every-64`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "off" => Ok(FsyncPolicy::Off),
            other => {
                let n = other
                    .strip_prefix("every-")
                    .ok_or_else(|| format!("bad fsync policy `{other}` (always|every-N|off)"))?;
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("bad fsync interval in `{other}`"))?;
                if n == 0 {
                    return Err("fsync interval must be at least 1".to_owned());
                }
                Ok(FsyncPolicy::EveryN(n))
            }
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every-{n}"),
            FsyncPolicy::Off => write!(f, "off"),
        }
    }
}

/// Appender over one WAL segment file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    appends_since_sync: u64,
    faults: Option<Arc<FaultPlan>>,
    /// Records appended through this writer.
    pub appended: u64,
    /// Bytes written through this writer (headers included).
    pub bytes: u64,
}

impl WalWriter {
    /// Create (or truncate) the segment at `path` and append to it.
    pub fn create(path: impl Into<PathBuf>, policy: FsyncPolicy) -> io::Result<WalWriter> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(WalWriter {
            file,
            path,
            policy,
            appends_since_sync: 0,
            faults: None,
            appended: 0,
            bytes: 0,
        })
    }

    /// The segment file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Attach a fault plan: appends fire [`FaultPoint::WalAppend`] and
    /// syncs fire [`FaultPoint::WalFsync`].
    pub fn set_faults(&mut self, faults: Option<Arc<FaultPlan>>) {
        self.faults = faults;
    }

    /// Append one record frame. Returns `(frame bytes, fsync latency)` —
    /// the latency is `None` when the policy did not sync this append.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<(u64, Option<std::time::Duration>)> {
        let len = payload.len() as u32;
        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        match self
            .faults
            .as_ref()
            .and_then(|p| p.fire(FaultPoint::WalAppend))
        {
            Some(FaultKind::Error(kind)) => {
                // Fails before any byte reaches the file — the append simply
                // did not happen, as when `write` itself errors.
                return Err(io::Error::new(kind, "injected fault at wal_append"));
            }
            Some(FaultKind::ShortWrite) => {
                // Write a frame prefix, then fail: the torn frame a crash
                // mid-append leaves behind. Recovery must truncate it.
                self.file.write_all(&frame[..frame.len() / 2])?;
                let _ = self.file.sync_data();
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "injected short write at wal_append",
                ));
            }
            _ => {}
        }
        self.file.write_all(&frame)?;
        self.appended += 1;
        self.bytes += frame.len() as u64;
        self.appends_since_sync += 1;
        let must_sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appends_since_sync >= n,
            FsyncPolicy::Off => false,
        };
        let latency = if must_sync {
            let t0 = Instant::now();
            self.sync()?;
            Some(t0.elapsed())
        } else {
            None
        };
        Ok((frame.len() as u64, latency))
    }

    /// Force everything written so far to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some(p) = &self.faults {
            // An injected fsync failure still leaves the frame in the page
            // cache — the record survives a *process* crash, matching a real
            // transient fsync error.
            p.fire_io(FaultPoint::WalFsync)?;
        }
        self.file.sync_data()?;
        self.appends_since_sync = 0;
        Ok(())
    }
}

/// Result of scanning one WAL segment.
#[derive(Debug)]
pub struct SegmentRead {
    /// Validated record payloads, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// Bytes occupied by the validated prefix.
    pub valid_bytes: u64,
    /// Why scanning stopped before end-of-file, if it did — the torn-tail
    /// diagnosis (`None` means the whole segment validated).
    pub torn: Option<String>,
}

/// Scan a segment, validating every frame; stops (without erroring) at the
/// first frame that fails to validate.
pub fn read_segment(path: impl AsRef<Path>) -> io::Result<SegmentRead> {
    let mut buf = Vec::new();
    File::open(path.as_ref())?.read_to_end(&mut buf)?;
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    let mut torn = None;
    while pos < buf.len() {
        if buf.len() - pos < FRAME_HEADER_BYTES {
            torn = Some(format!(
                "{} trailing bytes, shorter than a frame header",
                buf.len() - pos
            ));
            break;
        }
        let len = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]);
        let crc = u32::from_le_bytes([buf[pos + 4], buf[pos + 5], buf[pos + 6], buf[pos + 7]]);
        if len > MAX_RECORD_BYTES {
            torn = Some(format!("frame length {len} exceeds the record limit"));
            break;
        }
        let start = pos + FRAME_HEADER_BYTES;
        let end = start + len as usize;
        if end > buf.len() {
            torn = Some(format!(
                "frame length {len} runs past end-of-file ({} bytes available)",
                buf.len() - start
            ));
            break;
        }
        let payload = &buf[start..end];
        if crc32(payload) != crc {
            torn = Some("frame checksum mismatch".to_owned());
            break;
        }
        payloads.push(payload.to_vec());
        pos = end;
    }
    Ok(SegmentRead {
        payloads,
        valid_bytes: pos as u64,
        torn,
    })
}

/// Truncate a segment to its validated prefix, discarding a torn tail.
/// Best-effort: recovery proceeds even when the truncate itself fails (e.g.
/// a read-only filesystem); the tail is simply re-skipped next time.
pub fn truncate_to(path: impl AsRef<Path>, valid_bytes: u64) -> io::Result<()> {
    let f = OpenOptions::new().write(true).open(path.as_ref())?;
    f.set_len(valid_bytes)?;
    f.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sedex-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!("always".parse::<FsyncPolicy>(), Ok(FsyncPolicy::Always));
        assert_eq!("off".parse::<FsyncPolicy>(), Ok(FsyncPolicy::Off));
        assert_eq!(
            "every-16".parse::<FsyncPolicy>(),
            Ok(FsyncPolicy::EveryN(16))
        );
        assert!("every-0".parse::<FsyncPolicy>().is_err());
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert_eq!(FsyncPolicy::EveryN(8).to_string(), "every-8");
    }

    #[test]
    fn append_and_read_roundtrip() {
        let path = tmp("roundtrip.log");
        let mut w = WalWriter::create(&path, FsyncPolicy::Off).unwrap();
        for i in 0..10u8 {
            w.append(&[i; 5]).unwrap();
        }
        w.sync().unwrap();
        let seg = read_segment(&path).unwrap();
        assert_eq!(seg.payloads.len(), 10);
        assert_eq!(seg.payloads[3], vec![3u8; 5]);
        assert!(seg.torn.is_none());
        assert_eq!(seg.valid_bytes, 10 * (FRAME_HEADER_BYTES as u64 + 5));
    }

    #[test]
    fn truncated_mid_record_stops_at_last_full_frame() {
        let path = tmp("torn.log");
        let mut w = WalWriter::create(&path, FsyncPolicy::Off).unwrap();
        w.append(b"first record").unwrap();
        w.append(b"second record").unwrap();
        drop(w);
        let full = std::fs::metadata(&path).unwrap().len();
        truncate_to(&path, full - 4).unwrap(); // cut into the second frame
        let seg = read_segment(&path).unwrap();
        assert_eq!(seg.payloads.len(), 1);
        assert_eq!(seg.payloads[0], b"first record");
        assert!(seg.torn.is_some());
        // Truncating to the valid prefix yields a clean segment.
        truncate_to(&path, seg.valid_bytes).unwrap();
        let clean = read_segment(&path).unwrap();
        assert_eq!(clean.payloads.len(), 1);
        assert!(clean.torn.is_none());
    }

    #[test]
    fn crc_flip_stops_the_scan() {
        let path = tmp("crcflip.log");
        let mut w = WalWriter::create(&path, FsyncPolicy::Off).unwrap();
        w.append(b"good record one").unwrap();
        w.append(b"record to corrupt").unwrap();
        w.append(b"unreachable record").unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the middle record.
        let off = FRAME_HEADER_BYTES + b"good record one".len() + FRAME_HEADER_BYTES + 3;
        bytes[off] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let seg = read_segment(&path).unwrap();
        assert_eq!(seg.payloads.len(), 1);
        assert!(seg.torn.unwrap().contains("checksum"));
    }

    #[test]
    fn absurd_length_field_is_corruption_not_allocation() {
        let path = tmp("hugelen.log");
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &frame).unwrap();
        let seg = read_segment(&path).unwrap();
        assert!(seg.payloads.is_empty());
        assert!(seg.torn.unwrap().contains("limit"));
    }
}
