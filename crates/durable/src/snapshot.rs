//! Point-in-time snapshots: one file per shard generation capturing every
//! live session in full — source and target `Instance`s, the script
//! repository (entries and hit/miss counters), seen-marking bitmaps, the
//! fresh-label counter and the report counters.
//!
//! File layout: an 8-byte magic, then one CRC32-framed body (`len u32 | crc
//! u32 | body`). A snapshot either validates completely or is ignored;
//! recovery falls back to the previous generation, whose WAL segment is
//! retained exactly for this case. Snapshots are written to a temp file,
//! fsynced, then atomically renamed into place — a crash mid-write never
//! damages an existing snapshot.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;
use std::time::Duration;

use sedex_core::{ExchangeReport, RepositoryExport, SessionState};
use sedex_storage::codec::{decode_instance, encode_instance, ByteReader, ByteWriter, CodecResult};

use crate::crc32::crc32;
use crate::record::{decode_script, encode_script};

/// Snapshot file magic (`SDXSNAP` + format version 2). Version 2 adds the
/// script repository's elapsed time base, so warm-started sessions keep a
/// monotone hit-event timeline across restarts.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"SDXSNAP2";

/// The previous snapshot format, still readable: identical to version 2
/// except the repository time base is absent (restored as zero).
pub const SNAPSHOT_MAGIC_V1: &[u8; 8] = b"SDXSNAP1";

/// One persisted session.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    /// Session name.
    pub name: String,
    /// The `.sdx` scenario body the session was opened with (replay re-derives
    /// schemas, correspondences and CFDs from it).
    pub scenario: String,
    /// Requests served (tenant bookkeeping).
    pub requests: u64,
    /// Tuples pushed or fed (tenant bookkeeping).
    pub tuples_in: u64,
    /// The full mutable session state.
    pub state: SessionState,
}

/// One shard's snapshot: all its sessions as of an LSN watermark.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Every WAL record with `lsn <= lsn` is reflected in this snapshot;
    /// replay skips them.
    pub lsn: u64,
    /// Sessions, sorted by name.
    pub sessions: Vec<SessionSnapshot>,
}

fn encode_report(w: &mut ByteWriter, r: &ExchangeReport) {
    w.put_u64(r.tg.as_nanos() as u64);
    w.put_u64(r.te.as_nanos() as u64);
    w.put_u64(r.tuples_processed as u64);
    w.put_u64(r.tuples_skipped_seen as u64);
    w.put_u64(r.scripts_generated as u64);
    w.put_u64(r.scripts_reused as u64);
    w.put_u64(r.tuples_unmatched as u64);
    w.put_u64(r.inserted as u64);
    w.put_u64(r.merged as u64);
    w.put_u64(r.violations as u64);
}

fn decode_report(r: &mut ByteReader<'_>) -> CodecResult<ExchangeReport> {
    // Instance stats are recomputed on read, the hit-event log is not
    // persisted, and the phase breakdown restarts (it is wall-clock telemetry
    // of the process, not session state).
    Ok(ExchangeReport {
        tg: Duration::from_nanos(r.get_u64()?),
        te: Duration::from_nanos(r.get_u64()?),
        tuples_processed: r.get_u64()? as usize,
        tuples_skipped_seen: r.get_u64()? as usize,
        scripts_generated: r.get_u64()? as usize,
        scripts_reused: r.get_u64()? as usize,
        tuples_unmatched: r.get_u64()? as usize,
        inserted: r.get_u64()? as usize,
        merged: r.get_u64()? as usize,
        violations: r.get_u64()? as usize,
        ..ExchangeReport::default()
    })
}

fn encode_state(w: &mut ByteWriter, s: &SessionState, v2: bool) {
    encode_instance(w, &s.source);
    encode_instance(w, &s.target);
    w.put_u32(s.repository.entries.len() as u32);
    for (key, script) in &s.repository.entries {
        w.put_str(key);
        encode_script(w, script);
    }
    w.put_u64(s.repository.hits as u64);
    w.put_u64(s.repository.misses as u64);
    if v2 {
        w.put_u64(s.repository.elapsed.as_nanos() as u64);
    }
    w.put_u32(s.seen.len() as u32);
    for (rel, bits) in &s.seen {
        w.put_str(rel);
        w.put_u32(bits.len() as u32);
        for &b in bits {
            w.put_u8(u8::from(b));
        }
    }
    w.put_u64(s.fresh_counter);
    encode_report(w, &s.report);
}

fn decode_state(r: &mut ByteReader<'_>, v2: bool) -> CodecResult<SessionState> {
    let source = decode_instance(r)?;
    let target = decode_instance(r)?;
    let nentries = r.get_u32()? as usize;
    let mut entries = Vec::with_capacity(nentries.min(65536));
    for _ in 0..nentries {
        let key = r.get_str()?;
        let script = decode_script(r)?;
        entries.push((key, script));
    }
    let hits = r.get_u64()? as usize;
    let misses = r.get_u64()? as usize;
    let elapsed = if v2 {
        Duration::from_nanos(r.get_u64()?)
    } else {
        Duration::ZERO
    };
    let nseen = r.get_u32()? as usize;
    let mut seen = Vec::with_capacity(nseen.min(4096));
    for _ in 0..nseen {
        let rel = r.get_str()?;
        let nbits = r.get_u32()? as usize;
        let mut bits = Vec::with_capacity(nbits.min(1 << 20));
        for _ in 0..nbits {
            bits.push(r.get_u8()? != 0);
        }
        seen.push((rel, bits));
    }
    let fresh_counter = r.get_u64()?;
    let report = decode_report(r)?;
    Ok(SessionState {
        source,
        target,
        repository: RepositoryExport {
            entries,
            hits,
            misses,
            elapsed,
        },
        seen,
        fresh_counter,
        report,
    })
}

/// Encode a full [`SessionState`] in the current (v2) snapshot layout —
/// the payload of a cluster `MIGRATE` handoff. Decode with
/// [`decode_session_state`].
pub fn encode_session_state(w: &mut ByteWriter, s: &SessionState) {
    encode_state(w, s, true)
}

/// Decode a [`SessionState`] written by [`encode_session_state`].
pub fn decode_session_state(r: &mut ByteReader<'_>) -> CodecResult<SessionState> {
    decode_state(r, true)
}

fn encode_snapshot(snap: &ShardSnapshot, v2: bool) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(snap.lsn);
    w.put_u32(snap.sessions.len() as u32);
    for s in &snap.sessions {
        w.put_str(&s.name);
        w.put_str(&s.scenario);
        w.put_u64(s.requests);
        w.put_u64(s.tuples_in);
        encode_state(&mut w, &s.state, v2);
    }
    w.into_bytes()
}

fn decode_snapshot(body: &[u8], v2: bool) -> CodecResult<ShardSnapshot> {
    let mut r = ByteReader::new(body);
    let lsn = r.get_u64()?;
    let n = r.get_u32()? as usize;
    let mut sessions = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        let name = r.get_str()?;
        let scenario = r.get_str()?;
        let requests = r.get_u64()?;
        let tuples_in = r.get_u64()?;
        let state = decode_state(&mut r, v2)?;
        sessions.push(SessionSnapshot {
            name,
            scenario,
            requests,
            tuples_in,
            state,
        });
    }
    r.expect_end()?;
    Ok(ShardSnapshot { lsn, sessions })
}

/// Write a snapshot atomically: temp file, fsync, rename, directory fsync.
pub fn write_snapshot(path: impl AsRef<Path>, snap: &ShardSnapshot) -> io::Result<()> {
    write_snapshot_with(path, snap, None)
}

/// [`write_snapshot`] with an optional fault plan: fires
/// [`FaultPoint::SnapshotWrite`](crate::fault::FaultPoint::SnapshotWrite)
/// before the temp file is created, so an injected failure leaves existing
/// snapshots untouched — exactly like a crash before the atomic rename.
pub fn write_snapshot_with(
    path: impl AsRef<Path>,
    snap: &ShardSnapshot,
    faults: Option<&crate::fault::FaultPlan>,
) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(p) = faults {
        p.fire_io(crate::fault::FaultPoint::SnapshotWrite)?;
    }
    let body = encode_snapshot(snap, true);
    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(SNAPSHOT_MAGIC)?;
        f.write_all(&(body.len() as u32).to_le_bytes())?;
        f.write_all(&crc32(&body).to_le_bytes())?;
        f.write_all(&body)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Make the rename itself durable; harmless if the platform's
        // directory handles don't support fsync.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Read and validate a snapshot. Returns `Ok(None)` when the file exists but
/// does not validate (bad magic, short body, CRC mismatch, undecodable
/// content) — the caller falls back to an older generation.
pub fn read_snapshot(path: impl AsRef<Path>) -> io::Result<Option<ShardSnapshot>> {
    let mut buf = Vec::new();
    File::open(path.as_ref())?.read_to_end(&mut buf)?;
    if buf.len() < SNAPSHOT_MAGIC.len() + 8 {
        return Ok(None);
    }
    let v2 = match &buf[..8] {
        m if m == SNAPSHOT_MAGIC => true,
        m if m == SNAPSHOT_MAGIC_V1 => false,
        _ => return Ok(None),
    };
    let len = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]) as usize;
    let crc = u32::from_le_bytes([buf[12], buf[13], buf[14], buf[15]]);
    let body_start = 16;
    if buf.len() < body_start + len {
        return Ok(None);
    }
    let body = &buf[body_start..body_start + len];
    if crc32(body) != crc {
        return Ok(None);
    }
    Ok(decode_snapshot(body, v2).ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_core::{SedexConfig, SedexSession};
    use sedex_mapping_shim::sample_session;

    // A tiny in-test shim so the snapshot tests can build a real session
    // without repeating the scenario plumbing everywhere.
    mod sedex_mapping_shim {
        use super::*;

        pub fn sample_session(pushes: usize) -> SedexSession {
            let file = sedex_scenarios::textfmt::parse_scenario(SCENARIO).unwrap();
            let s = file.scenario;
            let mut session =
                SedexSession::new(SedexConfig::default(), s.source, s.target, s.sigma)
                    .unwrap()
                    .with_cfds(file.cfds);
            for (rel, inst) in file.instance.relations() {
                for t in inst.iter() {
                    session.feed(rel, t.clone()).unwrap();
                }
            }
            for i in 0..pushes {
                let line = format!("Student: s{i}, p{i}, d1");
                let (rel, tuple) = sedex_scenarios::textfmt::parse_data_line(&line, 1).unwrap();
                session.exchange_tuple(&rel, tuple).unwrap();
            }
            session
        }

        pub const SCENARIO: &str = "\
[source]
Dep(dname*, building)
Student(sname*, program, dep->Dep)

[target]
Stu(student*, prog, dpt)

[correspondences]
sname <-> student
program <-> prog
dep <-> dpt

[data]
Dep: d1, b1
";
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sedex-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn snapshot_roundtrips_a_real_session() {
        let session = sample_session(8);
        let snap = ShardSnapshot {
            lsn: 41,
            sessions: vec![SessionSnapshot {
                name: "t1".into(),
                scenario: sedex_mapping_shim::SCENARIO.into(),
                requests: 9,
                tuples_in: 8,
                state: session.export_state(),
            }],
        };
        let path = tmp("roundtrip.snap");
        write_snapshot(&path, &snap).unwrap();
        let back = read_snapshot(&path).unwrap().expect("snapshot validates");
        assert_eq!(back.lsn, 41);
        assert_eq!(back.sessions.len(), 1);
        let s = &back.sessions[0];
        assert_eq!(s.name, "t1");
        assert_eq!((s.requests, s.tuples_in), (9, 8));
        assert_eq!(s.state.target.stats(), session.target().stats());
        assert_eq!(s.state.repository.entries.len(), session.scripts_cached());
        assert_eq!(s.state.fresh_counter, session.export_state().fresh_counter);
        assert_eq!(
            s.state.report.scripts_reused,
            session.report_snapshot().scripts_reused
        );
        // v2 persists the repository's elapsed time base verbatim.
        assert_eq!(
            s.state.repository.elapsed,
            snap.sessions[0].state.repository.elapsed
        );
    }

    #[test]
    fn v1_snapshots_still_read_with_a_zero_time_base() {
        let session = sample_session(3);
        let snap = ShardSnapshot {
            lsn: 7,
            sessions: vec![SessionSnapshot {
                name: "legacy".into(),
                scenario: sedex_mapping_shim::SCENARIO.into(),
                requests: 3,
                tuples_in: 3,
                state: session.export_state(),
            }],
        };
        // A v1 file: old magic, body without the elapsed field.
        let body = encode_snapshot(&snap, false);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SNAPSHOT_MAGIC_V1);
        bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        bytes.extend_from_slice(&body);
        let path = tmp("v1.snap");
        std::fs::write(&path, &bytes).unwrap();
        let back = read_snapshot(&path).unwrap().expect("v1 validates");
        let s = &back.sessions[0];
        assert_eq!(s.name, "legacy");
        assert_eq!(s.state.repository.entries.len(), session.scripts_cached());
        assert_eq!(s.state.repository.elapsed, Duration::ZERO);
    }

    #[test]
    fn corrupt_snapshot_reads_as_none() {
        let session = sample_session(2);
        let snap = ShardSnapshot {
            lsn: 1,
            sessions: vec![SessionSnapshot {
                name: "t".into(),
                scenario: sedex_mapping_shim::SCENARIO.into(),
                requests: 0,
                tuples_in: 0,
                state: session.export_state(),
            }],
        };
        let path = tmp("corrupt.snap");
        write_snapshot(&path, &snap).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_snapshot(&path).unwrap().is_none());

        // Bad magic is also rejected, not an error.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_snapshot(&path).unwrap().is_none());

        // And a short file.
        std::fs::write(&path, b"SDX").unwrap();
        assert!(read_snapshot(&path).unwrap().is_none());
    }
}
