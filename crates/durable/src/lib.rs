//! # sedex-durable
//!
//! Durability for SEDEX sessions: a binary write-ahead log with
//! length-prefixed, CRC32-checksummed records ([`wal`]), point-in-time
//! snapshots of whole sessions — source/target `Instance`s and the
//! shape-keyed script repository — ([`snapshot`]), and a recovery path that
//! replays the log tail over the latest valid snapshot, truncating torn
//! tails instead of failing ([`recover`]).
//!
//! The paper's scaling argument rests on the script repository: scripts are
//! generated once per tuple-tree shape and reused forever. Without
//! persistence that warm cache — and every exchanged target instance —
//! evaporates on restart. This crate makes the repository and the sessions
//! it serves survive process death: the WAL records acknowledged operations
//! (session opens, fed/pushed tuples, generated scripts, flush boundaries),
//! snapshots bound replay time, and generations rotate on checkpoint with
//! the previous snapshot (and the WAL since it) retained so even a lost
//! newest snapshot recovers.
//!
//! Everything is std-only, like the rest of the workspace: CRC32 is
//! implemented in-tree ([`crc32`]), the file format is hand-rolled over the
//! storage codec (`sedex_storage::codec`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod fault;
pub mod record;
pub mod recover;
pub mod shard;
pub mod snapshot;
pub mod wal;

pub use fault::{FaultKind, FaultPlan, FaultPoint, FaultRule};
pub use record::WalRecord;
pub use recover::{
    inspect, recover_data_dir, recover_shard_dir, replay_record, RecoveredSession, RecoveryReport,
};
pub use shard::{DurableMetrics, DurableShard};
pub use snapshot::{
    decode_session_state, encode_session_state, read_snapshot, write_snapshot, SessionSnapshot,
    ShardSnapshot,
};
pub use wal::{read_segment, FsyncPolicy, SegmentRead, WalWriter};
