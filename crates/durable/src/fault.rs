//! Deterministic fault injection: a seeded [`FaultPlan`] that fires
//! I/O faults, latency, short writes, or panics at exact operation counts.
//!
//! The durability fault tests used to simulate crashes by corrupting files
//! *after the fact* — flip a CRC byte, truncate a segment, delete a
//! snapshot. That exercises recovery, but not the failure paths themselves:
//! what happens when `fsync` fails on the 7th append, when a snapshot write
//! dies halfway, when a client socket drops mid-response. A `FaultPlan`
//! makes those moments injectable and — because triggers are
//! operation-count based and the counts come from a seeded PRNG —
//! *reproducible*: the same seed produces the same fault sequence, so a
//! chaos test can assert the exact recovery outcome instead of hoping.
//!
//! A plan is shared (`Arc<FaultPlan>`) across every thread of a server and
//! threaded behind small hooks into the WAL appender
//! ([`FaultPoint::WalAppend`], [`FaultPoint::WalFsync`]), the snapshot
//! writer ([`FaultPoint::SnapshotWrite`]), and `sedex-service`'s accept,
//! read, write, and per-request session paths. Production servers carry no
//! plan: every hook is a `None` check.

use std::io::{self, ErrorKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use sedex_scenarios::rng::SmallRng;

/// Where in the system a fault can fire. Each point keeps its own
/// operation counter; a rule addresses "the Nth operation at point P".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// A WAL record append (before the frame is written).
    WalAppend,
    /// A WAL fsync (append-path, checkpoint seal, or shutdown sync).
    WalFsync,
    /// A snapshot file write (before the temp file is written).
    SnapshotWrite,
    /// A freshly accepted TCP connection (the server drops it).
    Accept,
    /// A socket read on a connection thread.
    ConnRead,
    /// A response write on a connection thread.
    ConnWrite,
    /// Per-request session work, fired while the tenant lock is held —
    /// the place to inject [`FaultKind::Panic`] (quarantine testing) or
    /// [`FaultKind::Latency`] (a slow worker for shedding/deadline tests).
    SessionWork,
    /// A replication/heartbeat frame about to be queued on an outbound
    /// peer link. `Error` *drops the frame silently* (the network ate it —
    /// the standby sees an LSN gap), `ShortWrite` truncates it then drops
    /// the link, `Latency` delays the ship.
    PeerSend,
    /// A socket read on an outbound peer link. Transient kinds retry,
    /// hard kinds drop the link (a mid-stream disconnect).
    PeerRecv,
}

impl FaultPoint {
    /// Every point, in counter-index order.
    pub const ALL: [FaultPoint; 9] = [
        FaultPoint::WalAppend,
        FaultPoint::WalFsync,
        FaultPoint::SnapshotWrite,
        FaultPoint::Accept,
        FaultPoint::ConnRead,
        FaultPoint::ConnWrite,
        FaultPoint::SessionWork,
        FaultPoint::PeerSend,
        FaultPoint::PeerRecv,
    ];

    fn index(self) -> usize {
        match self {
            FaultPoint::WalAppend => 0,
            FaultPoint::WalFsync => 1,
            FaultPoint::SnapshotWrite => 2,
            FaultPoint::Accept => 3,
            FaultPoint::ConnRead => 4,
            FaultPoint::ConnWrite => 5,
            FaultPoint::SessionWork => 6,
            FaultPoint::PeerSend => 7,
            FaultPoint::PeerRecv => 8,
        }
    }

    /// Stable lower-snake name (metric label / log text).
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::WalAppend => "wal_append",
            FaultPoint::WalFsync => "wal_fsync",
            FaultPoint::SnapshotWrite => "snapshot_write",
            FaultPoint::Accept => "accept",
            FaultPoint::ConnRead => "conn_read",
            FaultPoint::ConnWrite => "conn_write",
            FaultPoint::SessionWork => "session_work",
            FaultPoint::PeerSend => "peer_send",
            FaultPoint::PeerRecv => "peer_recv",
        }
    }
}

/// What happens when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with an `io::Error` of this kind.
    Error(ErrorKind),
    /// A write-path operation writes only a prefix of its bytes, then
    /// fails — at [`FaultPoint::WalAppend`] this leaves a *torn frame* on
    /// disk, exactly what a crash mid-append produces. Non-write points
    /// treat it like `Error(WriteZero)`.
    ShortWrite,
    /// The operation is delayed by this much, then proceeds normally.
    Latency(Duration),
    /// The thread panics (service workers catch and quarantine).
    Panic,
}

/// One trigger: the `at`-th operation (1-based) at `point` suffers `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// Where the fault fires.
    pub point: FaultPoint,
    /// Which operation (1-based count at that point) it fires on.
    pub at: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic fault schedule, shared across threads.
///
/// Build one with the fluent API and hand it to a server/shard as
/// `Arc<FaultPlan>`:
///
/// ```
/// use std::io::ErrorKind;
/// use std::time::Duration;
/// use sedex_durable::fault::{FaultKind, FaultPlan, FaultPoint};
///
/// let plan = FaultPlan::new()
///     .rule(FaultPoint::WalFsync, 3, FaultKind::Error(ErrorKind::Interrupted))
///     .seeded_rules(42, FaultPoint::ConnWrite, FaultKind::ShortWrite, 2, 5, 40);
/// assert_eq!(plan.rules().len(), 3);
/// // Same seed ⇒ same schedule, every run, every platform.
/// let again = FaultPlan::new()
///     .rule(FaultPoint::WalFsync, 3, FaultKind::Error(ErrorKind::Interrupted))
///     .seeded_rules(42, FaultPoint::ConnWrite, FaultKind::ShortWrite, 2, 5, 40);
/// assert_eq!(plan.rules(), again.rules());
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Mutex<Vec<FaultRule>>,
    ops: Vec<AtomicU64>,
    injected: Vec<AtomicU64>,
    fired: Mutex<Vec<FaultRule>>,
}

impl FaultPlan {
    /// An empty plan: every hook is a no-op until rules are added.
    pub fn new() -> Self {
        FaultPlan {
            rules: Mutex::new(Vec::new()),
            ops: (0..FaultPoint::ALL.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            injected: (0..FaultPoint::ALL.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            fired: Mutex::new(Vec::new()),
        }
    }

    /// Add one explicit rule.
    pub fn rule(self, point: FaultPoint, at: u64, kind: FaultKind) -> Self {
        self.rules
            .lock()
            .expect("fault plan lock poisoned")
            .push(FaultRule { point, at, kind });
        self
    }

    /// Add `n` rules of `kind` at `point`, at distinct operation counts
    /// drawn uniformly from `[lo, hi]` by a PRNG seeded from `seed` and
    /// the point — the reproducible way to scatter faults over a run.
    pub fn seeded_rules(
        self,
        seed: u64,
        point: FaultPoint,
        kind: FaultKind,
        n: usize,
        lo: u64,
        hi: u64,
    ) -> Self {
        let (lo, hi) = (lo.max(1), hi.max(lo.max(1)));
        let window = (hi - lo + 1) as usize;
        let mut rng = SmallRng::seed_from_u64(seed ^ ((point.index() as u64 + 1) << 56));
        let mut ats = std::collections::BTreeSet::new();
        while ats.len() < n.min(window) {
            ats.insert(lo + rng.gen_index(window) as u64);
        }
        {
            let mut rules = self.rules.lock().expect("fault plan lock poisoned");
            for at in ats {
                rules.push(FaultRule { point, at, kind });
            }
        }
        self
    }

    /// The current schedule (sorted by point index, then count).
    pub fn rules(&self) -> Vec<FaultRule> {
        let mut out = self.rules.lock().expect("fault plan lock poisoned").clone();
        out.sort_by_key(|r| (r.point.index(), r.at));
        out
    }

    /// Count one operation at `point` and return the fault to inject on
    /// it, if any. [`FaultKind::Latency`] is served *here* (the sleep
    /// happens before returning) so call sites only branch on the
    /// error-shaped kinds. [`FaultKind::Panic`] panics here, while the
    /// faulted operation's locks are held — the realistic crash site.
    pub fn fire(&self, point: FaultPoint) -> Option<FaultKind> {
        let n = self.ops[point.index()].fetch_add(1, Ordering::SeqCst) + 1;
        let hit = self
            .rules
            .lock()
            .expect("fault plan lock poisoned")
            .iter()
            .find(|r| r.point == point && r.at == n)
            .copied();
        let rule = hit?;
        self.injected[point.index()].fetch_add(1, Ordering::SeqCst);
        self.fired
            .lock()
            .expect("fault plan lock poisoned")
            .push(rule);
        match rule.kind {
            FaultKind::Latency(d) => {
                std::thread::sleep(d);
                Some(FaultKind::Latency(d))
            }
            FaultKind::Panic => panic!(
                "injected fault: panic at {} operation {}",
                point.name(),
                rule.at
            ),
            other => Some(other),
        }
    }

    /// [`fire`](Self::fire) flattened to an `io::Result` for call sites
    /// with no partial-write semantics: `Error`/`ShortWrite` become an
    /// `Err`, `Latency` has already slept, `Panic` has already panicked.
    pub fn fire_io(&self, point: FaultPoint) -> io::Result<()> {
        match self.fire(point) {
            Some(FaultKind::Error(kind)) => Err(io::Error::new(
                kind,
                format!("injected fault at {}", point.name()),
            )),
            Some(FaultKind::ShortWrite) => Err(io::Error::new(
                ErrorKind::WriteZero,
                format!("injected short write at {}", point.name()),
            )),
            Some(FaultKind::Latency(_)) | None => Ok(()),
            Some(FaultKind::Panic) => unreachable!("fire() panics on Panic rules"),
        }
    }

    /// Operations counted at `point` so far.
    pub fn ops(&self, point: FaultPoint) -> u64 {
        self.ops[point.index()].load(Ordering::SeqCst)
    }

    /// Faults injected at `point` so far.
    pub fn injected(&self, point: FaultPoint) -> u64 {
        self.injected[point.index()].load(Ordering::SeqCst)
    }

    /// Faults injected across all points.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().map(|c| c.load(Ordering::SeqCst)).sum()
    }

    /// The rules that actually fired, in firing order — what a
    /// reproducibility assertion compares across same-seed runs.
    pub fn fired(&self) -> Vec<FaultRule> {
        self.fired.lock().expect("fault plan lock poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_variant_in_index_order() {
        // `ALL` is the authority the per-point counters are sized from: a
        // variant missing here silently loses its ops/injected gauges.
        for (i, p) in FaultPoint::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "{} out of place in ALL", p.name());
        }
        // Names are distinct (they key metric labels).
        let mut names: Vec<_> = FaultPoint::ALL.iter().map(|p| p.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), FaultPoint::ALL.len());
        // Exhaustiveness: adding a variant without extending ALL fails to
        // compile here (no wildcard arm), not at some distant metrics call.
        let mut counted = 0usize;
        for p in FaultPoint::ALL {
            match p {
                FaultPoint::WalAppend
                | FaultPoint::WalFsync
                | FaultPoint::SnapshotWrite
                | FaultPoint::Accept
                | FaultPoint::ConnRead
                | FaultPoint::ConnWrite
                | FaultPoint::SessionWork
                | FaultPoint::PeerSend
                | FaultPoint::PeerRecv => counted += 1,
            }
        }
        assert_eq!(counted, FaultPoint::ALL.len());
        // A plan sized from ALL counts the newest points too.
        let plan = FaultPlan::new();
        assert!(plan.fire(FaultPoint::PeerSend).is_none());
        assert!(plan.fire(FaultPoint::PeerRecv).is_none());
        assert_eq!(plan.ops(FaultPoint::PeerSend), 1);
        assert_eq!(plan.ops(FaultPoint::PeerRecv), 1);
    }

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::new();
        for _ in 0..100 {
            assert!(plan.fire(FaultPoint::WalAppend).is_none());
        }
        assert_eq!(plan.ops(FaultPoint::WalAppend), 100);
        assert_eq!(plan.injected_total(), 0);
    }

    #[test]
    fn rules_fire_at_exact_counts() {
        let plan = FaultPlan::new()
            .rule(
                FaultPoint::WalFsync,
                2,
                FaultKind::Error(ErrorKind::Interrupted),
            )
            .rule(FaultPoint::WalFsync, 4, FaultKind::ShortWrite);
        assert!(plan.fire_io(FaultPoint::WalFsync).is_ok()); // op 1
        let e = plan.fire_io(FaultPoint::WalFsync).unwrap_err(); // op 2
        assert_eq!(e.kind(), ErrorKind::Interrupted);
        assert!(plan.fire_io(FaultPoint::WalFsync).is_ok()); // op 3
        let e = plan.fire_io(FaultPoint::WalFsync).unwrap_err(); // op 4
        assert_eq!(e.kind(), ErrorKind::WriteZero);
        assert_eq!(plan.injected(FaultPoint::WalFsync), 2);
        // Other points are unaffected.
        assert!(plan.fire(FaultPoint::ConnRead).is_none());
    }

    #[test]
    fn seeded_schedules_are_reproducible_and_seed_sensitive() {
        let mk = |seed| {
            FaultPlan::new()
                .seeded_rules(
                    seed,
                    FaultPoint::WalFsync,
                    FaultKind::Error(ErrorKind::Interrupted),
                    4,
                    1,
                    100,
                )
                .seeded_rules(seed, FaultPoint::ConnWrite, FaultKind::ShortWrite, 3, 5, 60)
        };
        assert_eq!(mk(7).rules(), mk(7).rules());
        assert_ne!(mk(7).rules(), mk(8).rules());
        assert_eq!(mk(7).rules().len(), 7);
        // Counts are distinct per point and inside the window.
        let rules = mk(7).rules();
        for r in &rules {
            match r.point {
                FaultPoint::WalFsync => assert!((1..=100).contains(&r.at)),
                FaultPoint::ConnWrite => assert!((5..=60).contains(&r.at)),
                other => panic!("unexpected point {other:?}"),
            }
        }
    }

    #[test]
    fn latency_is_served_inside_fire() {
        let plan = FaultPlan::new().rule(
            FaultPoint::SessionWork,
            1,
            FaultKind::Latency(Duration::from_millis(30)),
        );
        let t0 = std::time::Instant::now();
        let kind = plan.fire(FaultPoint::SessionWork);
        assert!(matches!(kind, Some(FaultKind::Latency(_))));
        assert!(t0.elapsed() >= Duration::from_millis(25));
        // fire_io treats latency as success.
        let plan = FaultPlan::new().rule(
            FaultPoint::SessionWork,
            1,
            FaultKind::Latency(Duration::from_millis(1)),
        );
        assert!(plan.fire_io(FaultPoint::SessionWork).is_ok());
    }

    #[test]
    fn panic_rules_panic_and_fired_log_records_order() {
        let plan = std::sync::Arc::new(
            FaultPlan::new()
                .rule(FaultPoint::SessionWork, 2, FaultKind::Panic)
                .rule(FaultPoint::SessionWork, 1, FaultKind::ShortWrite),
        );
        assert!(plan.fire(FaultPoint::SessionWork).is_some());
        let p2 = std::sync::Arc::clone(&plan);
        let caught = std::panic::catch_unwind(move || p2.fire(FaultPoint::SessionWork));
        assert!(caught.is_err(), "panic rule must panic");
        let fired = plan.fired();
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].at, 1);
        assert_eq!(fired[1].kind, FaultKind::Panic);
    }
}
