//! Per-shard durability: one WAL appender plus generation bookkeeping and
//! checkpoint (snapshot + log rotation + compaction) logic.
//!
//! Generations: during generation `g` the shard appends to `wal-<g>.log`.
//! A checkpoint writes `snapshot-<g+1>.snap` (full state, plus a
//! caller-captured LSN watermark — see [`DurableShard::checkpoint`]),
//! rotates to `wal-<g+1>.log`, and deletes files older
//! than the *previous snapshot* — that snapshot and the WAL segments since
//! it are always retained, so losing the newest snapshot still recovers
//! the exact same state from the fallback plus replay.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use sedex_observe::{Counter, Histogram, MetricsRegistry};

use crate::fault::FaultPlan;
use crate::record::WalRecord;
use crate::recover::{list_segments, list_snapshots, snapshot_path, wal_path, RecoveryReport};
use crate::snapshot::{write_snapshot_with, SessionSnapshot, ShardSnapshot};
use crate::wal::{FsyncPolicy, WalWriter};

/// Durability metrics, registered under `sedex_*` names so they surface in
/// the service's `METRICS` exposition alongside the exchange counters.
#[derive(Debug)]
pub struct DurableMetrics {
    /// `sedex_wal_appends_total` — records appended.
    pub wal_appends: Arc<Counter>,
    /// `sedex_wal_bytes_total` — bytes appended (frame headers included).
    pub wal_bytes: Arc<Counter>,
    /// `sedex_wal_append_errors_total` — appends that failed with an I/O
    /// error. The in-memory state was already applied and the client acked,
    /// so a non-zero value means durability is degraded: operations exist
    /// that a crash would lose.
    pub wal_append_errors: Arc<Counter>,
    /// `sedex_fsync_seconds` — fsync latency histogram (append-path syncs).
    pub fsync_seconds: Arc<Histogram>,
    /// `sedex_checkpoints_total` — snapshots written.
    pub checkpoints: Arc<Counter>,
    /// `sedex_recovery_sessions_total` — sessions rebuilt at startup.
    pub recovered_sessions: Arc<Counter>,
    /// `sedex_recovery_records_total` — WAL records replayed at startup.
    pub replayed_records: Arc<Counter>,
    /// `sedex_recovery_torn_tails_total` — torn tails truncated at startup.
    pub torn_tails: Arc<Counter>,
    /// `sedex_recovery_snapshots_total` — snapshots loaded at startup.
    pub snapshots_loaded: Arc<Counter>,
}

impl DurableMetrics {
    /// Register (or re-acquire) the durability metrics on a registry.
    pub fn new(registry: &MetricsRegistry) -> Self {
        DurableMetrics {
            wal_appends: registry.counter("sedex_wal_appends_total", "WAL records appended"),
            wal_bytes: registry.counter("sedex_wal_bytes_total", "WAL bytes appended"),
            wal_append_errors: registry.counter(
                "sedex_wal_append_errors_total",
                "WAL appends that failed with an I/O error",
            ),
            fsync_seconds: registry.histogram("sedex_fsync_seconds", "WAL fsync latency"),
            checkpoints: registry.counter("sedex_checkpoints_total", "Durability checkpoints"),
            recovered_sessions: registry.counter(
                "sedex_recovery_sessions_total",
                "Sessions recovered at startup",
            ),
            replayed_records: registry.counter(
                "sedex_recovery_records_total",
                "WAL records replayed at startup",
            ),
            torn_tails: registry.counter(
                "sedex_recovery_torn_tails_total",
                "Torn WAL tails truncated during recovery",
            ),
            snapshots_loaded: registry.counter(
                "sedex_recovery_snapshots_total",
                "Snapshots loaded during recovery",
            ),
        }
    }

    /// Fold one shard's recovery outcome into the counters.
    pub fn record_recovery(&self, sessions: usize, report: &RecoveryReport) {
        self.recovered_sessions.add(sessions as u64);
        self.replayed_records.add(report.records_replayed);
        self.torn_tails.add(report.torn_tails as u64);
        if report.snapshot_generation.is_some() {
            self.snapshots_loaded.inc();
        }
    }
}

/// WAL + snapshot management for one shard directory.
pub struct DurableShard {
    dir: PathBuf,
    generation: u64,
    next_lsn: u64,
    writer: WalWriter,
    policy: FsyncPolicy,
    records_since_checkpoint: u64,
    metrics: Option<Arc<DurableMetrics>>,
    faults: Option<Arc<FaultPlan>>,
}

impl DurableShard {
    /// Open the shard's log for appending, continuing after what recovery
    /// found: a fresh generation strictly above `report.max_generation`,
    /// LSNs strictly above `report.max_lsn`. For an empty directory pass a
    /// default report.
    pub fn open(
        dir: impl Into<PathBuf>,
        policy: FsyncPolicy,
        report: &RecoveryReport,
        metrics: Option<Arc<DurableMetrics>>,
    ) -> io::Result<DurableShard> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let generation = report.max_generation + 1;
        let writer = WalWriter::create(wal_path(&dir, generation), policy)?;
        Ok(DurableShard {
            dir,
            generation,
            next_lsn: report.max_lsn + 1,
            writer,
            policy,
            records_since_checkpoint: 0,
            metrics,
            faults: None,
        })
    }

    /// Attach a fault plan, threaded into the WAL writer (appends, fsyncs)
    /// and snapshot writes. Survives checkpoint rotation.
    pub fn with_fault_plan(mut self, faults: Option<Arc<FaultPlan>>) -> Self {
        self.writer.set_faults(faults.clone());
        self.faults = faults;
        self
    }

    /// The shard directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current generation (the suffix of the live WAL segment).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Records appended since the last checkpoint (drives `--snapshot-every`).
    pub fn records_since_checkpoint(&self) -> u64 {
        self.records_since_checkpoint
    }

    /// LSN of the most recently appended record (0 before the first one).
    /// Checkpoint callers capture this **before** exporting session state:
    /// any record with `lsn ≤ last_lsn()` was appended — and therefore
    /// applied — before the capture, so the later export is guaranteed to
    /// contain its effect.
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Append one record; returns its LSN. The frame is written and flushed
    /// to the OS unconditionally (survives process death); fsync follows the
    /// shard's policy (survives power loss).
    pub fn append(&mut self, record: &WalRecord) -> io::Result<u64> {
        let lsn = self.next_lsn;
        let payload = record.encode(lsn);
        let (bytes, fsync_latency) = match self.writer.append(&payload) {
            Ok(v) => v,
            Err(e) => {
                if let Some(m) = &self.metrics {
                    m.wal_append_errors.inc();
                }
                return Err(e);
            }
        };
        self.next_lsn += 1;
        self.records_since_checkpoint += 1;
        if let Some(m) = &self.metrics {
            m.wal_appends.inc();
            m.wal_bytes.add(bytes);
            if let Some(lat) = fsync_latency {
                m.fsync_seconds.observe(lat);
            }
        }
        Ok(lsn)
    }

    /// Force the live segment to stable storage (clean-shutdown path).
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.sync()
    }

    /// Checkpoint: persist `sessions` as the next generation's snapshot,
    /// rotate the WAL, and compact.
    ///
    /// `watermark` is the highest LSN whose effect is *guaranteed* to be in
    /// `sessions` — capture it with [`last_lsn`](Self::last_lsn) **before**
    /// exporting the session state. Records appended between the capture and
    /// the export have `lsn > watermark`; their effects may already be in
    /// the snapshot, and replaying them again is idempotent. A watermark
    /// taken *after* the export would instead silently skip any record that
    /// landed in that window — a lost acknowledged write.
    ///
    /// Compaction keeps everything back to the *previous snapshot* — if the
    /// new snapshot is lost or corrupted, recovery falls back to the
    /// previous one and replays the WAL segments since it. With no previous
    /// snapshot nothing is deleted: the full log from empty state is the
    /// only fallback.
    pub fn checkpoint(&mut self, watermark: u64, sessions: Vec<SessionSnapshot>) -> io::Result<()> {
        debug_assert!(watermark <= self.last_lsn(), "watermark from the future");
        let new_gen = self.generation + 1;
        // The newest snapshot already on disk becomes the fallback; files
        // older than it are no longer reachable by any recovery path.
        let retain_floor = list_snapshots(&self.dir)?.last().map(|&(g, _)| g);
        let snap = ShardSnapshot {
            lsn: watermark,
            sessions,
        };
        write_snapshot_with(
            snapshot_path(&self.dir, new_gen),
            &snap,
            self.faults.as_deref(),
        )?;
        // Seal the old segment before swapping the writer.
        self.writer.sync()?;
        self.writer = WalWriter::create(wal_path(&self.dir, new_gen), self.policy)?;
        self.writer.set_faults(self.faults.clone());
        self.generation = new_gen;
        self.records_since_checkpoint = 0;
        if let Some(m) = &self.metrics {
            m.checkpoints.inc();
        }
        // Best-effort — a failed delete costs disk, not correctness.
        if let Some(floor) = retain_floor {
            for (g, path) in list_snapshots(&self.dir)?
                .into_iter()
                .chain(list_segments(&self.dir)?)
            {
                if g < floor {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
        Ok(())
    }
}
