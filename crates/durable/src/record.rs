//! WAL record payloads: what one frame means.
//!
//! Payload layout: `lsn u64 | kind u8 | body`. Records are appended after
//! the operation has been applied to the in-memory session and before the
//! client is acknowledged — the log is a redo log of acknowledged
//! operations. Replay is idempotent (feeds skip duplicates, exchanges merge
//! at the target, script installs overwrite the same key), so a record whose
//! effect also landed in a concurrent snapshot is safe to re-apply.

use sedex_core::{Script, SlotRef, Statement};
use sedex_storage::codec::{
    decode_tuple, encode_tuple, ByteReader, ByteWriter, CodecError, CodecResult,
};
use sedex_storage::Tuple;

const KIND_OPEN: u8 = 1;
const KIND_FEED: u8 = 2;
const KIND_PUSH: u8 = 3;
const KIND_SCRIPT_ADD: u8 = 4;
const KIND_FLUSH: u8 = 5;
const KIND_CLOSE: u8 = 6;
const KIND_INSTALL: u8 = 7;

/// One logged operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A session was opened from an inline scenario body.
    Open {
        /// Session name.
        session: String,
        /// The full `.sdx` scenario text (schemas, correspondences, CFDs,
        /// seed data) — replay re-opens the session exactly as the client
        /// did.
        scenario: String,
    },
    /// A context tuple was fed (not exchanged).
    Feed {
        /// Session name.
        session: String,
        /// Source relation.
        relation: String,
        /// The fed tuple.
        tuple: Tuple,
    },
    /// A tuple was pushed (fed and exchanged).
    Push {
        /// Session name.
        session: String,
        /// Source relation.
        relation: String,
        /// The pushed tuple.
        tuple: Tuple,
    },
    /// A script was generated and cached under its tuple-tree shape key.
    ScriptAdd {
        /// Session name.
        session: String,
        /// Shape key (`relation|post-order shape`).
        key: String,
        /// The generated script.
        script: Script,
    },
    /// All pending tuples were exchanged (a durability boundary: the
    /// service checkpoints the shard right after).
    Flush {
        /// Session name.
        session: String,
    },
    /// The session was closed and dropped.
    Close {
        /// Session name.
        session: String,
    },
    /// A session arrived *whole* from another node — a live-migration
    /// handoff, or a promotion installing a dead peer's standby. The WAL is
    /// a redo log of acknowledged operations, and for inherited sessions
    /// the acknowledged operation is "this full state now lives here": the
    /// receiving node logs it so its own crash recovery *and* its own
    /// replication followers see the session, not just its snapshots.
    Install {
        /// Session name.
        session: String,
        /// The scenario body the session was opened with.
        scenario: String,
        /// Requests served before the handoff.
        requests: u64,
        /// Tuples fed or pushed before the handoff.
        tuples_in: u64,
        /// Encoded [`SessionState`](sedex_core::SessionState) bytes (the
        /// snapshot codec's `encode_session_state`); decoded lazily at
        /// replay so shipping a frame never parses state.
        state: Vec<u8>,
    },
}

impl WalRecord {
    /// The session this record belongs to.
    pub fn session(&self) -> &str {
        match self {
            WalRecord::Open { session, .. }
            | WalRecord::Feed { session, .. }
            | WalRecord::Push { session, .. }
            | WalRecord::ScriptAdd { session, .. }
            | WalRecord::Flush { session }
            | WalRecord::Close { session }
            | WalRecord::Install { session, .. } => session,
        }
    }

    /// Stable lowercase name of the record kind (for `sedex recover`
    /// summaries).
    pub fn kind_name(&self) -> &'static str {
        match self {
            WalRecord::Open { .. } => "open",
            WalRecord::Feed { .. } => "feed",
            WalRecord::Push { .. } => "push",
            WalRecord::ScriptAdd { .. } => "script_add",
            WalRecord::Flush { .. } => "flush",
            WalRecord::Close { .. } => "close",
            WalRecord::Install { .. } => "install",
        }
    }

    /// Encode into a frame payload, stamped with `lsn`.
    pub fn encode(&self, lsn: u64) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(lsn);
        match self {
            WalRecord::Open { session, scenario } => {
                w.put_u8(KIND_OPEN);
                w.put_str(session);
                w.put_str(scenario);
            }
            WalRecord::Feed {
                session,
                relation,
                tuple,
            } => {
                w.put_u8(KIND_FEED);
                w.put_str(session);
                w.put_str(relation);
                encode_tuple(&mut w, tuple);
            }
            WalRecord::Push {
                session,
                relation,
                tuple,
            } => {
                w.put_u8(KIND_PUSH);
                w.put_str(session);
                w.put_str(relation);
                encode_tuple(&mut w, tuple);
            }
            WalRecord::ScriptAdd {
                session,
                key,
                script,
            } => {
                w.put_u8(KIND_SCRIPT_ADD);
                w.put_str(session);
                w.put_str(key);
                encode_script(&mut w, script);
            }
            WalRecord::Flush { session } => {
                w.put_u8(KIND_FLUSH);
                w.put_str(session);
            }
            WalRecord::Close { session } => {
                w.put_u8(KIND_CLOSE);
                w.put_str(session);
            }
            WalRecord::Install {
                session,
                scenario,
                requests,
                tuples_in,
                state,
            } => {
                w.put_u8(KIND_INSTALL);
                w.put_str(session);
                w.put_str(scenario);
                w.put_u64(*requests);
                w.put_u64(*tuples_in);
                w.put_bytes(state);
            }
        }
        w.into_bytes()
    }

    /// Decode a frame payload into `(lsn, record)`.
    pub fn decode(payload: &[u8]) -> CodecResult<(u64, WalRecord)> {
        let mut r = ByteReader::new(payload);
        let lsn = r.get_u64()?;
        let kind = r.get_u8()?;
        let rec = match kind {
            KIND_OPEN => WalRecord::Open {
                session: r.get_str()?,
                scenario: r.get_str()?,
            },
            KIND_FEED => WalRecord::Feed {
                session: r.get_str()?,
                relation: r.get_str()?,
                tuple: decode_tuple(&mut r)?,
            },
            KIND_PUSH => WalRecord::Push {
                session: r.get_str()?,
                relation: r.get_str()?,
                tuple: decode_tuple(&mut r)?,
            },
            KIND_SCRIPT_ADD => WalRecord::ScriptAdd {
                session: r.get_str()?,
                key: r.get_str()?,
                script: decode_script(&mut r)?,
            },
            KIND_FLUSH => WalRecord::Flush {
                session: r.get_str()?,
            },
            KIND_CLOSE => WalRecord::Close {
                session: r.get_str()?,
            },
            KIND_INSTALL => WalRecord::Install {
                session: r.get_str()?,
                scenario: r.get_str()?,
                requests: r.get_u64()?,
                tuples_in: r.get_u64()?,
                state: r.get_bytes()?.to_vec(),
            },
            t => return Err(CodecError::new(format!("unknown record kind {t}"))),
        };
        r.expect_end()?;
        Ok((lsn, rec))
    }
}

const SLOT_SRC: u8 = 0;
const SLOT_FRESH: u8 = 1;

/// Encode a [`Script`] (statements, assignments, slot refs).
pub fn encode_script(w: &mut ByteWriter, script: &Script) {
    w.put_u32(script.statements.len() as u32);
    for st in &script.statements {
        w.put_str(&st.relation);
        w.put_u32(st.assignments.len() as u32);
        for &(col, slot) in &st.assignments {
            w.put_u32(col as u32);
            match slot {
                SlotRef::Src(i) => {
                    w.put_u8(SLOT_SRC);
                    w.put_u32(i as u32);
                }
                SlotRef::Fresh(id) => {
                    w.put_u8(SLOT_FRESH);
                    w.put_u32(id);
                }
            }
        }
    }
}

/// Decode a [`Script`].
pub fn decode_script(r: &mut ByteReader<'_>) -> CodecResult<Script> {
    let nstmts = r.get_u32()? as usize;
    let mut statements = Vec::with_capacity(nstmts.min(4096));
    for _ in 0..nstmts {
        let relation = r.get_str()?;
        let nassign = r.get_u32()? as usize;
        let mut assignments = Vec::with_capacity(nassign.min(4096));
        for _ in 0..nassign {
            let col = r.get_u32()? as usize;
            let slot = match r.get_u8()? {
                SLOT_SRC => SlotRef::Src(r.get_u32()? as usize),
                SLOT_FRESH => SlotRef::Fresh(r.get_u32()?),
                t => return Err(CodecError::new(format!("unknown slot tag {t}"))),
            };
            assignments.push((col, slot));
        }
        statements.push(Statement {
            relation,
            assignments,
        });
    }
    Ok(Script { statements })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::Value;

    fn sample_script() -> Script {
        Script {
            statements: vec![
                Statement {
                    relation: "Stu".into(),
                    assignments: vec![(0, SlotRef::Src(1)), (2, SlotRef::Fresh(3))],
                },
                Statement {
                    relation: "Dept".into(),
                    assignments: vec![(1, SlotRef::Src(0))],
                },
            ],
        }
    }

    #[test]
    fn all_record_kinds_roundtrip() {
        let records = [
            WalRecord::Open {
                session: "t1".into(),
                scenario: "[source]\nR(a*)\n".into(),
            },
            WalRecord::Feed {
                session: "t1".into(),
                relation: "Dep".into(),
                tuple: Tuple::of(["d1".to_string(), "b1".to_string()]),
            },
            WalRecord::Push {
                session: "t1".into(),
                relation: "Student".into(),
                tuple: Tuple::new(vec![Value::text("s1"), Value::Null, Value::Labeled(4)]),
            },
            WalRecord::ScriptAdd {
                session: "t1".into(),
                key: "Student|(a(b))".into(),
                script: sample_script(),
            },
            WalRecord::Flush {
                session: "t1".into(),
            },
            WalRecord::Close {
                session: "t1".into(),
            },
            WalRecord::Install {
                session: "t1".into(),
                scenario: "[source]\nR(a*)\n".into(),
                requests: 42,
                tuples_in: 17,
                state: vec![1, 2, 3, 0, 255],
            },
        ];
        for (i, rec) in records.iter().enumerate() {
            let payload = rec.encode(i as u64 + 100);
            let (lsn, back) = WalRecord::decode(&payload).unwrap();
            assert_eq!(lsn, i as u64 + 100);
            assert_eq!(&back, rec, "kind {}", rec.kind_name());
            assert_eq!(back.session(), "t1");
        }
    }

    #[test]
    fn corrupt_payloads_error_instead_of_panicking() {
        let payload = WalRecord::Flush {
            session: "t1".into(),
        }
        .encode(7);
        for cut in 0..payload.len() {
            assert!(WalRecord::decode(&payload[..cut]).is_err(), "cut {cut}");
        }
        let mut bad_kind = payload.clone();
        bad_kind[8] = 99;
        assert!(WalRecord::decode(&bad_kind).is_err());
        let mut trailing = payload;
        trailing.push(0);
        assert!(WalRecord::decode(&trailing).is_err());
    }
}
