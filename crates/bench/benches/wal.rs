//! Durability microbenches: WAL append throughput under each fsync policy,
//! snapshot write/recover at 10k and 100k tuples, and log-tail replay.

use std::path::PathBuf;

use sedex_bench::harness::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sedex_core::SedexConfig;
use sedex_durable::recover::open_session;
use sedex_durable::{
    read_snapshot, recover_shard_dir, write_snapshot, DurableShard, FsyncPolicy, RecoveryReport,
    SessionSnapshot, ShardSnapshot, WalRecord,
};
use sedex_scenarios::textfmt;

const SCENARIO: &str = "\
[source]
Dep(dname*, building)
Student(sname*, program, dep->Dep)

[target]
Stu(student*, prog, dpt)

[correspondences]
sname <-> student
program <-> prog
dep <-> dpt

[data]
Dep: d1, b1
";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sedex-walbench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn push_record(i: usize) -> WalRecord {
    let (relation, tuple) =
        textfmt::parse_data_line(&format!("Student: s{i}, p{i}, d1"), 1).unwrap();
    WalRecord::Push {
        session: "bench".to_owned(),
        relation,
        tuple,
    }
}

/// A session with `n` exchanged same-shape tuples, snapshot-ready.
fn session_snapshot(n: usize) -> SessionSnapshot {
    let mut session = open_session(&SedexConfig::default(), SCENARIO, None).unwrap();
    for i in 0..n {
        let (rel, tuple) =
            textfmt::parse_data_line(&format!("Student: s{i}, p{i}, d1"), 1).unwrap();
        session.exchange_tuple(&rel, tuple).unwrap();
    }
    SessionSnapshot {
        name: "bench".to_owned(),
        scenario: SCENARIO.to_owned(),
        requests: n as u64,
        tuples_in: n as u64,
        state: session.export_state(),
    }
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal");
    let record = push_record(0);
    for (label, policy) in [
        ("append_fsync_off", FsyncPolicy::Off),
        ("append_fsync_every_64", FsyncPolicy::EveryN(64)),
        ("append_fsync_always", FsyncPolicy::Always),
    ] {
        let dir = tmp_dir(label);
        let mut shard = DurableShard::open(&dir, policy, &RecoveryReport::default(), None).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| shard.append(black_box(&record)).unwrap())
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal");
    for n in [10_000usize, 100_000] {
        let snap = ShardSnapshot {
            lsn: n as u64,
            sessions: vec![session_snapshot(n)],
        };
        let dir = tmp_dir(&format!("snap-{n}"));
        let path = dir.join("snapshot-1.snap");
        group.bench_with_input(BenchmarkId::new("snapshot_write", n), &snap, |b, snap| {
            b.iter(|| write_snapshot(black_box(&path), snap).unwrap())
        });
        write_snapshot(&path, &snap).unwrap();
        let bytes = std::fs::metadata(&path).unwrap().len();
        println!("  (snapshot at {n} tuples: {bytes} bytes on disk)");
        // Decode only: file → ShardSnapshot structs.
        group.bench_function(BenchmarkId::new("snapshot_read", n), |b| {
            b.iter(|| read_snapshot(black_box(&path)).unwrap().unwrap())
        });
        // Full recovery: decode + rebuild live sessions (engine included).
        group.bench_function(BenchmarkId::new("snapshot_recover", n), |b| {
            b.iter(|| {
                let (sessions, report) =
                    recover_shard_dir(&dir, &SedexConfig::default(), None).unwrap();
                assert_eq!(sessions.len(), 1);
                black_box(report)
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_log_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal");
    // Replay a pure log tail (no snapshot): open + 10k pushes. This is the
    // worst-case restart path; snapshots exist to bound it.
    let n = 10_000usize;
    let dir = tmp_dir("replay");
    let mut shard =
        DurableShard::open(&dir, FsyncPolicy::Off, &RecoveryReport::default(), None).unwrap();
    shard
        .append(&WalRecord::Open {
            session: "bench".to_owned(),
            scenario: SCENARIO.to_owned(),
        })
        .unwrap();
    for i in 0..n {
        shard.append(&push_record(i)).unwrap();
    }
    drop(shard);
    group.bench_function(BenchmarkId::new("log_replay", n), |b| {
        b.iter(|| {
            let (sessions, report) =
                recover_shard_dir(&dir, &SedexConfig::default(), None).unwrap();
            assert_eq!(report.records_replayed, 1 + n as u64);
            black_box(sessions)
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

criterion_group!(benches, bench_append, bench_snapshot, bench_log_replay);
criterion_main!(benches);
