//! Criterion microbenches for the pq-gram kernels (profile construction,
//! distance, sorting, windowed variant) — the hot path of the Match
//! function.

use sedex_bench::harness::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sedex_pqgram::{normalized_distance, sort, PqGramProfile, Tree, WindowedProfile};

/// A bushy synthetic tree with `n` nodes and fan-out ~4.
fn synthetic_tree(n: usize) -> Tree<String> {
    let mut t = Tree::new("root".to_string());
    let mut frontier = vec![t.root()];
    let labels = ["alpha", "beta", "gamma", "delta", "epsilon"];
    let mut count = 1;
    'outer: loop {
        let mut next = Vec::new();
        for &p in &frontier {
            for k in 0..4 {
                if count >= n {
                    break 'outer;
                }
                next.push(t.add_child(p, labels[(count + k) % labels.len()].to_string()));
                count += 1;
            }
        }
        frontier = next;
    }
    t
}

fn bench_profile(c: &mut Criterion) {
    let mut g = c.benchmark_group("pqgram_profile");
    for n in [16usize, 64, 256, 1024] {
        let t = synthetic_tree(n);
        g.bench_with_input(BenchmarkId::new("build_2_1", n), &t, |b, t| {
            b.iter(|| PqGramProfile::new(black_box(t), 2, 1))
        });
        g.bench_with_input(BenchmarkId::new("build_3_2", n), &t, |b, t| {
            b.iter(|| PqGramProfile::new(black_box(t), 3, 2))
        });
    }
    g.finish();
}

fn bench_distance(c: &mut Criterion) {
    let mut g = c.benchmark_group("pqgram_distance");
    for n in [64usize, 512] {
        let t1 = synthetic_tree(n);
        let mut t2 = synthetic_tree(n);
        t2.add_child(t2.root(), "mutant".to_string());
        let p1 = PqGramProfile::new(&t1, 2, 1);
        let p2 = PqGramProfile::new(&t2, 2, 1);
        g.bench_function(BenchmarkId::new("normalized", n), |b| {
            b.iter(|| normalized_distance(black_box(&p1), black_box(&p2)))
        });
    }
    g.finish();
}

fn bench_sort(c: &mut Criterion) {
    let t = synthetic_tree(512);
    c.bench_function("pqgram_sort_512", |b| {
        b.iter(|| sort::sorted(black_box(&t)))
    });
}

fn bench_windowed(c: &mut Criterion) {
    let t = synthetic_tree(256);
    c.bench_function("pqgram_windowed_256_q2_w3", |b| {
        b.iter(|| WindowedProfile::new(black_box(&t), 2, 2, 3))
    });
}

criterion_group!(
    benches,
    bench_profile,
    bench_distance,
    bench_sort,
    bench_windowed
);
criterion_main!(benches);
