//! Criterion microbenches for tree construction: relation trees, tuple
//! trees, reduction and shape keys — the per-tuple cost of the engine.

use sedex_bench::harness::{black_box, criterion_group, criterion_main, Criterion};
use sedex_scenarios::university;
use sedex_treerep::{
    post_order_key, reduce_to_relation_tree, relation_tree, tuple_tree, SchemaForest, TreeConfig,
};

fn bench_relation_tree(c: &mut Criterion) {
    let s = university::scenario();
    let cfg = TreeConfig::default();
    c.bench_function("relation_tree_registration", |b| {
        b.iter(|| relation_tree(black_box(&s.source), "Registration", &cfg).unwrap())
    });
    c.bench_function("schema_forest_university", |b| {
        b.iter(|| SchemaForest::new(black_box(&s.source), &cfg).unwrap())
    });
}

fn bench_tuple_tree(c: &mut Criterion) {
    let inst = university::fig3_instance().unwrap();
    let cfg = TreeConfig::default();
    c.bench_function("tuple_tree_student_deep", |b| {
        b.iter(|| tuple_tree(black_box(&inst), "Student", 0, &cfg).unwrap())
    });
    c.bench_function("tuple_tree_registration_deeper", |b| {
        b.iter(|| tuple_tree(black_box(&inst), "Registration", 0, &cfg).unwrap())
    });
}

fn bench_reduce_and_key(c: &mut Criterion) {
    let inst = university::fig3_instance().unwrap();
    let cfg = TreeConfig::default();
    let tt = tuple_tree(&inst, "Student", 0, &cfg).unwrap();
    c.bench_function("reduce_to_relation_tree", |b| {
        b.iter(|| reduce_to_relation_tree(black_box(&tt)))
    });
    let rt = reduce_to_relation_tree(&tt);
    c.bench_function("post_order_key", |b| {
        b.iter(|| post_order_key(black_box(&rt)))
    });
}

criterion_group!(
    benches,
    bench_relation_tree,
    bench_tuple_tree,
    bench_reduce_and_key
);
criterion_main!(benches);
