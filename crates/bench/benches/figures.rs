//! Criterion versions of the figure workloads at reduced scale: end-to-end
//! exchanges for SEDEX / EDEX / ++Spicy on representative scenarios, so
//! regressions in any engine show up in `cargo bench`.

use sedex_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sedex_core::{EdexEngine, SedexEngine};
use sedex_mapping::SpicyEngine;
use sedex_scenarios::ambiguity::amb_only;
use sedex_scenarios::stbench::{basic, BasicKind};

fn bench_engines_on_cp(c: &mut Criterion) {
    let s = basic(BasicKind::Cp);
    let inst = s.populate(1000, 1).unwrap();
    let mut g = c.benchmark_group("engines_cp_1k");
    g.sample_size(20);
    g.bench_function("sedex", |b| {
        b.iter(|| {
            SedexEngine::new()
                .exchange(&inst, &s.target, &s.sigma)
                .unwrap()
        })
    });
    g.bench_function("edex", |b| {
        b.iter(|| {
            EdexEngine::new()
                .exchange(&inst, &s.target, &s.sigma)
                .unwrap()
        })
    });
    let spicy = SpicyEngine::new(&s.source, &s.target, &s.sigma);
    g.bench_function("spicy", |b| b.iter(|| spicy.run(&inst, &s.target).unwrap()));
    g.finish();
}

fn bench_sedex_across_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("sedex_scenarios_500");
    g.sample_size(20);
    for kind in [BasicKind::Cp, BasicKind::Vp, BasicKind::De, BasicKind::Ne] {
        let s = basic(kind);
        let inst = s.populate(500, 2).unwrap();
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &inst,
            |b, inst| {
                b.iter(|| {
                    SedexEngine::new()
                        .exchange(inst, &s.target, &s.sigma)
                        .unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_amb_quality_workload(c: &mut Criterion) {
    let s = amb_only(2);
    let inst = s.populate(100, 3).unwrap();
    let mut g = c.benchmark_group("amb_2udp_100");
    g.sample_size(20);
    g.bench_function("sedex", |b| {
        b.iter(|| {
            SedexEngine::new()
                .exchange(&inst, &s.target, &s.sigma)
                .unwrap()
        })
    });
    let spicy = SpicyEngine::new(&s.source, &s.target, &s.sigma);
    g.bench_function("spicy", |b| b.iter(|| spicy.run(&inst, &s.target).unwrap()));
    g.finish();
}

criterion_group!(
    benches,
    bench_engines_on_cp,
    bench_sedex_across_scenarios,
    bench_amb_quality_workload
);
criterion_main!(benches);
