//! Criterion microbenches for the exchange kernels: Match, translate,
//! script generation, script execution, chase and egd application.

use sedex_bench::harness::{black_box, criterion_group, criterion_main, Criterion};
use sedex_core::scriptgen::generate_script;
use sedex_core::translate::{slot_values, translate};
use sedex_core::{run_script, Matcher};
use sedex_mapping::chase::{chase, NullFactory};
use sedex_mapping::egd::apply_egds;
use sedex_mapping::{generate_tgds, Egd};
use sedex_scenarios::university;
use sedex_storage::Instance;
use sedex_treerep::{tuple_tree, SchemaForest, TreeConfig};

fn bench_match(c: &mut Criterion) {
    let s = university::scenario();
    let inst = university::fig3_instance().unwrap();
    let cfg = TreeConfig::default();
    let forest = SchemaForest::new(&s.target, &cfg).unwrap();
    let matcher = Matcher::new(&forest, 2, 1);
    let tt = tuple_tree(&inst, "Registration", 0, &cfg).unwrap();
    c.bench_function("match_registration_tuple", |b| {
        b.iter(|| matcher.best_match(black_box(&tt), &s.sigma).unwrap())
    });
}

fn bench_translate_and_script(c: &mut Criterion) {
    let s = university::scenario();
    let inst = university::fig3_instance().unwrap();
    let cfg = TreeConfig::default();
    let tt = tuple_tree(&inst, "Registration", 0, &cfg).unwrap();
    let tr = sedex_treerep::relation_tree(&s.target, "Reg", &cfg).unwrap();
    c.bench_function("translate_alg1", |b| {
        b.iter(|| translate(black_box(&tt), &tr, &s.sigma))
    });
    let ty = translate(&tt, &tr, &s.sigma);
    c.bench_function("generate_script_alg2", |b| {
        b.iter(|| generate_script(black_box(&ty), &s.target))
    });
    let script = generate_script(&ty, &s.target);
    let values = slot_values(&tt);
    c.bench_function("run_script", |b| {
        b.iter(|| {
            let mut out = Instance::new(s.target.clone());
            run_script(black_box(&script), &values, &mut out, &mut 0).unwrap()
        })
    });
}

fn bench_chase_and_egds(c: &mut Criterion) {
    let s = university::scenario();
    let inst = university::fig3_instance().unwrap();
    let tgds = generate_tgds(&s.source, &s.target, &s.sigma);
    c.bench_function("chase_university", |b| {
        b.iter(|| {
            let mut target = Instance::new(s.target.clone());
            let mut nulls = NullFactory::new();
            chase(black_box(&inst), &mut target, &tgds, &mut nulls).unwrap();
            target
        })
    });
    let mut target = Instance::new(s.target.clone());
    let mut nulls = NullFactory::new();
    chase(&inst, &mut target, &tgds, &mut nulls).unwrap();
    let egds = Egd::key_egds(&s.target);
    c.bench_function("apply_egds_university", |b| {
        b.iter(|| {
            let mut t = target.clone();
            apply_egds(black_box(&mut t), &egds)
        })
    });
}

criterion_group!(
    benches,
    bench_match,
    bench_translate_and_script,
    bench_chase_and_egds
);
criterion_main!(benches);
