//! Ablation benches for the design choices DESIGN.md calls out: script
//! reuse, processing order, null pruning, pq-gram parameters and threading.

use sedex_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sedex_core::{SedexConfig, SedexEngine};
use sedex_pqgram::{normalized_distance, tree_edit_distance, PqGramProfile, Tree};
use sedex_scenarios::stbench::{basic, BasicKind};

fn bench_reuse_ablation(c: &mut Criterion) {
    let s = basic(BasicKind::De);
    let inst = s.populate(500, 4).unwrap();
    let mut g = c.benchmark_group("ablation_reuse_de_500");
    g.sample_size(15);
    g.bench_function("reuse_on", |b| {
        b.iter(|| {
            SedexEngine::new()
                .exchange(&inst, &s.target, &s.sigma)
                .unwrap()
        })
    });
    let no_reuse = SedexEngine::with_config(SedexConfig {
        reuse_scripts: false,
        ..SedexConfig::default()
    });
    g.bench_function("reuse_off", |b| {
        b.iter(|| no_reuse.exchange(&inst, &s.target, &s.sigma).unwrap())
    });
    g.finish();
}

fn bench_order_ablation(c: &mut Criterion) {
    let s = basic(BasicKind::De);
    let inst = s.populate(500, 5).unwrap();
    let mut g = c.benchmark_group("ablation_order_de_500");
    g.sample_size(15);
    g.bench_function("height_order", |b| {
        b.iter(|| {
            SedexEngine::new()
                .exchange(&inst, &s.target, &s.sigma)
                .unwrap()
        })
    });
    let unordered = SedexEngine::with_config(SedexConfig {
        order_by_height: false,
        ..SedexConfig::default()
    });
    g.bench_function("schema_order", |b| {
        b.iter(|| unordered.exchange(&inst, &s.target, &s.sigma).unwrap())
    });
    g.finish();
}

fn bench_pq_parameters(c: &mut Criterion) {
    let s = basic(BasicKind::Vp);
    let inst = s.populate(500, 6).unwrap();
    let mut g = c.benchmark_group("ablation_pq_params_vp_500");
    g.sample_size(15);
    for (p, q) in [(2usize, 1usize), (3, 1), (2, 2)] {
        let engine = SedexEngine::with_config(SedexConfig {
            p,
            q,
            ..SedexConfig::default()
        });
        g.bench_function(format!("p{p}q{q}"), |b| {
            b.iter(|| engine.exchange(&inst, &s.target, &s.sigma).unwrap())
        });
    }
    g.finish();
}

fn bench_threads(c: &mut Criterion) {
    let s = basic(BasicKind::Un);
    let inst = s.populate(2000, 7).unwrap();
    let mut g = c.benchmark_group("ablation_threads_un_2k");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let engine = SedexEngine::with_config(SedexConfig {
            threads,
            batch_size: 512,
            ..SedexConfig::default()
        });
        g.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| engine.exchange(&inst, &s.target, &s.sigma).unwrap())
        });
    }
    g.finish();
}

/// The paper's justification for pq-grams over tree edit distance:
/// linear-time profiles vs the polynomial Zhang–Shasha DP. Both measured on
/// growing trees.
fn bench_pqgram_vs_ted(c: &mut Criterion) {
    fn tree(n: usize) -> Tree<String> {
        let labels = ["a", "b", "c", "d", "e"];
        let mut t = Tree::new("root".to_string());
        let mut frontier = vec![t.root()];
        let mut count = 1;
        'outer: loop {
            let mut next = Vec::new();
            for &p in &frontier {
                for k in 0..3 {
                    if count >= n {
                        break 'outer;
                    }
                    next.push(t.add_child(p, labels[(count + k) % labels.len()].to_string()));
                    count += 1;
                }
            }
            frontier = next;
        }
        t
    }
    let mut g = c.benchmark_group("pqgram_vs_ted");
    g.sample_size(15);
    for n in [32usize, 128, 512] {
        let t1 = tree(n);
        let mut t2 = tree(n);
        t2.add_child(t2.root(), "mutant".to_string());
        g.bench_with_input(BenchmarkId::new("pqgram_end_to_end", n), &n, |b, _| {
            b.iter(|| {
                let p1 = PqGramProfile::new(&t1, 2, 1);
                let p2 = PqGramProfile::new(&t2, 2, 1);
                normalized_distance(&p1, &p2)
            })
        });
        g.bench_with_input(BenchmarkId::new("tree_edit_distance", n), &n, |b, _| {
            b.iter(|| tree_edit_distance(&t1, &t2))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_reuse_ablation,
    bench_order_ablation,
    bench_pq_parameters,
    bench_threads,
    bench_pqgram_vs_ted
);
criterion_main!(benches);
