//! Fig. 12 — Scalability over large source instances: execution time for
//! the fixed scenarios a–d at growing source sizes, comparing ++Spicy,
//! EDEX and SEDEX.
//!
//! `cargo run -p sedex-bench --release --bin fig12_large_instances`
//! Default sizes are scaled down (10k/25k/50k/100k tuples); pass `--full`
//! for the paper's 100k/250k/500k/1M.

use sedex_bench::{full_scale, print_table, secs, write_csv};
use sedex_core::{EdexEngine, SedexEngine};
use sedex_mapping::SpicyEngine;
use sedex_scenarios::compose::abcd_scenarios;

fn main() {
    let sizes: Vec<usize> = if full_scale() {
        vec![100_000, 250_000, 500_000, 1_000_000]
    } else {
        vec![10_000, 25_000, 50_000, 100_000]
    };
    let mut rows = Vec::new();
    for scenario in abcd_scenarios() {
        // Tuples per relation so the TOTAL source size hits the target.
        let rels = scenario.source.len();
        for &total in &sizes {
            let per_rel = (total / rels).max(1);
            let inst = scenario.populate(per_rel, 66).expect("populate");
            let actual = inst.total_tuples();

            let spicy = SpicyEngine::new(&scenario.source, &scenario.target, &scenario.sigma);
            let (_, spicy_rep) = spicy.run(&inst, &scenario.target).expect("spicy");
            let (_, edex_rep) = EdexEngine::new()
                .exchange(&inst, &scenario.target, &scenario.sigma)
                .expect("edex");
            let (_, sedex_rep) = SedexEngine::new()
                .exchange(&inst, &scenario.target, &scenario.sigma)
                .expect("sedex");

            rows.push(vec![
                scenario.name.clone(),
                actual.to_string(),
                secs(spicy_rep.gen_time + spicy_rep.exec_time),
                secs(edex_rep.tg + edex_rep.te),
                secs(sedex_rep.tg + sedex_rep.te),
                format!("{:.1}", sedex_rep.reuse_percent()),
            ]);
            println!(
                "[{} @ {:>8} tuples] spicy {}s  edex {}s  sedex {}s",
                scenario.name,
                actual,
                secs(spicy_rep.gen_time + spicy_rep.exec_time),
                secs(edex_rep.tg + edex_rep.te),
                secs(sedex_rep.tg + sedex_rep.te),
            );
        }
    }
    print_table(
        "Fig. 12 — total time (seconds) over source size",
        &[
            "scenario",
            "tuples",
            "spicy_s",
            "edex_s",
            "sedex_s",
            "sedex_reuse_%",
        ],
        &rows,
    );
    write_csv(
        "fig12_large_instances.csv",
        &[
            "scenario",
            "tuples",
            "spicy_s",
            "edex_s",
            "sedex_s",
            "sedex_reuse_pct",
        ],
        &rows,
    );
    println!("\nPaper shape: SEDEX grows sublinearly in tuples thanks to script reuse; EDEX and ++Spicy grow faster.");
}
