//! Fig. 15 — Percentage of generated vs. reused scripts per basic scenario.
//!
//! `cargo run -p sedex-bench --release --bin fig15_script_reuse`

use sedex_bench::{print_table, write_csv};
use sedex_core::SedexEngine;
use sedex_scenarios::stbench::{basic, BasicKind};

fn main() {
    let tuples = 5_000;
    let mut rows = Vec::new();
    for kind in BasicKind::all() {
        let scenario = basic(kind);
        let inst = scenario.populate(tuples, 88).expect("populate");
        let (_, rep) = SedexEngine::new()
            .exchange(&inst, &scenario.target, &scenario.sigma)
            .expect("sedex");
        let total = (rep.scripts_generated + rep.scripts_reused).max(1);
        let gen_pct = rep.scripts_generated as f64 * 100.0 / total as f64;
        let reuse_pct = rep.scripts_reused as f64 * 100.0 / total as f64;
        rows.push(vec![
            kind.name().to_string(),
            rep.scripts_generated.to_string(),
            rep.scripts_reused.to_string(),
            format!("{gen_pct:.2}"),
            format!("{reuse_pct:.2}"),
        ]);
    }
    print_table(
        "Fig. 15 — script generation vs. reuse per scenario",
        &["scenario", "generated", "reused", "gen_%", "reuse_%"],
        &rows,
    );
    write_csv(
        "fig15_script_reuse.csv",
        &[
            "scenario",
            "generated",
            "reused",
            "generated_pct",
            "reused_pct",
        ],
        &rows,
    );
    println!("\nPaper shape: every scenario reuses the overwhelming majority of scripts; simple scenarios (CP/CV/HP/VP) reuse most.");
}
