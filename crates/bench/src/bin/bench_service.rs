//! Service transport benchmark: the same PUSH workload driven over every
//! wire mode — text vs binary, serial vs pipelined vs batched — against
//! an in-process server on a loopback socket.
//!
//! `cargo run -p sedex-bench --release --bin bench_service`
//!
//! Writes `BENCH_service.json` into the repository root (or the current
//! directory when run elsewhere): a flat, diff-friendly snapshot of
//! requests/sec per mode, so later PRs show their speedup or regression
//! as a one-line change in review. Pipelining exists to save round-trips
//! and batching to save per-request framing and dispatch; this bench is
//! what keeps those claims honest.
//!
//! Besides throughput, each mode reports p50/p99 latency per client
//! round-trip — one `PUSH` in the serial modes, one whole burst in the
//! pipelined/batched modes (that *is* the unit a client waits on there),
//! so the serial and burst figures are not directly comparable to each
//! other, only to their own trajectory across PRs.
//!
//! The final mode, `cluster_routed`, drives the same serial workload
//! through a [`ClusterClient`] against two in-process cluster nodes,
//! spreading sessions across both: its gap to `text_serial` is the price
//! of ownership gating plus client-side ring resolution.

use std::time::{Duration, Instant};

use sedex_bench::print_table;
use sedex_service::{
    Client, ClientConfig, ClusterClient, ClusterConfig, Server, ServerConfig, ServerHandle,
};

const SCENARIO: &str = "\
[source]
Dep(dname*, building)
Student(sname*, program, dep->Dep)

[target]
Stu(student*, prog, dpt)

[correspondences]
sname <-> student
program <-> prog
dep <-> dpt
";

/// Tuples pushed per measured run. Each mode gets its own session, so
/// script-repository state never leaks across modes.
const TUPLES: usize = 2_000;
/// Pipelined/batched burst size.
const BURST: usize = 200;
/// Sessions the cluster mode spreads its pushes across, so both nodes
/// own a share of the traffic and the ring actually routes.
const CLUSTER_SESSIONS: usize = 4;

#[derive(Clone, Copy, Debug)]
enum Mode {
    TextSerial,
    TextPipelined,
    BinarySerial,
    BinaryPipelined,
    BinaryBatched,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::TextSerial => "text_serial",
            Mode::TextPipelined => "text_pipelined",
            Mode::BinarySerial => "binary_serial",
            Mode::BinaryPipelined => "binary_pipelined",
            Mode::BinaryBatched => "binary_batched",
        }
    }

    fn binary(self) -> bool {
        matches!(
            self,
            Mode::BinarySerial | Mode::BinaryPipelined | Mode::BinaryBatched
        )
    }
}

fn data_lines(n: usize) -> Vec<String> {
    (0..n)
        .map(|j| {
            let dep = if j % 2 == 0 { "d0" } else { "_" };
            format!("Student: s{j}, p{j}, {dep}")
        })
        .collect()
}

/// One measured run: open a fresh session, push `TUPLES` tuples in the
/// mode's submission style, confirm every reply. Returns the push time
/// plus the latency of every client round-trip (a single `PUSH` in the
/// serial modes, a whole burst otherwise).
fn run_mode(handle: &ServerHandle, mode: Mode, round: usize) -> (Duration, Vec<Duration>) {
    let mut c = Client::connect_with(
        handle.local_addr(),
        ClientConfig {
            binary: mode.binary(),
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    let session = format!("{}-{round}", mode.name());
    c.open(&session, SCENARIO).unwrap().into_ok().unwrap();
    c.feed(&session, "Dep: d0, b0").unwrap().into_ok().unwrap();
    let lines = data_lines(TUPLES);

    let mut samples = Vec::new();
    let start = Instant::now();
    match mode {
        Mode::TextSerial | Mode::BinarySerial => {
            for line in &lines {
                let t = Instant::now();
                c.push(&session, line).unwrap().into_ok().unwrap();
                samples.push(t.elapsed());
            }
        }
        Mode::TextPipelined | Mode::BinaryPipelined => {
            for chunk in lines.chunks(BURST) {
                let cmds: Vec<String> = chunk
                    .iter()
                    .map(|l| format!("PUSH {session} {l}"))
                    .collect();
                let refs: Vec<&str> = cmds.iter().map(String::as_str).collect();
                let t = Instant::now();
                for reply in c.pipeline(&refs).unwrap() {
                    reply.into_ok().unwrap();
                }
                samples.push(t.elapsed());
            }
        }
        Mode::BinaryBatched => {
            for chunk in lines.chunks(BURST) {
                let refs: Vec<&str> = chunk.iter().map(String::as_str).collect();
                let t = Instant::now();
                c.push_batch(&session, &refs).unwrap().into_ok().unwrap();
                samples.push(t.elapsed());
            }
        }
    }
    let elapsed = start.elapsed();
    c.close(&session).unwrap().into_ok().unwrap();
    (elapsed, samples)
}

/// One measured cluster run: open `CLUSTER_SESSIONS` fresh sessions
/// through a [`ClusterClient`] bootstrapped from node `a`, then push
/// `TUPLES` tuples round-robin across them — every push resolves its
/// owner on the client-side ring, so both nodes serve a share.
fn run_cluster(seed: &str, round: usize) -> (Duration, Vec<Duration>) {
    let mut cc = ClusterClient::connect(seed).expect("cluster connect");
    let sessions: Vec<String> = (0..CLUSTER_SESSIONS)
        .map(|k| format!("cluster_routed-{round}-{k}"))
        .collect();
    for s in &sessions {
        cc.open(s, SCENARIO).unwrap().into_ok().unwrap();
        cc.feed(s, "Dep: d0, b0").unwrap().into_ok().unwrap();
    }
    let lines = data_lines(TUPLES);

    let mut samples = Vec::new();
    let start = Instant::now();
    for (j, line) in lines.iter().enumerate() {
        let t = Instant::now();
        cc.push(&sessions[j % sessions.len()], line)
            .unwrap()
            .into_ok()
            .unwrap();
        samples.push(t.elapsed());
    }
    let elapsed = start.elapsed();
    for s in &sessions {
        cc.close(s).unwrap().into_ok().unwrap();
    }
    (elapsed, samples)
}

/// Start a two-node cluster on loopback and wait until both nodes agree
/// the ring has formed. Returns the handles plus node `a`'s address.
fn start_cluster() -> (ServerHandle, ServerHandle, String) {
    let node = |id: &str, peers: Vec<String>| {
        Server::start(ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            cluster: Some(ClusterConfig {
                node_id: id.to_owned(),
                peers,
                ..ClusterConfig::default()
            }),
            ..ServerConfig::default()
        })
        .expect("cluster node start")
    };
    let a = node("a", Vec::new());
    let a_addr = a.local_addr().to_string();
    let b = node("b", vec![a_addr.clone()]);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut c = Client::connect(a_addr.as_str()).expect("formation probe");
        let reply = c.cluster().expect("CLUSTER");
        if reply.ok && reply.head.contains("(2 nodes, 2 alive)") {
            break;
        }
        assert!(Instant::now() < deadline, "cluster formation timed out");
        std::thread::sleep(Duration::from_millis(25));
    }
    (a, b, a_addr)
}

/// Exact percentile over the measured samples (nearest-rank on the sorted
/// set — no interpolation, these are real observations).
fn percentile(sorted: &[Duration], pct: usize) -> Duration {
    assert!(!sorted.is_empty());
    sorted[((sorted.len() * pct) / 100).min(sorted.len() - 1)]
}

fn main() {
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("server start");

    let modes = [
        Mode::TextSerial,
        Mode::TextPipelined,
        Mode::BinarySerial,
        Mode::BinaryPipelined,
        Mode::BinaryBatched,
    ];

    // Warm once (fills the script repository path, JITs nothing — this
    // is Rust — but pages everything in), then keep the best of three:
    // loopback benches are noisy and the minimum is the honest signal.
    let mut results: Vec<(&str, Duration, f64, Duration, Duration)> = Vec::new();
    let mut record = |name: &'static str, best: Duration, mut samples: Vec<Duration>| {
        samples.sort_unstable();
        let p50 = percentile(&samples, 50);
        let p99 = percentile(&samples, 99);
        let tps = TUPLES as f64 / best.as_secs_f64();
        results.push((name, best, tps, p50, p99));
    };
    for mode in modes {
        run_mode(&handle, mode, 0);
        let (best, samples) = (1..=3)
            .map(|round| run_mode(&handle, mode, round))
            .min_by_key(|(wall, _)| *wall)
            .unwrap();
        record(mode.name(), best, samples);
    }
    handle.shutdown();

    // Cluster-routed mode: same serial PUSH workload, but through a
    // ClusterClient against a freshly formed two-node ring.
    let (node_a, node_b, seed) = start_cluster();
    run_cluster(&seed, 0);
    let (best, samples) = (1..=3)
        .map(|round| run_cluster(&seed, round))
        .min_by_key(|(wall, _)| *wall)
        .unwrap();
    record("cluster_routed", best, samples);
    node_a.shutdown();
    node_b.shutdown();

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, best, tps, p50, p99)| {
            vec![
                (*name).to_owned(),
                format!("{best:?}"),
                format!("{tps:.0}"),
                format!("{p50:?}"),
                format!("{p99:?}"),
            ]
        })
        .collect();
    print_table(
        &format!("Service transport — {TUPLES} PUSHes, burst {BURST}"),
        &["mode", "wall", "tuples/s", "p50", "p99"],
        &rows,
    );

    // Flat JSON, one figure per line: diffs in review read as a perf
    // trajectory. Rates are rounded to whole tuples/sec and latencies to
    // whole microseconds — finer precision is noise on a loopback bench.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"tuples\": {TUPLES},\n"));
    json.push_str(&format!("  \"burst\": {BURST},\n"));
    for (i, (name, _, tps, p50, p99)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!("  \"{name}_tuples_per_sec\": {tps:.0},\n"));
        json.push_str(&format!(
            "  \"{name}_p50_us\": {:.0},\n",
            p50.as_secs_f64() * 1e6
        ));
        json.push_str(&format!(
            "  \"{name}_p99_us\": {:.0}{comma}\n",
            p99.as_secs_f64() * 1e6
        ));
    }
    json.push_str("}\n");
    let out =
        if std::path::Path::new("Cargo.toml").exists() && std::path::Path::new("crates").exists() {
            std::path::PathBuf::from("BENCH_service.json")
        } else {
            std::env::current_dir().unwrap().join("BENCH_service.json")
        };
    std::fs::write(&out, &json).expect("write BENCH_service.json");
    println!("\nwrote {}", out.display());
}
