//! Service transport benchmark: the same PUSH workload driven over every
//! wire mode — text vs binary, serial vs pipelined vs batched — against
//! an in-process server on a loopback socket.
//!
//! `cargo run -p sedex-bench --release --bin bench_service`
//!
//! Writes `BENCH_service.json` into the repository root (or the current
//! directory when run elsewhere): a flat, diff-friendly snapshot of
//! requests/sec per mode, so later PRs show their speedup or regression
//! as a one-line change in review. Pipelining exists to save round-trips
//! and batching to save per-request framing and dispatch; this bench is
//! what keeps those claims honest.
//!
//! Besides throughput, each mode reports p50/p99 latency per client
//! round-trip — one `PUSH` in the serial modes, one whole burst in the
//! pipelined/batched modes (that *is* the unit a client waits on there),
//! so the serial and burst figures are not directly comparable to each
//! other, only to their own trajectory across PRs.
//!
//! The `mixed_rw` mode runs one serial pusher against `MIXED_READERS`
//! concurrent `SQL`/`STATS` readers on the same session: readers are
//! served from the published MVCC snapshot without the tenant mutex, so
//! `mixed_rw_reader_p99_us` should stay near the plain round-trip cost
//! no matter how long the writer's exchanges take.
//!
//! The `cluster_routed` mode drives the same serial workload through a
//! [`ClusterClient`] against two in-process cluster nodes, spreading
//! sessions across both: its gap to `text_serial` is the price of
//! ownership gating plus client-side ring resolution.
//!
//! The final mode, `failover`, kills the node owning a live session and
//! measures the time until that session answers `SQL` again — once at
//! replication factor 1 (no standby: availability returns only by
//! re-opening the session empty) and once at factor 2 (the successor
//! promotes its WAL-fed standby and the data survives). The gap between
//! `failover_r1_ms` and `failover_r2_ms` is the promotion cost riding on
//! top of the shared failure-detection window.

use std::time::{Duration, Instant};

use sedex_bench::{percentile, print_table};
use sedex_durable::FsyncPolicy;
use sedex_service::{
    Client, ClientConfig, ClusterClient, ClusterConfig, Server, ServerConfig, ServerHandle,
};

const SCENARIO: &str = "\
[source]
Dep(dname*, building)
Student(sname*, program, dep->Dep)

[target]
Stu(student*, prog, dpt)

[correspondences]
sname <-> student
program <-> prog
dep <-> dpt
";

/// Tuples pushed per measured run. Each mode gets its own session, so
/// script-repository state never leaks across modes.
const TUPLES: usize = 2_000;
/// Pipelined/batched burst size.
const BURST: usize = 200;
/// Sessions the cluster mode spreads its pushes across, so both nodes
/// own a share of the traffic and the ring actually routes.
const CLUSTER_SESSIONS: usize = 4;

#[derive(Clone, Copy, Debug)]
enum Mode {
    TextSerial,
    TextPipelined,
    BinarySerial,
    BinaryPipelined,
    BinaryBatched,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::TextSerial => "text_serial",
            Mode::TextPipelined => "text_pipelined",
            Mode::BinarySerial => "binary_serial",
            Mode::BinaryPipelined => "binary_pipelined",
            Mode::BinaryBatched => "binary_batched",
        }
    }

    fn binary(self) -> bool {
        matches!(
            self,
            Mode::BinarySerial | Mode::BinaryPipelined | Mode::BinaryBatched
        )
    }
}

fn data_lines(n: usize) -> Vec<String> {
    (0..n)
        .map(|j| {
            let dep = if j % 2 == 0 { "d0" } else { "_" };
            format!("Student: s{j}, p{j}, {dep}")
        })
        .collect()
}

/// One measured run: open a fresh session, push `TUPLES` tuples in the
/// mode's submission style, confirm every reply. Returns the push time
/// plus the latency of every client round-trip (a single `PUSH` in the
/// serial modes, a whole burst otherwise).
fn run_mode(handle: &ServerHandle, mode: Mode, round: usize) -> (Duration, Vec<Duration>) {
    let mut c = Client::connect_with(
        handle.local_addr(),
        ClientConfig {
            binary: mode.binary(),
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    let session = format!("{}-{round}", mode.name());
    c.open(&session, SCENARIO).unwrap().into_ok().unwrap();
    c.feed(&session, "Dep: d0, b0").unwrap().into_ok().unwrap();
    let lines = data_lines(TUPLES);

    let mut samples = Vec::new();
    let start = Instant::now();
    match mode {
        Mode::TextSerial | Mode::BinarySerial => {
            for line in &lines {
                let t = Instant::now();
                c.push(&session, line).unwrap().into_ok().unwrap();
                samples.push(t.elapsed());
            }
        }
        Mode::TextPipelined | Mode::BinaryPipelined => {
            for chunk in lines.chunks(BURST) {
                let cmds: Vec<String> = chunk
                    .iter()
                    .map(|l| format!("PUSH {session} {l}"))
                    .collect();
                let refs: Vec<&str> = cmds.iter().map(String::as_str).collect();
                let t = Instant::now();
                for reply in c.pipeline(&refs).unwrap() {
                    reply.into_ok().unwrap();
                }
                samples.push(t.elapsed());
            }
        }
        Mode::BinaryBatched => {
            for chunk in lines.chunks(BURST) {
                let refs: Vec<&str> = chunk.iter().map(String::as_str).collect();
                let t = Instant::now();
                c.push_batch(&session, &refs).unwrap().into_ok().unwrap();
                samples.push(t.elapsed());
            }
        }
    }
    let elapsed = start.elapsed();
    c.close(&session).unwrap().into_ok().unwrap();
    (elapsed, samples)
}

/// One measured cluster run: open `CLUSTER_SESSIONS` fresh sessions
/// through a [`ClusterClient`] bootstrapped from node `a`, then push
/// `TUPLES` tuples round-robin across them — every push resolves its
/// owner on the client-side ring, so both nodes serve a share.
fn run_cluster(seed: &str, round: usize) -> (Duration, Vec<Duration>) {
    let mut cc = ClusterClient::connect(seed).expect("cluster connect");
    let sessions: Vec<String> = (0..CLUSTER_SESSIONS)
        .map(|k| format!("cluster_routed-{round}-{k}"))
        .collect();
    for s in &sessions {
        cc.open(s, SCENARIO).unwrap().into_ok().unwrap();
        cc.feed(s, "Dep: d0, b0").unwrap().into_ok().unwrap();
    }
    let lines = data_lines(TUPLES);

    let mut samples = Vec::new();
    let start = Instant::now();
    for (j, line) in lines.iter().enumerate() {
        let t = Instant::now();
        cc.push(&sessions[j % sessions.len()], line)
            .unwrap()
            .into_ok()
            .unwrap();
        samples.push(t.elapsed());
    }
    let elapsed = start.elapsed();
    for s in &sessions {
        cc.close(s).unwrap().into_ok().unwrap();
    }
    (elapsed, samples)
}

/// Concurrent snapshot readers per pusher in the `mixed_rw` mode.
const MIXED_READERS: usize = 4;

/// One measured mixed read/write run: a single pusher drives the serial
/// `PUSH` workload while `MIXED_READERS` threads hammer `SQL`/`STATS` on
/// their own connections against the *same* session. Readers resolve from
/// the published MVCC snapshot, never the tenant mutex, so their p99
/// should track round-trip cost, not exchange duration — this mode is the
/// trajectory that keeps that decoupling honest. Returns the pusher's
/// wall time plus per-request samples for each side.
fn run_mixed_rw(handle: &ServerHandle, round: usize) -> (Duration, Vec<Duration>, Vec<Duration>) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let session = format!("mixed_rw-{round}");
    let mut w = Client::connect(handle.local_addr()).expect("writer connect");
    w.open(&session, SCENARIO).unwrap().into_ok().unwrap();
    w.feed(&session, "Dep: d0, b0").unwrap().into_ok().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let addr = handle.local_addr().to_string();
    let readers: Vec<_> = (0..MIXED_READERS)
        .map(|k| {
            let stop = Arc::clone(&stop);
            let addr = addr.clone();
            let session = session.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr.as_str()).expect("reader connect");
                let mut samples = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let t = Instant::now();
                    let reply = if k % 2 == 0 {
                        c.sql(&session)
                    } else {
                        c.stats(Some(&session))
                    };
                    reply.unwrap().into_ok().unwrap();
                    samples.push(t.elapsed());
                }
                samples
            })
        })
        .collect();

    let lines = data_lines(TUPLES);
    let mut writer_samples = Vec::with_capacity(lines.len());
    let start = Instant::now();
    for line in &lines {
        let t = Instant::now();
        w.push(&session, line).unwrap().into_ok().unwrap();
        writer_samples.push(t.elapsed());
    }
    let elapsed = start.elapsed();
    stop.store(true, Ordering::Relaxed);
    let mut reader_samples = Vec::new();
    for r in readers {
        reader_samples.extend(r.join().expect("reader thread"));
    }
    w.close(&session).unwrap().into_ok().unwrap();
    (elapsed, writer_samples, reader_samples)
}

/// Start a two-node cluster on loopback and wait until both nodes agree
/// the ring has formed. Returns the handles plus node `a`'s address.
fn start_cluster() -> (ServerHandle, ServerHandle, String) {
    let node = |id: &str, peers: Vec<String>| {
        Server::start(ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            cluster: Some(ClusterConfig {
                node_id: id.to_owned(),
                peers,
                ..ClusterConfig::default()
            }),
            ..ServerConfig::default()
        })
        .expect("cluster node start")
    };
    let a = node("a", Vec::new());
    let a_addr = a.local_addr().to_string();
    let b = node("b", vec![a_addr.clone()]);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut c = Client::connect(a_addr.as_str()).expect("formation probe");
        let reply = c.cluster().expect("CLUSTER");
        if reply.ok && reply.head.contains("(2 nodes, 2 alive)") {
            break;
        }
        assert!(Instant::now() < deadline, "cluster formation timed out");
        std::thread::sleep(Duration::from_millis(25));
    }
    (a, b, a_addr)
}

/// Tuples seeded into the victim-owned session before the kill.
const FAILOVER_TUPLES: usize = 200;

/// One failover run at replication factor `r`: form a durable two-node
/// cluster with a fast failure detector, fill a session owned by node `b`,
/// kill `b`, and time how long until `SQL` on that session answers OK
/// through the survivor. At `r == 1` there is no standby, so the loop
/// re-opens the session (empty) once the ring has written `b` off; at
/// `r >= 2` the survivor promotes its standby and the data must survive.
fn run_failover(r: usize, round: usize) -> Duration {
    let node = |id: &str, peers: Vec<String>| {
        let dir = std::env::temp_dir().join(format!(
            "sedex-bench-failover-r{r}-{round}-{id}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Server::start(ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            data_dir: Some(dir),
            fsync: FsyncPolicy::Off,
            cluster: Some(ClusterConfig {
                node_id: id.to_owned(),
                peers,
                replication: r,
                heartbeat: Duration::from_millis(100),
                failover: Duration::from_millis(400),
                ..ClusterConfig::default()
            }),
            ..ServerConfig::default()
        })
        .expect("failover node start")
    };
    let a = node("a", Vec::new());
    let a_addr = a.local_addr().to_string();
    let b = node("b", vec![a_addr.clone()]);
    let b_addr = b.local_addr().to_string();
    let deadline = Instant::now() + Duration::from_secs(10);
    for addr in [&a_addr, &b_addr] {
        loop {
            let mut c = Client::connect(addr.as_str()).expect("formation probe");
            let reply = c.cluster().expect("CLUSTER");
            if reply.ok && reply.head.contains("(2 nodes, 2 alive)") {
                break;
            }
            assert!(Instant::now() < deadline, "failover formation timed out");
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    let mut cc = ClusterClient::connect(&a_addr).expect("cluster connect");
    let session = (0..1000)
        .map(|i| format!("f{i}"))
        .find(|s| cc.owner_of(s) == Some("b"))
        .expect("some probe name must land on b");
    cc.open(&session, SCENARIO).unwrap().into_ok().unwrap();
    cc.feed(&session, "Dep: d0, b0").unwrap().into_ok().unwrap();
    for line in data_lines(FAILOVER_TUPLES) {
        cc.push(&session, &line).unwrap().into_ok().unwrap();
    }
    cc.push(&session, "Student: marker-zz, p0, d0")
        .unwrap()
        .into_ok()
        .unwrap();
    if r >= 2 {
        // Fair start: the standby must be caught up before the kill, or the
        // clock would include replication lag rather than failover cost.
        loop {
            let mut c = Client::connect(a_addr.as_str()).expect("standby probe");
            let body = c.cluster().expect("CLUSTER").body();
            if body.contains("standby b sessions=1 ") {
                let mut v = Client::connect(b_addr.as_str()).expect("drain probe");
                let drained = v.cluster().expect("CLUSTER").body().lines().any(|l| {
                    l.starts_with("repl queued=0") && l.ends_with("lag=0") && !l.contains("sent=0")
                });
                if drained {
                    break;
                }
            }
            assert!(Instant::now() < deadline, "standby never caught up");
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    b.abort();
    let start = Instant::now();
    let elapsed = loop {
        let reply = cc.sql(&session).unwrap();
        if reply.ok {
            if r >= 2 {
                assert!(
                    reply.body().contains("marker-zz"),
                    "promoted session lost its data"
                );
            }
            break start.elapsed();
        }
        if r == 1 {
            let _ = cc.open(&session, SCENARIO);
        }
        assert!(
            Instant::now() < deadline,
            "session never answered after the kill"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    a.shutdown();
    elapsed
}

fn main() {
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("server start");

    let modes = [
        Mode::TextSerial,
        Mode::TextPipelined,
        Mode::BinarySerial,
        Mode::BinaryPipelined,
        Mode::BinaryBatched,
    ];

    // Warm once (fills the script repository path, JITs nothing — this
    // is Rust — but pages everything in), then keep the best of three:
    // loopback benches are noisy and the minimum is the honest signal.
    let mut results: Vec<(&str, Duration, f64, Duration, Duration)> = Vec::new();
    fn record(
        results: &mut Vec<(&'static str, Duration, f64, Duration, Duration)>,
        name: &'static str,
        wall: Duration,
        ops: usize,
        mut samples: Vec<Duration>,
    ) {
        samples.sort_unstable();
        let p50 = percentile(&samples, 50);
        let p99 = percentile(&samples, 99);
        results.push((name, wall, ops as f64 / wall.as_secs_f64(), p50, p99));
    }
    for mode in modes {
        run_mode(&handle, mode, 0);
        let (best, samples) = (1..=3)
            .map(|round| run_mode(&handle, mode, round))
            .min_by_key(|(wall, _)| *wall)
            .unwrap();
        record(&mut results, mode.name(), best, TUPLES, samples);
    }

    // Mixed read/write: best-of-three by writer wall (the pusher is the
    // pacing side; the readers run for exactly that window).
    run_mixed_rw(&handle, 0);
    let (best, w_samples, r_samples) = (1..=3)
        .map(|round| run_mixed_rw(&handle, round))
        .min_by_key(|(wall, _, _)| *wall)
        .unwrap();
    let reads = r_samples.len();
    record(&mut results, "mixed_rw_writer", best, TUPLES, w_samples);
    record(&mut results, "mixed_rw_reader", best, reads, r_samples);
    handle.shutdown();

    // Cluster-routed mode: same serial PUSH workload, but through a
    // ClusterClient against a freshly formed two-node ring.
    let (node_a, node_b, seed) = start_cluster();
    run_cluster(&seed, 0);
    let (best, samples) = (1..=3)
        .map(|round| run_cluster(&seed, round))
        .min_by_key(|(wall, _)| *wall)
        .unwrap();
    record(&mut results, "cluster_routed", best, TUPLES, samples);
    node_a.shutdown();
    node_b.shutdown();

    // Failover: one timed kill per replication factor. The detection
    // window dominates both figures; their gap is the promotion cost, and
    // only the R=2 run keeps the session's data.
    let failover_r1 = run_failover(1, 0);
    let failover_r2 = run_failover(2, 0);

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, best, tps, p50, p99)| {
            vec![
                (*name).to_owned(),
                format!("{best:?}"),
                format!("{tps:.0}"),
                format!("{p50:?}"),
                format!("{p99:?}"),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Service transport — {TUPLES} PUSHes, burst {BURST}, {MIXED_READERS} mixed readers"
        ),
        &["mode", "wall", "ops/s", "p50", "p99"],
        &rows,
    );
    println!(
        "\nfailover (kill -> first OK SQL): R=1 {failover_r1:?} (session re-opened empty), \
         R=2 {failover_r2:?} (standby promoted, data intact)"
    );

    // Flat JSON, one figure per line: diffs in review read as a perf
    // trajectory. Rates are rounded to whole tuples/sec and latencies to
    // whole microseconds — finer precision is noise on a loopback bench.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"tuples\": {TUPLES},\n"));
    json.push_str(&format!("  \"burst\": {BURST},\n"));
    for (name, _, tps, p50, p99) in results.iter() {
        let rate = if *name == "mixed_rw_reader" {
            "reads_per_sec"
        } else {
            "tuples_per_sec"
        };
        json.push_str(&format!("  \"{name}_{rate}\": {tps:.0},\n"));
        json.push_str(&format!(
            "  \"{name}_p50_us\": {:.0},\n",
            p50.as_secs_f64() * 1e6
        ));
        json.push_str(&format!(
            "  \"{name}_p99_us\": {:.0},\n",
            p99.as_secs_f64() * 1e6
        ));
    }
    json.push_str(&format!(
        "  \"failover_r1_ms\": {:.0},\n",
        failover_r1.as_secs_f64() * 1e3
    ));
    json.push_str(&format!(
        "  \"failover_r2_ms\": {:.0}\n",
        failover_r2.as_secs_f64() * 1e3
    ));
    json.push_str("}\n");
    let out =
        if std::path::Path::new("Cargo.toml").exists() && std::path::Path::new("crates").exists() {
            std::path::PathBuf::from("BENCH_service.json")
        } else {
            std::env::current_dir().unwrap().join("BENCH_service.json")
        };
    std::fs::write(&out, &json).expect("write BENCH_service.json");
    println!("\nwrote {}", out.display());
}
