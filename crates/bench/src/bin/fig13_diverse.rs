//! Fig. 13 — SEDEX execution time over the ten STBenchmark basic scenarios
//! at growing source sizes.
//!
//! `cargo run -p sedex-bench --release --bin fig13_diverse`
//! Default sizes 1k/10k/25k/50k/100k; `--full` for the paper's
//! 10k/100k/250k/500k/1M.

use sedex_bench::{full_scale, print_table, secs, write_csv};
use sedex_core::SedexEngine;
use sedex_scenarios::stbench::{basic, BasicKind};

fn main() {
    let sizes: Vec<usize> = if full_scale() {
        vec![10_000, 100_000, 250_000, 500_000, 1_000_000]
    } else {
        vec![1_000, 10_000, 25_000, 50_000, 100_000]
    };
    let mut rows = Vec::new();
    for kind in BasicKind::all() {
        let scenario = basic(kind);
        let mut cells = vec![kind.name().to_string()];
        for &n in &sizes {
            let inst = scenario.populate(n, 44).expect("populate");
            let (_, rep) = SedexEngine::new()
                .exchange(&inst, &scenario.target, &scenario.sigma)
                .expect("sedex");
            cells.push(secs(rep.tg + rep.te));
        }
        println!("[{}] done", kind.name());
        rows.push(cells);
    }
    let mut header = vec!["scenario".to_string()];
    header.extend(sizes.iter().map(|n| format!("{}k", n / 1000)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(
        "Fig. 13 — SEDEX time (seconds) over diverse scenarios",
        &header_refs,
        &rows,
    );
    write_csv("fig13_diverse.csv", &header_refs, &rows);
    println!("\nPaper shape: CP/CV/HP/VP cheapest (low tuple-shape diversity → high reuse); join-bearing scenarios (UN/NE/DE/KO) cost more.");
}
