//! Fig. 9 — Target size (constants + nulls) by varying the number of target
//! relations with egds, on the STB dataset. SEDEX vs ++Spicy.
//!
//! `cargo run -p sedex-bench --release --bin fig09_egds`
//! (`--full` for the paper's 10-instances / 100-tuples configuration;
//! default is the same configuration — Fig. 9 is laptop-scale.)

use sedex_bench::{print_table, write_csv};
use sedex_core::SedexEngine;
use sedex_mapping::SpicyEngine;
use sedex_scenarios::ibench::{stb, IbenchConfig};

fn main() {
    let fractions = [0.0, 0.25, 0.50, 0.75, 1.0];
    let tuples = 100;
    let mut rows = Vec::new();
    for &pk_fraction in &fractions {
        let cfg = IbenchConfig {
            instances_per_primitive: 10,
            pk_fraction,
            ..IbenchConfig::default()
        };
        let scenario = stb(&cfg);
        let inst = scenario.populate(tuples, 99).expect("populate");

        let (_, sedex_rep) = SedexEngine::new()
            .exchange(&inst, &scenario.target, &scenario.sigma)
            .expect("sedex exchange");
        let spicy = SpicyEngine::new(&scenario.source, &scenario.target, &scenario.sigma);
        let (spicy_out, _) = spicy.run(&inst, &scenario.target).expect("spicy exchange");
        let spicy_stats = spicy_out.stats();

        rows.push(vec![
            format!("{:.0}%", pk_fraction * 100.0),
            spicy_stats.constants.to_string(),
            spicy_stats.nulls.to_string(),
            spicy_stats.atoms().to_string(),
            sedex_rep.stats.constants.to_string(),
            sedex_rep.stats.nulls.to_string(),
            sedex_rep.stats.atoms().to_string(),
        ]);
    }
    print_table(
        "Fig. 9 — target size vs. % of target relations with egds (STB)",
        &[
            "egds",
            "spicy_const",
            "spicy_null",
            "spicy_atoms",
            "sedex_const",
            "sedex_null",
            "sedex_atoms",
        ],
        &rows,
    );
    write_csv(
        "fig09_egds.csv",
        &[
            "egd_fraction",
            "spicy_constants",
            "spicy_nulls",
            "spicy_atoms",
            "sedex_constants",
            "sedex_nulls",
            "sedex_atoms",
        ],
        &rows,
    );
    println!("\nPaper shape: nulls shrink for both systems as egds increase; SEDEX ≤ ++Spicy nulls throughout; constants comparable.");
}
