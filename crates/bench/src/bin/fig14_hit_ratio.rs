//! Fig. 14 — The script-reuse hit-ratio pattern over time on the STB
//! dataset (60k tuples): low at the start of each relation, then sharply
//! rising.
//!
//! `cargo run -p sedex-bench --release --bin fig14_hit_ratio`

use sedex_bench::{print_table, write_csv};
use sedex_core::{SedexConfig, SedexEngine};
use sedex_scenarios::ibench::{stb, IbenchConfig};

fn main() {
    let cfg = IbenchConfig {
        instances_per_primitive: 10,
        ..IbenchConfig::default()
    };
    let scenario = stb(&cfg);
    // 50 source relations × 1200 tuples = 60k tuples, the paper's setting.
    let per_rel = 60_000 / scenario.source.len();
    let inst = scenario.populate(per_rel, 33).expect("populate");
    let engine = SedexEngine::with_config(SedexConfig {
        record_hit_events: true,
        ..SedexConfig::default()
    });
    let (_, rep) = engine
        .exchange(&inst, &scenario.target, &scenario.sigma)
        .expect("sedex");

    // Warm-up detail: the paper's "very low at the beginning, sharply
    // increases" ramp, visible at lookup granularity.
    let warmup: Vec<Vec<String>> = rep
        .warmup_curve()
        .iter()
        .map(|(n, ratio)| {
            vec![
                n.to_string(),
                format!("{:.1}", ratio * 100.0),
                "#".repeat((ratio * 50.0) as usize),
            ]
        })
        .collect();
    print_table(
        "Fig. 14a — cumulative hit ratio after the first N lookups",
        &["lookups", "hit_%", ""],
        &warmup,
    );

    // Windowed ratio over time: dips where a new relation's shapes arrive.
    let curve = rep.windowed_hit_ratio_curve(18);
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|(t, ratio)| {
            let bar = "#".repeat((ratio * 50.0) as usize);
            vec![
                format!("{:.3}", t.as_secs_f64()),
                format!("{:.2}", ratio * 100.0),
                bar,
            ]
        })
        .collect();
    print_table(
        "Fig. 14b — windowed hit ratio over time (STB, 60k tuples)",
        &["t_s", "hit_%", ""],
        &rows,
    );
    write_csv(
        "fig14_hit_ratio.csv",
        &["time_s", "windowed_hit_ratio_pct"],
        &rows.iter().map(|r| r[..2].to_vec()).collect::<Vec<_>>(),
    );
    println!(
        "\nfinal hit ratio: {:.1}% ({} reused / {} generated)",
        rep.reuse_percent(),
        rep.scripts_reused,
        rep.scripts_generated
    );
    println!("Paper shape: near-zero at the start, sharp rise as shapes repeat; dips when a new relation's tuples begin.");
}
