//! Fig. 10 — Target size on the AMB dataset by varying the number of times
//! the ambiguous generalization UDPs are invoked. SEDEX vs ++Spicy.
//!
//! `cargo run -p sedex-bench --release --bin fig10_amb`

use sedex_bench::{full_scale, print_table, write_csv};
use sedex_core::SedexEngine;
use sedex_mapping::SpicyEngine;
use sedex_scenarios::ambiguity::amb;
use sedex_scenarios::ibench::IbenchConfig;

fn main() {
    // The paper's full range is already laptop-scale; --full is accepted
    // for symmetry with the other figures.
    let _ = full_scale();
    let invocations: &[usize] = &[10, 25, 50, 75, 100];
    let tuples = 100;
    let base = IbenchConfig {
        instances_per_primitive: 10,
        pk_fraction: 1.0,
        ..IbenchConfig::default()
    };
    let mut rows = Vec::new();
    for &udps in invocations {
        let scenario = amb(&base, udps);
        let inst = scenario.populate(tuples, 77).expect("populate");
        let (_, sedex_rep) = SedexEngine::new()
            .exchange(&inst, &scenario.target, &scenario.sigma)
            .expect("sedex");
        let spicy = SpicyEngine::new(&scenario.source, &scenario.target, &scenario.sigma);
        let (spicy_out, _) = spicy.run(&inst, &scenario.target).expect("spicy");
        let sp = spicy_out.stats();
        rows.push(vec![
            udps.to_string(),
            sp.constants.to_string(),
            sp.nulls.to_string(),
            sp.atoms().to_string(),
            sedex_rep.stats.constants.to_string(),
            sedex_rep.stats.nulls.to_string(),
            sedex_rep.stats.atoms().to_string(),
        ]);
    }
    print_table(
        "Fig. 10 — target size vs. UDP invocations (AMB)",
        &[
            "udps",
            "spicy_const",
            "spicy_null",
            "spicy_atoms",
            "sedex_const",
            "sedex_null",
            "sedex_atoms",
        ],
        &rows,
    );
    write_csv(
        "fig10_amb.csv",
        &[
            "udp_invocations",
            "spicy_constants",
            "spicy_nulls",
            "spicy_atoms",
            "sedex_constants",
            "sedex_nulls",
            "sedex_atoms",
        ],
        &rows,
    );
    println!("\nPaper shape: ++Spicy's atoms grow with UDP invocations (redundant null-padded subclass tuples); SEDEX stays smaller by resolving the ambiguity.");
}
