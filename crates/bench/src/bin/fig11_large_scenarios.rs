//! Fig. 11 — Scalability for large scenarios: execution time split into
//! script generation (Tg) and script execution (Te) for the composed
//! scenarios s25–s100, comparing ++Spicy, EDEX and SEDEX.
//!
//! `cargo run -p sedex-bench --release --bin fig11_large_scenarios`
//! (`--full` uses more tuples per relation.)

use sedex_bench::{full_scale, print_table, secs, write_csv};
use sedex_core::{EdexEngine, SedexEngine};
use sedex_mapping::SpicyEngine;
use sedex_scenarios::compose::fig11_scenarios;

fn main() {
    // The paper populates 100-tuple relations, but its reported times are
    // dominated by prototype/DBMS overheads our in-memory engines do not
    // pay; 2000-tuple relations make the algorithmic costs visible while
    // keeping the run under a minute.
    let tuples = if full_scale() { 10_000 } else { 2_000 };
    let mut rows = Vec::new();
    for scenario in fig11_scenarios() {
        let inst = scenario.populate(tuples, 55).expect("populate");

        let spicy = SpicyEngine::new(&scenario.source, &scenario.target, &scenario.sigma);
        let (_, spicy_rep) = spicy.run(&inst, &scenario.target).expect("spicy");
        let (_, edex_rep) = EdexEngine::new()
            .exchange(&inst, &scenario.target, &scenario.sigma)
            .expect("edex");
        let (_, sedex_rep) = SedexEngine::new()
            .exchange(&inst, &scenario.target, &scenario.sigma)
            .expect("sedex");

        rows.push(vec![
            scenario.name.clone(),
            (scenario.source.len() + scenario.target.len()).to_string(),
            secs(spicy_rep.gen_time),
            secs(spicy_rep.exec_time),
            secs(edex_rep.tg),
            secs(edex_rep.te),
            secs(sedex_rep.tg),
            secs(sedex_rep.te),
        ]);
    }
    print_table(
        "Fig. 11 — Tg/Te (seconds) for large scenarios",
        &[
            "scenario", "tables", "spicy_Tg", "spicy_Te", "edex_Tg", "edex_Te", "sedex_Tg",
            "sedex_Te",
        ],
        &rows,
    );
    write_csv(
        "fig11_large_scenarios.csv",
        &[
            "scenario",
            "tables",
            "spicy_tg_s",
            "spicy_te_s",
            "edex_tg_s",
            "edex_te_s",
            "sedex_tg_s",
            "sedex_te_s",
        ],
        &rows,
    );
    println!("\nPaper shape: all three grow with scenario size; SEDEX < EDEX < ++Spicy total time, dominated by Tg.");
}
