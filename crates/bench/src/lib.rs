//! Shared experiment-harness utilities for the per-figure binaries.
//!
//! Every binary prints a paper-style table to stdout and writes the same
//! rows as CSV under `target/experiments/` so EXPERIMENTS.md (and plots)
//! can be regenerated from the artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

/// Directory experiment CSVs are written to.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Write a CSV with a header row.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = experiments_dir().join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for r in rows {
        writeln!(f, "{}", r.join(",")).expect("write row");
    }
    println!("\n[csv written to {}]", path.display());
}

/// `true` when the binary was invoked with `--full`: run the paper's exact
/// sizes instead of the scaled-down defaults (the shapes are identical; the
/// full sizes just take minutes instead of seconds).
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Seconds with millisecond precision, for table cells.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Exact nearest-rank percentile over sorted samples — no interpolation,
/// these are real observations. Nearest-rank index is `ceil(n·p/100) − 1`:
/// p99 of 100 samples is the 99th sample (index 98), not the maximum, and
/// p100 is the maximum. Empty input yields `Duration::ZERO` (a bench that
/// recorded nothing has no latency to report, and must not panic while
/// writing its JSON).
pub fn percentile(sorted: &[Duration], pct: usize) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (sorted.len() * pct).div_ceil(100).max(1);
    sorted[(rank - 1).min(sorted.len() - 1)]
}

/// Render a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Print a titled table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .max()
                .unwrap_or(0)
                .max(h.len())
        })
        .collect();
    println!(
        "{}",
        row(
            &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &widths
        )
    );
    for r in rows {
        println!("{}", row(r, &widths));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_formats_milliseconds() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
        assert_eq!(secs(Duration::ZERO), "0.000");
    }

    #[test]
    fn table_rows_align() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        // ceil(100·50/100) = rank 50 → the 50th sample, not the 51st.
        assert_eq!(percentile(&ms, 50), Duration::from_millis(50));
        // The old `(n·p)/100` index returned the max here (index 99).
        assert_eq!(percentile(&ms, 99), Duration::from_millis(99));
        assert_eq!(percentile(&ms, 100), Duration::from_millis(100));
        assert_eq!(percentile(&ms, 0), Duration::from_millis(1));
    }

    #[test]
    fn percentile_small_samples_do_not_collapse_to_max() {
        let ms: Vec<Duration> = (1..=10).map(Duration::from_millis).collect();
        // ceil(10·99/100) = rank 10 → with n < 100 every high percentile
        // is legitimately the max...
        assert_eq!(percentile(&ms, 99), Duration::from_millis(10));
        // ...but mid percentiles must not be: ceil(10·50/100) = rank 5.
        assert_eq!(percentile(&ms, 50), Duration::from_millis(5));
        assert_eq!(percentile(&ms, 90), Duration::from_millis(9));
        assert_eq!(
            percentile(&[Duration::from_millis(7)], 99),
            Duration::from_millis(7)
        );
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        assert_eq!(percentile(&[], 50), Duration::ZERO);
        assert_eq!(percentile(&[], 99), Duration::ZERO);
    }

    #[test]
    fn csv_written_to_experiments_dir() {
        write_csv(
            "unit_test.csv",
            &["x", "y"],
            &[vec!["1".into(), "2".into()]],
        );
        let path = experiments_dir().join("unit_test.csv");
        let body = fs::read_to_string(&path).unwrap();
        assert_eq!(body, "x,y\n1,2\n");
        let _ = fs::remove_file(path);
    }
}
