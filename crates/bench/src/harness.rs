//! A minimal, in-tree micro-benchmark harness with a Criterion-compatible
//! surface (`Criterion`, `benchmark_group`, `bench_with_input`,
//! `black_box`, `criterion_group!`/`criterion_main!`).
//!
//! The workspace builds fully offline, so the real `criterion` crate is
//! not available; the bench files under `benches/` only need the handful
//! of entry points this module provides. Measurement is deliberately
//! simple — warm up briefly, then time enough iterations to fill a fixed
//! wall budget and report the mean — which is plenty for the relative
//! comparisons the benches exist for (reuse on/off, pq-gram vs TED, …).

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark timing driver passed to the closure.
pub struct Bencher {
    budget: Duration,
    /// Filled in by [`Bencher::iter`]: (total elapsed, iterations).
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `f` repeatedly: one warm-up call, then as many iterations as
    /// fit the wall budget (at least 5).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f()); // warm-up, also primes caches/allocations
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            if iters >= 5 && start.elapsed() >= self.budget {
                break;
            }
            if iters >= 1_000_000 {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters));
    }
}

/// Identifier combining a function name and a parameter, shown as
/// `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, as in criterion.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Top-level driver: owns default settings and prints results.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Per-bench wall budget; kept short so `cargo bench` over the
            // whole suite stays in seconds, not minutes.
            budget: Duration::from_millis(300),
        }
    }
}

fn run_one(label: &str, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        budget,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((elapsed, iters)) if iters > 0 => {
            let per = elapsed / iters as u32;
            println!("bench {label:<48} {per:>12?}/iter ({iters} iters)");
        }
        _ => println!("bench {label:<48} (no measurement: iter() never called)"),
    }
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into().id, self.budget, &mut f);
        self
    }

    /// Start a named group; benchmarks inside print as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            budget: self.budget,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup {
    name: String,
    budget: Duration,
}

impl BenchmarkGroup {
    /// Accepted for criterion compatibility; the simple harness uses a
    /// wall budget instead of a sample count, so this only scales it.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion's default is 100 samples; scale our budget likewise.
        self.budget = Duration::from_millis((300 * n as u64 / 100).clamp(50, 2_000));
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.into().id),
            self.budget,
            &mut f,
        );
        self
    }

    /// Run a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), self.budget, &mut |b| {
            f(b, input)
        });
        self
    }

    /// End the group (criterion compatibility; nothing to flush here).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

// Make `use sedex_bench::harness::{criterion_group, criterion_main}` work
// like the criterion crate's own re-exports.
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            budget: Duration::from_millis(5),
            result: None,
        };
        b.iter(|| black_box(21u64 * 2));
        let (elapsed, iters) = b.result.unwrap();
        assert!(iters >= 5);
        assert!(elapsed >= Duration::from_millis(5));
    }

    #[test]
    fn benchmark_id_formats_name_and_param() {
        assert_eq!(BenchmarkId::new("build", 128).id, "build/128");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(1);
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran > 0);
        c.bench_function("two", |b| b.iter(|| black_box(1)));
    }
}
