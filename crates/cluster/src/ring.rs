//! The consistent-hash ring: a versioned map from session name to owner
//! node, identical on every node and every client that holds the same
//! membership.
//!
//! Placement is classic consistent hashing with virtual nodes: each member
//! projects `vnodes` points onto a 64-bit circle (seeded FNV-1a, so the
//! layout is stable across processes, builds and platforms — `DefaultHasher`
//! guarantees none of that), and a session belongs to the node owning the
//! first point at or clockwise of the session's hash. Joins and leaves move
//! only the keys adjacent to the changed points — everything else stays put,
//! which is the property that makes live migration tractable.
//!
//! Failover routing is deliberately *not* per-point: a dead node keeps its
//! points, and every key that lands on them is answered by the node's
//! **designated successor** — the next *alive* node in the fixed succession
//! order (nodes sorted by their lowest point). That makes the inheritor of a
//! dead node's sessions a single node, the same node the dead node was
//! shipping its WAL to, so the standby that holds the replicated state is
//! exactly the node the ring routes to after the failure detector fires.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default virtual nodes per member.
pub const DEFAULT_VNODES: u32 = 64;

/// Default placement seed (any fixed value works; all members must agree —
/// this one was picked for even splits on small rings).
pub const DEFAULT_SEED: u64 = 0x5EDE_0038;

/// Seeded FNV-1a over `bytes` with a murmur-style finalizer — the ring's
/// only hash. In-tree so the placement is identical on every node and
/// client regardless of toolchain; the finalizer matters because raw
/// FNV-1a mixes its high bits poorly on short keys, and the ring compares
/// full 64-bit values.
pub fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// One member of the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeEntry {
    /// The address other nodes and clients reach this member at.
    pub addr: String,
    /// `false` once the failure detector declared the node dead. Dead nodes
    /// keep their points; their keys route to the designated successor.
    pub alive: bool,
}

/// The versioned consistent-hash ring. Every membership change bumps
/// `version`, so two topology dumps can be ordered without clocks.
#[derive(Debug, Clone)]
pub struct HashRing {
    seed: u64,
    vnodes: u32,
    version: u64,
    nodes: BTreeMap<String, NodeEntry>,
    /// Sorted `(point, node)` pairs for every member, dead or alive.
    points: Vec<(u64, String)>,
}

impl HashRing {
    /// An empty ring with the given placement parameters.
    pub fn new(seed: u64, vnodes: u32) -> HashRing {
        HashRing {
            seed,
            vnodes: vnodes.max(1),
            version: 0,
            nodes: BTreeMap::new(),
            points: Vec::new(),
        }
    }

    /// Current membership version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Placement seed (all members must agree).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Virtual nodes per member.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// All members, sorted by id.
    pub fn nodes(&self) -> impl Iterator<Item = (&str, &NodeEntry)> {
        self.nodes.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of members (dead ones included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of members still alive.
    pub fn alive(&self) -> usize {
        self.nodes.values().filter(|n| n.alive).count()
    }

    /// A member's address, if known.
    pub fn addr_of(&self, node: &str) -> Option<&str> {
        self.nodes.get(node).map(|n| n.addr.as_str())
    }

    /// True when the member exists and has not been declared dead.
    pub fn is_alive(&self, node: &str) -> bool {
        self.nodes.get(node).is_some_and(|n| n.alive)
    }

    fn rebuild_points(&mut self) {
        self.points.clear();
        for (id, _) in self.nodes.iter() {
            for i in 0..self.vnodes {
                let mut key = Vec::with_capacity(id.len() + 5);
                key.extend_from_slice(id.as_bytes());
                key.push(b'#');
                key.extend_from_slice(&i.to_le_bytes());
                self.points.push((fnv1a64(self.seed, &key), id.clone()));
            }
        }
        self.points.sort();
    }

    /// Add (or re-address / revive) a member. Returns `true` when the
    /// membership actually changed — only then does the version bump, so
    /// repeated `JOIN` announcements are idempotent.
    pub fn join(&mut self, node: &str, addr: &str) -> bool {
        let entry = NodeEntry {
            addr: addr.to_owned(),
            alive: true,
        };
        if self.nodes.get(node) == Some(&entry) {
            return false;
        }
        let fresh = !self.nodes.contains_key(node);
        self.nodes.insert(node.to_owned(), entry);
        if fresh {
            self.rebuild_points();
        }
        self.version += 1;
        true
    }

    /// Remove a member entirely (planned leave): its points vanish and its
    /// keys disperse to the per-point neighbors. Returns `true` if it was
    /// present.
    pub fn remove(&mut self, node: &str) -> bool {
        if self.nodes.remove(node).is_none() {
            return false;
        }
        self.rebuild_points();
        self.version += 1;
        true
    }

    /// Declare a member dead (failure detection): points stay, keys route
    /// to the designated successor. Returns `true` if it was alive.
    pub fn mark_dead(&mut self, node: &str) -> bool {
        match self.nodes.get_mut(node) {
            Some(e) if e.alive => {
                e.alive = false;
                self.version += 1;
                true
            }
            _ => false,
        }
    }

    /// Revive a member previously declared dead — used when the member
    /// itself is heard from again (a ping is proof of life), so a false
    /// death declaration cannot wedge the membership into a permanent
    /// split. Returns `true` if it was dead.
    pub fn mark_alive(&mut self, node: &str) -> bool {
        match self.nodes.get_mut(node) {
            Some(e) if !e.alive => {
                e.alive = true;
                self.version += 1;
                true
            }
            _ => false,
        }
    }

    /// The member whose point range covers `key`, dead or alive.
    fn point_owner(&self, key: &str) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let h = fnv1a64(self.seed, key.as_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, node) = &self.points[idx % self.points.len()];
        Some(node)
    }

    /// Fixed succession order: node ids sorted by their lowest point. The
    /// designated successor of a node — its replication follower, and the
    /// inheritor of all its sessions if it dies — is the next *alive* node
    /// in this cycle.
    fn succession(&self) -> Vec<&str> {
        let mut first: BTreeMap<&str, u64> = BTreeMap::new();
        for (p, n) in &self.points {
            let e = first.entry(n.as_str()).or_insert(*p);
            if *p < *e {
                *e = *p;
            }
        }
        let mut order: Vec<(u64, &str)> = first.into_iter().map(|(n, p)| (p, n)).collect();
        order.sort();
        order.into_iter().map(|(_, n)| n).collect()
    }

    /// The designated successor of `node`: the next alive member in the
    /// succession cycle. `None` when no *other* alive member exists.
    pub fn successor(&self, node: &str) -> Option<&str> {
        self.successors(node, 1).into_iter().next()
    }

    /// The first `k` *distinct alive* members after `node` in the
    /// succession cycle — the replication followers of a node running with
    /// replication factor `k + 1`. Shorter than `k` when fewer other alive
    /// members exist; empty when `node` is alone (or unknown).
    pub fn successors(&self, node: &str, k: usize) -> Vec<&str> {
        let order = self.succession();
        let Some(start) = order.iter().position(|&n| n == node) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for i in 1..order.len() {
            let cand = order[(start + i) % order.len()];
            if cand != node && self.is_alive(cand) && !out.contains(&cand) {
                out.push(cand);
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }

    /// The node a session routes to: the point owner when alive, otherwise
    /// its designated successor. `None` on an empty or fully-dead ring.
    pub fn owner(&self, session: &str) -> Option<&str> {
        let primary = self.point_owner(session)?;
        if self.is_alive(primary) {
            return Some(primary);
        }
        self.successor(primary)
    }

    /// The node a session would route to if `excluded` were gone — where a
    /// leaving node sends each of its sessions.
    pub fn owner_excluding(&self, session: &str, excluded: &str) -> Option<String> {
        let mut without = self.clone();
        without.remove(excluded);
        without.owner(session).map(str::to_owned)
    }

    /// Serialize the membership as the `CLUSTER` topology dump body:
    ///
    /// ```text
    /// version 3 seed 1591657893 vnodes 64
    /// node n1 127.0.0.1:7001 alive
    /// node n2 127.0.0.1:7002 dead
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "version {} seed {} vnodes {}",
            self.version, self.seed, self.vnodes
        );
        for (id, e) in &self.nodes {
            let _ = writeln!(
                out,
                "node {id} {} {}",
                e.addr,
                if e.alive { "alive" } else { "dead" }
            );
        }
        out
    }

    /// Parse a [`render`](Self::render) dump back into a ring. Lines that
    /// are neither `version` nor `node` lines (e.g. the `standby` lines a
    /// server appends) are ignored.
    pub fn parse(text: &str) -> Result<HashRing, String> {
        let mut ring = HashRing::new(DEFAULT_SEED, DEFAULT_VNODES);
        let mut saw_version = false;
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("version") => {
                    let err = || format!("bad version line `{line}`");
                    let version = parts.next().and_then(|v| v.parse().ok()).ok_or_else(err)?;
                    let seed = match (parts.next(), parts.next()) {
                        (Some("seed"), Some(v)) => v.parse().map_err(|_| err())?,
                        _ => return Err(err()),
                    };
                    let vnodes = match (parts.next(), parts.next()) {
                        (Some("vnodes"), Some(v)) => v.parse().map_err(|_| err())?,
                        _ => return Err(err()),
                    };
                    ring = HashRing::new(seed, vnodes);
                    ring.version = version;
                    saw_version = true;
                }
                Some("node") => {
                    let (Some(id), Some(addr), Some(state)) =
                        (parts.next(), parts.next(), parts.next())
                    else {
                        return Err(format!("bad node line `{line}`"));
                    };
                    ring.nodes.insert(
                        id.to_owned(),
                        NodeEntry {
                            addr: addr.to_owned(),
                            alive: state == "alive",
                        },
                    );
                }
                _ => {}
            }
        }
        if !saw_version {
            return Err("topology dump has no version line".to_owned());
        }
        ring.rebuild_points();
        Ok(ring)
    }

    /// Replace this ring's membership with `other`'s if `other` is newer.
    /// Returns `true` when the replacement happened.
    pub fn adopt_if_newer(&mut self, other: HashRing) -> bool {
        if other.version > self.version {
            *self = other;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn ring_of(n: usize) -> HashRing {
        let mut r = HashRing::new(DEFAULT_SEED, DEFAULT_VNODES);
        for i in 0..n {
            r.join(&format!("n{i}"), &format!("127.0.0.1:{}", 7000 + i));
        }
        r
    }

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("session-{i}")).collect()
    }

    #[test]
    fn distribution_is_uniform_within_fifteen_percent_at_64_vnodes() {
        let ring = ring_of(4);
        let ks = keys(10_000);
        let mut counts: HashMap<String, usize> = HashMap::new();
        for k in &ks {
            *counts.entry(ring.owner(k).unwrap().to_owned()).or_insert(0) += 1;
        }
        let mean = ks.len() as f64 / 4.0;
        for i in 0..4 {
            let c = *counts.get(&format!("n{i}")).unwrap_or(&0) as f64;
            let dev = (c - mean).abs() / mean;
            assert!(
                dev <= 0.15,
                "node n{i} owns {c} of {} keys — {:.1}% off the mean",
                ks.len(),
                dev * 100.0
            );
        }
    }

    #[test]
    fn leave_moves_only_the_departing_nodes_keys() {
        let ring = ring_of(4);
        let ks = keys(5_000);
        let before: Vec<String> = ks
            .iter()
            .map(|k| ring.owner(k).unwrap().to_owned())
            .collect();
        let mut after_ring = ring.clone();
        after_ring.remove("n2");
        for (k, owner_before) in ks.iter().zip(&before) {
            let owner_after = after_ring.owner(k).unwrap();
            if owner_before != "n2" {
                assert_eq!(
                    owner_after, owner_before,
                    "key {k} moved although its owner {owner_before} stayed"
                );
            } else {
                assert_ne!(owner_after, "n2");
            }
        }
    }

    #[test]
    fn join_moves_keys_only_onto_the_new_node() {
        let ring = ring_of(4);
        let ks = keys(5_000);
        let before: Vec<String> = ks
            .iter()
            .map(|k| ring.owner(k).unwrap().to_owned())
            .collect();
        let mut grown = ring.clone();
        grown.join("n9", "127.0.0.1:7999");
        let mut moved = 0usize;
        for (k, owner_before) in ks.iter().zip(&before) {
            let owner_after = grown.owner(k).unwrap();
            if owner_after != owner_before {
                assert_eq!(
                    owner_after, "n9",
                    "key {k} moved {owner_before}→{owner_after}, not to the joiner"
                );
                moved += 1;
            }
        }
        assert!(moved > 0, "a 5th node joined and took nothing");
        assert!(
            moved < ks.len() / 2,
            "join reshuffled {moved} of {} keys",
            ks.len()
        );
    }

    #[test]
    fn a_dead_nodes_keys_all_route_to_its_designated_successor() {
        let mut ring = ring_of(3);
        let ks = keys(2_000);
        let standby = ring.successor("n1").unwrap().to_owned();
        let owned: Vec<&String> = ks.iter().filter(|k| ring.owner(k) == Some("n1")).collect();
        assert!(!owned.is_empty());
        ring.mark_dead("n1");
        for k in owned {
            assert_eq!(
                ring.owner(k),
                Some(standby.as_str()),
                "key {k} scattered away from the standby after the owner died"
            );
        }
    }

    #[test]
    fn membership_changes_bump_the_version_and_are_idempotent() {
        let mut ring = ring_of(2);
        let v = ring.version();
        assert!(!ring.join("n1", "127.0.0.1:7001"), "re-join is a change?");
        assert_eq!(ring.version(), v);
        assert!(ring.mark_dead("n0"));
        assert!(!ring.mark_dead("n0"));
        assert_eq!(ring.version(), v + 1);
        assert!(ring.remove("n0"));
        assert!(!ring.remove("n0"));
        assert_eq!(ring.version(), v + 2);
    }

    #[test]
    fn revival_restores_ownership_and_is_idempotent() {
        let mut ring = ring_of(3);
        let before: Vec<_> = keys(200)
            .iter()
            .map(|k| ring.owner(k).unwrap().to_owned())
            .collect();
        assert!(ring.mark_dead("n1"));
        let v = ring.version();
        assert!(ring.mark_alive("n1"), "dead node should revive");
        assert_eq!(ring.version(), v + 1);
        assert!(!ring.mark_alive("n1"), "revival is a change twice?");
        assert!(!ring.mark_alive("nx"), "unknown node revived");
        assert_eq!(ring.version(), v + 1);
        for (k, owner) in keys(200).iter().zip(before) {
            assert_eq!(ring.owner(k), Some(owner.as_str()), "key {k} moved");
        }
    }

    #[test]
    fn render_parse_roundtrip_preserves_placement() {
        let mut ring = ring_of(3);
        ring.mark_dead("n2");
        let parsed = HashRing::parse(&ring.render()).unwrap();
        assert_eq!(parsed.version(), ring.version());
        assert_eq!(parsed.alive(), ring.alive());
        for k in keys(500) {
            assert_eq!(parsed.owner(&k), ring.owner(&k));
        }
    }

    #[test]
    fn successors_skip_the_dead_and_never_repeat() {
        let mut ring = ring_of(4);
        // Every node sees the other three, each exactly once, none itself.
        for i in 0..4 {
            let me = format!("n{i}");
            let succ = ring.successors(&me, 10);
            assert_eq!(succ.len(), 3, "{me} should see three followers");
            assert!(!succ.contains(&me.as_str()));
            let mut uniq = succ.clone();
            uniq.dedup();
            assert_eq!(uniq, succ, "followers repeat for {me}");
        }
        // k truncates, and the first follower is the designated successor.
        let one = ring.successors("n0", 1);
        assert_eq!(one.as_slice(), &[ring.successor("n0").unwrap()]);
        let two = ring.successors("n0", 2);
        assert_eq!(two.len(), 2);
        assert_eq!(two[0], one[0]);
        // A dead node vanishes from every follower set but keeps its points.
        let dead = two[0].to_owned();
        ring.mark_dead(&dead);
        for i in 0..4 {
            let me = format!("n{i}");
            if me == dead {
                continue;
            }
            let succ = ring.successors(&me, 10);
            assert!(!succ.contains(&dead.as_str()), "{me} still follows {dead}");
            assert_eq!(succ.len(), 2);
        }
        // Unknown node: empty, not a panic.
        assert!(ring.successors("ghost", 2).is_empty());
    }

    #[test]
    fn two_node_successors_point_at_each_other() {
        let ring = ring_of(2);
        assert_eq!(ring.successor("n0"), Some("n1"));
        assert_eq!(ring.successor("n1"), Some("n0"));
        let mut solo = ring.clone();
        solo.remove("n1");
        assert_eq!(solo.successor("n0"), None);
    }
}
