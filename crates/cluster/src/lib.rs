//! # sedex-cluster
//!
//! Multi-node scale-out for the SEDEX service: a consistent-hash ring that
//! maps session names to owner nodes ([`ring`]), a warm-standby store that
//! replays a peer's replicated WAL into live shadow sessions ([`standby`]),
//! and the shared per-process cluster state the service threads coordinate
//! through ([`ClusterState`]).
//!
//! The crate is deliberately transport-free: the service owns the sockets
//! (the replication link and heartbeats ride the existing readiness
//! reactor; no per-peer threads), and this crate owns the *decisions* —
//! who owns a session, who follows whom, when a peer is dead, what the
//! standby has. Everything here is std-only like the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ring;
pub mod standby;

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::{Duration, Instant};

pub use ring::{HashRing, NodeEntry, DEFAULT_SEED, DEFAULT_VNODES};
pub use standby::StandbySet;

/// Static cluster parameters for one node.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's id — the name it appears under in the ring.
    pub node_id: String,
    /// The address peers and clients reach this node at (goes into `MOVED`
    /// redirects and the topology dump).
    pub advertise: String,
    /// Seed addresses to `JOIN` through at startup. Empty: start solo.
    pub peers: Vec<String>,
    /// Virtual nodes per member.
    pub vnodes: u32,
    /// Placement seed — all members must agree.
    pub seed: u64,
    /// Interval between heartbeats to the designated successor.
    pub heartbeat: Duration,
    /// Silence after which the failure detector declares a peer dead. Must
    /// comfortably exceed `heartbeat`.
    pub failover: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            node_id: "n1".to_owned(),
            advertise: String::new(),
            peers: Vec::new(),
            vnodes: DEFAULT_VNODES,
            seed: DEFAULT_SEED,
            heartbeat: Duration::from_millis(500),
            failover: Duration::from_secs(2),
        }
    }
}

/// One WAL record queued for shipping to the replication follower.
#[derive(Debug, Clone)]
pub struct ReplFrame {
    /// Origin shard index — the standby keeps one watermark per shard.
    pub shard: u32,
    /// The encoded WAL frame payload (`lsn u64 | kind u8 | body`).
    pub payload: Vec<u8>,
}

/// Shared cluster state: the ring, migration bookkeeping, the failure
/// detector's evidence, the standby store, and the replication queue.
///
/// Lock discipline: every field has its own lock and none is held across a
/// call that takes another — all methods lock, act, unlock.
pub struct ClusterState {
    /// Static parameters.
    pub config: ClusterConfig,
    /// The versioned membership map.
    pub ring: RwLock<HashRing>,
    /// Sessions currently being exported by a planned leave. Requests for
    /// them are answered `BUSY` (retried transparently) until the handoff
    /// completes and the entry moves to `forwarded`.
    pub migrating: Mutex<HashSet<String>>,
    /// Sessions this node handed off, and where they went — consulted
    /// before the ring so a mid-leave window never answers `no such
    /// session` for a session that just moved.
    pub forwarded: Mutex<HashMap<String, String>>,
    /// Last time each peer was heard from (heartbeat or any request).
    pub last_seen: Mutex<HashMap<String, Instant>>,
    /// Replicated state per origin node.
    pub standby: Mutex<HashMap<String, StandbySet>>,
    /// WAL records queued for the replication link, in per-shard LSN order.
    repl_queue: Mutex<VecDeque<ReplFrame>>,
    /// Records handed to the replication link.
    pub repl_sent: AtomicU64,
    /// Records the follower acknowledged.
    pub repl_acked: AtomicU64,
    /// `MOVED` redirects served.
    pub redirects: AtomicU64,
    /// Set once this node completed a planned `LEAVE`: it owns nothing and
    /// only redirects.
    pub left: AtomicBool,
}

impl ClusterState {
    /// Fresh state: a one-member ring containing only this node.
    pub fn new(config: ClusterConfig) -> ClusterState {
        let mut ring = HashRing::new(config.seed, config.vnodes);
        ring.join(&config.node_id, &config.advertise);
        ClusterState {
            config,
            ring: RwLock::new(ring),
            migrating: Mutex::new(HashSet::new()),
            forwarded: Mutex::new(HashMap::new()),
            last_seen: Mutex::new(HashMap::new()),
            standby: Mutex::new(HashMap::new()),
            repl_queue: Mutex::new(VecDeque::new()),
            repl_sent: AtomicU64::new(0),
            repl_acked: AtomicU64::new(0),
            redirects: AtomicU64::new(0),
            left: AtomicBool::new(false),
        }
    }

    /// This node's id.
    pub fn node_id(&self) -> &str {
        &self.config.node_id
    }

    /// Record life signs from a peer.
    pub fn note_peer(&self, node: &str) {
        if node == self.config.node_id {
            return;
        }
        self.last_seen
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(node.to_owned(), Instant::now());
    }

    /// Peers that have been silent longer than the failover timeout *and*
    /// whose designated successor is this node — the ones this node must
    /// promote. Peers never heard from count from `since` (ring adoption
    /// time), so a node that joins and immediately dies still fails over.
    pub fn dead_peers(&self, since: Instant) -> Vec<String> {
        let ring = self.ring.read().unwrap_or_else(|e| e.into_inner());
        let seen = self.last_seen.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        let me = self.config.node_id.as_str();
        ring.nodes()
            .filter(|&(id, e)| id != me && e.alive)
            .filter(|&(id, _)| ring.successor(id) == Some(me))
            .filter(|&(id, _)| {
                let last = seen.get(id).copied().unwrap_or(since);
                now.duration_since(last) >= self.config.failover
            })
            .map(|(id, _)| id.to_owned())
            .collect()
    }

    /// Queue one WAL record for the replication link. Called under the
    /// durable shard lock, so the queue preserves per-shard LSN order.
    pub fn enqueue_repl(&self, shard: u32, payload: Vec<u8>) {
        self.repl_queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(ReplFrame { shard, payload });
    }

    /// Drain up to `max` queued records for shipping.
    pub fn drain_repl(&self, max: usize) -> Vec<ReplFrame> {
        let mut q = self.repl_queue.lock().unwrap_or_else(|e| e.into_inner());
        let n = q.len().min(max);
        q.drain(..n).collect()
    }

    /// Records waiting in the replication queue.
    pub fn repl_queued(&self) -> usize {
        self.repl_queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Replace the whole replication queue with a disk catch-up (the
    /// follower changed or just connected). `read` runs *while the queue
    /// lock is held*: every record that was queued had already reached disk
    /// before it was enqueued (the enqueue happens after the WAL append,
    /// under the same shard lock), so clearing first and reading second
    /// loses nothing — a record enqueued concurrently blocks on this lock
    /// until the read is done, and at worst arrives twice; the standby's
    /// per-shard watermark deduplicates re-sends.
    pub fn catch_up_with(&self, read: impl FnOnce() -> Vec<ReplFrame>) {
        let mut q = self.repl_queue.lock().unwrap_or_else(|e| e.into_inner());
        q.clear();
        q.extend(read());
    }

    /// Replication lag: records shipped but not yet acknowledged, plus
    /// records still queued.
    pub fn repl_lag(&self) -> u64 {
        let sent = self.repl_sent.load(Ordering::Relaxed);
        let acked = self.repl_acked.load(Ordering::Relaxed);
        sent.saturating_sub(acked) + self.repl_queued() as u64
    }

    /// Where a session-addressed request for `session` should be handled,
    /// given that it is not live locally. Consults migration bookkeeping
    /// first, then the ring.
    pub fn route(&self, session: &str) -> Route {
        if self
            .migrating
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains(session)
        {
            return Route::Migrating;
        }
        if let Some(node) = self
            .forwarded
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(session)
        {
            let ring = self.ring.read().unwrap_or_else(|e| e.into_inner());
            if let Some(addr) = ring.addr_of(node) {
                return Route::Moved(node.clone(), addr.to_owned());
            }
        }
        let ring = self.ring.read().unwrap_or_else(|e| e.into_inner());
        match ring.owner(session) {
            Some(owner) if owner != self.config.node_id => {
                let addr = ring.addr_of(owner).unwrap_or_default().to_owned();
                Route::Moved(owner.to_owned(), addr)
            }
            _ => Route::Local,
        }
    }
}

/// Routing decision for a session that is not live on this node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// This node is the owner — handle it here.
    Local,
    /// Another node owns it: answer `ERR MOVED <node> <addr>`.
    Moved(String, String),
    /// A planned leave is exporting it right now: answer `BUSY`.
    Migrating,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_two_nodes() -> ClusterState {
        let state = ClusterState::new(ClusterConfig {
            node_id: "a".into(),
            advertise: "127.0.0.1:1".into(),
            failover: Duration::from_millis(50),
            ..ClusterConfig::default()
        });
        state.ring.write().unwrap().join("b", "127.0.0.1:2");
        state
    }

    #[test]
    fn routing_prefers_migrating_then_forwarded_then_ring() {
        let state = state_two_nodes();
        let ring = state.ring.read().unwrap().clone();
        let theirs = (0..100)
            .map(|i| format!("s{i}"))
            .find(|s| ring.owner(s) == Some("b"))
            .unwrap();
        assert_eq!(
            state.route(&theirs),
            Route::Moved("b".into(), "127.0.0.1:2".into())
        );
        state.migrating.lock().unwrap().insert(theirs.clone());
        assert_eq!(state.route(&theirs), Route::Migrating);
        state.migrating.lock().unwrap().remove(&theirs);
        let mine = (0..100)
            .map(|i| format!("s{i}"))
            .find(|s| ring.owner(s) == Some("a"))
            .unwrap();
        assert_eq!(state.route(&mine), Route::Local);
        state
            .forwarded
            .lock()
            .unwrap()
            .insert(mine.clone(), "b".into());
        assert_eq!(
            state.route(&mine),
            Route::Moved("b".into(), "127.0.0.1:2".into())
        );
    }

    #[test]
    fn silent_peers_are_reported_dead_only_to_their_successor() {
        let state = state_two_nodes();
        let since = Instant::now() - Duration::from_secs(1);
        // Two-node ring: each is the other's successor, so silent `b` is
        // this node's problem.
        assert_eq!(state.dead_peers(since), vec!["b".to_owned()]);
        state.note_peer("b");
        assert!(state.dead_peers(since).is_empty());
    }

    #[test]
    fn repl_queue_preserves_order_and_lag_counts_queued() {
        let state = state_two_nodes();
        state.enqueue_repl(0, vec![1]);
        state.enqueue_repl(0, vec![2]);
        state.enqueue_repl(1, vec![3]);
        assert_eq!(state.repl_lag(), 3);
        let drained = state.drain_repl(2);
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].payload, vec![1]);
        assert_eq!(drained[1].payload, vec![2]);
        state.repl_sent.fetch_add(2, Ordering::Relaxed);
        assert_eq!(state.repl_lag(), 3);
        state.repl_acked.fetch_add(2, Ordering::Relaxed);
        assert_eq!(state.repl_lag(), 1);
    }
}
