//! # sedex-cluster
//!
//! Multi-node scale-out for the SEDEX service: a consistent-hash ring that
//! maps session names to owner nodes ([`ring`]), a warm-standby store that
//! replays a peer's replicated WAL into live shadow sessions ([`standby`]),
//! and the shared per-process cluster state the service threads coordinate
//! through ([`ClusterState`]).
//!
//! The crate is deliberately transport-free: the service owns the sockets
//! (the replication links and heartbeats ride the existing readiness
//! reactor; no per-peer threads), and this crate owns the *decisions* —
//! who owns a session, who follows whom, when a peer is dead, what the
//! standby has, what each follower still owes ([`ReplPeer`]). Everything
//! here is std-only like the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ring;
pub mod standby;

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

pub use ring::{HashRing, NodeEntry, DEFAULT_SEED, DEFAULT_VNODES};
pub use standby::{Applied, StandbySet};

/// Static cluster parameters for one node.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's id — the name it appears under in the ring.
    pub node_id: String,
    /// The address peers and clients reach this node at (goes into `MOVED`
    /// redirects and the topology dump).
    pub advertise: String,
    /// Seed addresses to `JOIN` through at startup. Empty: start solo.
    pub peers: Vec<String>,
    /// Virtual nodes per member.
    pub vnodes: u32,
    /// Placement seed — all members must agree.
    pub seed: u64,
    /// Interval between heartbeats to the designated successor.
    pub heartbeat: Duration,
    /// Silence after which the failure detector declares a peer dead. Must
    /// comfortably exceed `heartbeat`.
    pub failover: Duration,
    /// Replication factor R: every acknowledged record lives on R nodes —
    /// the origin plus its R−1 distinct alive ring successors. `1` keeps
    /// the data on the origin only (no replication links).
    pub replication: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            node_id: "n1".to_owned(),
            advertise: String::new(),
            peers: Vec::new(),
            vnodes: DEFAULT_VNODES,
            seed: DEFAULT_SEED,
            heartbeat: Duration::from_millis(500),
            failover: Duration::from_secs(2),
            replication: 2,
        }
    }
}

/// One WAL record queued for shipping to a replication follower.
#[derive(Debug, Clone)]
pub struct ReplFrame {
    /// Origin shard index — the standby keeps one watermark per shard.
    pub shard: u32,
    /// The encoded WAL frame payload (`lsn u64 | kind u8 | body`).
    pub payload: Vec<u8>,
}

/// Replication state for one outbound follower: its frame queue and ack
/// watermark. One exists per follower link; WAL appends fan a copy of each
/// record into every queue whose link is up.
#[derive(Debug, Default)]
pub struct ReplPeer {
    /// Frames queued for this follower, in per-shard LSN order.
    queue: Mutex<VecDeque<ReplFrame>>,
    /// Records handed to this follower's link.
    pub sent: AtomicU64,
    /// Records this follower acknowledged.
    pub acked: AtomicU64,
    /// True while the link is ready: WAL appends fan into this queue.
    /// Mutated only through [`ClusterState::set_shipping`], which keeps the
    /// aggregate fast-path flag in sync.
    shipping: AtomicBool,
}

impl ReplPeer {
    /// True while the link to this follower is up and shipping.
    pub fn is_shipping(&self) -> bool {
        self.shipping.load(Ordering::Relaxed)
    }

    /// Queue one record for this follower. Called under the durable shard
    /// lock, so the queue preserves per-shard LSN order.
    pub fn enqueue(&self, shard: u32, payload: Vec<u8>) {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(ReplFrame { shard, payload });
    }

    /// Drain up to `max` queued records for shipping.
    pub fn drain(&self, max: usize) -> Vec<ReplFrame> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let n = q.len().min(max);
        q.drain(..n).collect()
    }

    /// Records waiting in this follower's queue.
    pub fn queued(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Replace the whole queue with a disk catch-up (the link just came up,
    /// or anti-entropy found the follower behind). `read` runs *while the
    /// queue lock is held*: every record that was queued had already reached
    /// disk before it was enqueued (the enqueue happens after the WAL
    /// append, under the same shard lock), so clearing first and reading
    /// second loses nothing — a record enqueued concurrently blocks on this
    /// lock until the read is done, and at worst arrives twice; the
    /// standby's per-shard watermark deduplicates re-sends.
    pub fn catch_up_with(&self, read: impl FnOnce() -> Vec<ReplFrame>) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.clear();
        q.extend(read());
    }

    /// This follower's lag: records shipped but not yet acknowledged, plus
    /// records still queued.
    pub fn lag(&self) -> u64 {
        let sent = self.sent.load(Ordering::Relaxed);
        let acked = self.acked.load(Ordering::Relaxed);
        sent.saturating_sub(acked) + self.queued() as u64
    }
}

/// Shared cluster state: the ring, migration bookkeeping, the failure
/// detector's evidence, the standby store, and the per-follower
/// replication queues.
///
/// Lock discipline: every field has its own lock and none is held across a
/// call that takes another — all methods lock, act, unlock.
pub struct ClusterState {
    /// Static parameters.
    pub config: ClusterConfig,
    /// The versioned membership map.
    pub ring: RwLock<HashRing>,
    /// Sessions currently being exported by a planned leave. Requests for
    /// them are answered `BUSY` (retried transparently) until the handoff
    /// completes and the entry moves to `forwarded`.
    pub migrating: Mutex<HashSet<String>>,
    /// Sessions this node handed off, and where they went — consulted
    /// before the ring so a mid-leave window never answers `no such
    /// session` for a session that just moved.
    pub forwarded: Mutex<HashMap<String, String>>,
    /// Last time each peer was heard from (heartbeat or any request).
    pub last_seen: Mutex<HashMap<String, Instant>>,
    /// Replicated state per origin node.
    pub standby: Mutex<HashMap<String, StandbySet>>,
    /// Per-follower replication queues, keyed by follower node id. Entries
    /// appear when the reactor opens a link and are retired when the
    /// follower leaves the follower set.
    repl_peers: Mutex<HashMap<String, Arc<ReplPeer>>>,
    /// Fast-path gate for the WAL append hook: true iff any follower is
    /// shipping. Recomputed under the `repl_peers` lock on every toggle.
    any_shipping: AtomicBool,
    /// `MOVED` redirects served.
    pub redirects: AtomicU64,
    /// Set once this node completed a planned `LEAVE`: it owns nothing and
    /// only redirects.
    pub left: AtomicBool,
}

impl ClusterState {
    /// Fresh state: a one-member ring containing only this node.
    pub fn new(config: ClusterConfig) -> ClusterState {
        let mut ring = HashRing::new(config.seed, config.vnodes);
        ring.join(&config.node_id, &config.advertise);
        ClusterState {
            config,
            ring: RwLock::new(ring),
            migrating: Mutex::new(HashSet::new()),
            forwarded: Mutex::new(HashMap::new()),
            last_seen: Mutex::new(HashMap::new()),
            standby: Mutex::new(HashMap::new()),
            repl_peers: Mutex::new(HashMap::new()),
            any_shipping: AtomicBool::new(false),
            redirects: AtomicU64::new(0),
            left: AtomicBool::new(false),
        }
    }

    /// This node's id.
    pub fn node_id(&self) -> &str {
        &self.config.node_id
    }

    /// Record life signs from a peer.
    pub fn note_peer(&self, node: &str) {
        if node == self.config.node_id {
            return;
        }
        self.last_seen
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(node.to_owned(), Instant::now());
    }

    /// Peers that have been silent longer than the failover timeout. With
    /// every node pinging every alive peer each heartbeat, silence is
    /// evidence wherever it is observed: *each* node marks a silent peer
    /// dead on its own ring (so origins re-target their followers without
    /// waiting for gossip), while only the dead node's designated successor
    /// additionally promotes its standby. Peers never heard from count
    /// their silence from `since` (ring adoption time), so a node that
    /// joins and immediately dies still fails over.
    pub fn dead_peers(&self, since: Instant) -> Vec<String> {
        let ring = self.ring.read().unwrap_or_else(|e| e.into_inner());
        let seen = self.last_seen.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        let me = self.config.node_id.as_str();
        ring.nodes()
            .filter(|&(id, e)| id != me && e.alive)
            .filter(|&(id, _)| {
                let last = seen.get(id).copied().unwrap_or(since);
                now.duration_since(last) >= self.config.failover
            })
            .map(|(id, _)| id.to_owned())
            .collect()
    }

    /// The replication state for follower `node`, created on first use.
    pub fn repl_peer(&self, node: &str) -> Arc<ReplPeer> {
        let mut peers = self.repl_peers.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(peers.entry(node.to_owned()).or_default())
    }

    /// Forget a follower entirely (it died or left the follower set): its
    /// queue and counters stop contributing to the aggregate totals.
    pub fn retire_repl_peer(&self, node: &str) {
        let mut peers = self.repl_peers.lock().unwrap_or_else(|e| e.into_inner());
        peers.remove(node);
        let any = peers.values().any(|p| p.is_shipping());
        self.any_shipping.store(any, Ordering::SeqCst);
    }

    /// Toggle whether WAL appends fan into `node`'s queue, keeping the
    /// append-path fast gate in sync. Held to the same ordering contract as
    /// [`ReplPeer::catch_up_with`]: the reactor turns shipping on *before*
    /// reading the disk catch-up, so no append can fall between.
    pub fn set_shipping(&self, node: &str, on: bool) {
        let mut peers = self.repl_peers.lock().unwrap_or_else(|e| e.into_inner());
        if on {
            peers
                .entry(node.to_owned())
                .or_default()
                .shipping
                .store(true, Ordering::SeqCst);
        } else if let Some(p) = peers.get(node) {
            p.shipping.store(false, Ordering::SeqCst);
        }
        let any = peers.values().any(|p| p.is_shipping());
        self.any_shipping.store(any, Ordering::SeqCst);
    }

    /// Fan one WAL record out to every shipping follower. `encode` runs at
    /// most once, and not at all when no link is up — the single-node (or
    /// followerless) append path pays one atomic load. Called under the
    /// durable shard lock, preserving per-shard LSN order in every queue.
    pub fn repl_fanout(&self, shard: u32, encode: impl FnOnce() -> Vec<u8>) {
        if !self.any_shipping.load(Ordering::Relaxed) {
            return;
        }
        let peers = self.repl_peers.lock().unwrap_or_else(|e| e.into_inner());
        let shipping: Vec<&Arc<ReplPeer>> = peers.values().filter(|p| p.is_shipping()).collect();
        if shipping.is_empty() {
            return;
        }
        let payload = encode();
        for p in shipping {
            p.enqueue(shard, payload.clone());
        }
    }

    /// Every follower with replication state, sorted by node id — the
    /// `CLUSTER` dump's `repl-peer` lines.
    pub fn repl_peers_snapshot(&self) -> Vec<(String, Arc<ReplPeer>)> {
        let peers = self.repl_peers.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(String, Arc<ReplPeer>)> = peers
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Records waiting across all follower queues.
    pub fn repl_queued(&self) -> usize {
        let peers = self.repl_peers.lock().unwrap_or_else(|e| e.into_inner());
        peers.values().map(|p| p.queued()).sum()
    }

    /// Records handed to follower links, across all followers.
    pub fn repl_sent_total(&self) -> u64 {
        let peers = self.repl_peers.lock().unwrap_or_else(|e| e.into_inner());
        peers.values().map(|p| p.sent.load(Ordering::Relaxed)).sum()
    }

    /// Records acknowledged by followers, across all followers.
    pub fn repl_acked_total(&self) -> u64 {
        let peers = self.repl_peers.lock().unwrap_or_else(|e| e.into_inner());
        peers
            .values()
            .map(|p| p.acked.load(Ordering::Relaxed))
            .sum()
    }

    /// Total replication lag: per-follower lags summed.
    pub fn repl_lag(&self) -> u64 {
        let peers = self.repl_peers.lock().unwrap_or_else(|e| e.into_inner());
        peers.values().map(|p| p.lag()).sum()
    }

    /// Where a session-addressed request for `session` should be handled,
    /// given that it is not live locally. Consults migration bookkeeping
    /// first, then the ring.
    pub fn route(&self, session: &str) -> Route {
        if self
            .migrating
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains(session)
        {
            return Route::Migrating;
        }
        if let Some(node) = self
            .forwarded
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(session)
        {
            let ring = self.ring.read().unwrap_or_else(|e| e.into_inner());
            if let Some(addr) = ring.addr_of(node) {
                return Route::Moved(node.clone(), addr.to_owned());
            }
        }
        let ring = self.ring.read().unwrap_or_else(|e| e.into_inner());
        match ring.owner(session) {
            Some(owner) if owner != self.config.node_id => {
                let addr = ring.addr_of(owner).unwrap_or_default().to_owned();
                Route::Moved(owner.to_owned(), addr)
            }
            _ => Route::Local,
        }
    }
}

/// Routing decision for a session that is not live on this node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// This node is the owner — handle it here.
    Local,
    /// Another node owns it: answer `ERR MOVED <node> <addr>`.
    Moved(String, String),
    /// A planned leave is exporting it right now: answer `BUSY`.
    Migrating,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_two_nodes() -> ClusterState {
        let state = ClusterState::new(ClusterConfig {
            node_id: "a".into(),
            advertise: "127.0.0.1:1".into(),
            failover: Duration::from_millis(50),
            ..ClusterConfig::default()
        });
        state.ring.write().unwrap().join("b", "127.0.0.1:2");
        state
    }

    #[test]
    fn routing_prefers_migrating_then_forwarded_then_ring() {
        let state = state_two_nodes();
        let ring = state.ring.read().unwrap().clone();
        let theirs = (0..100)
            .map(|i| format!("s{i}"))
            .find(|s| ring.owner(s) == Some("b"))
            .unwrap();
        assert_eq!(
            state.route(&theirs),
            Route::Moved("b".into(), "127.0.0.1:2".into())
        );
        state.migrating.lock().unwrap().insert(theirs.clone());
        assert_eq!(state.route(&theirs), Route::Migrating);
        state.migrating.lock().unwrap().remove(&theirs);
        let mine = (0..100)
            .map(|i| format!("s{i}"))
            .find(|s| ring.owner(s) == Some("a"))
            .unwrap();
        assert_eq!(state.route(&mine), Route::Local);
        state
            .forwarded
            .lock()
            .unwrap()
            .insert(mine.clone(), "b".into());
        assert_eq!(
            state.route(&mine),
            Route::Moved("b".into(), "127.0.0.1:2".into())
        );
    }

    #[test]
    fn silent_peers_are_reported_dead_wherever_observed() {
        let state = state_two_nodes();
        let since = Instant::now() - Duration::from_secs(1);
        assert_eq!(state.dead_peers(since), vec!["b".to_owned()]);
        state.note_peer("b");
        assert!(state.dead_peers(since).is_empty());
        // Full-mesh pings make silence evidence on every node, not just
        // the successor: a third node's silence is reported here too.
        state.ring.write().unwrap().join("c", "127.0.0.1:3");
        assert_eq!(state.dead_peers(since), vec!["c".to_owned()]);
    }

    #[test]
    fn per_peer_queues_preserve_order_and_lag_sums_followers() {
        let state = state_two_nodes();
        let b = state.repl_peer("b");
        b.enqueue(0, vec![1]);
        b.enqueue(0, vec![2]);
        b.enqueue(1, vec![3]);
        assert_eq!(state.repl_lag(), 3);
        let drained = b.drain(2);
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].payload, vec![1]);
        assert_eq!(drained[1].payload, vec![2]);
        b.sent.fetch_add(2, Ordering::Relaxed);
        assert_eq!(state.repl_lag(), 3);
        b.acked.fetch_add(2, Ordering::Relaxed);
        assert_eq!(state.repl_lag(), 1);
        // A second follower's lag adds to the total; retiring it removes it.
        let c = state.repl_peer("c");
        c.enqueue(0, vec![9]);
        assert_eq!(state.repl_lag(), 2);
        state.retire_repl_peer("c");
        assert_eq!(state.repl_lag(), 1);
    }

    #[test]
    fn fanout_reaches_exactly_the_shipping_followers() {
        let state = state_two_nodes();
        let b = state.repl_peer("b");
        let c = state.repl_peer("c");
        // Nobody shipping: the encoder must not even run.
        state.repl_fanout(0, || panic!("encoded with no follower up"));
        state.set_shipping("b", true);
        state.repl_fanout(0, || vec![7]);
        assert_eq!(b.queued(), 1);
        assert_eq!(c.queued(), 0);
        state.set_shipping("c", true);
        state.repl_fanout(1, || vec![8]);
        assert_eq!(b.queued(), 2);
        assert_eq!(c.queued(), 1);
        assert_eq!(b.drain(10).last().unwrap().shard, 1);
        state.set_shipping("b", false);
        state.set_shipping("c", false);
        state.repl_fanout(0, || panic!("encoded after links went down"));
        assert_eq!(c.queued(), 1);
    }
}
