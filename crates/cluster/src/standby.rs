//! The warm standby: replicated WAL records from a peer, replayed into live
//! shadow sessions that promotion hands to the session manager wholesale.
//!
//! Each origin node ships its WAL over a single replication link in
//! per-shard LSN order. The standby applies every record through the same
//! replay path crash recovery uses, tracking a per-`(origin, shard)`
//! watermark so the origin's catch-up re-sends (which restart the stream
//! from disk) are deduplicated instead of double-applied.

use std::collections::HashMap;
use std::sync::Arc;

use sedex_core::{Observer, SedexConfig};
use sedex_durable::recover::replay_record;
use sedex_durable::{RecoveredSession, WalRecord};

/// Replicated state received from one origin node.
#[derive(Default)]
pub struct StandbySet {
    /// Live shadow sessions, keyed by name — exactly what promotion installs.
    pub sessions: HashMap<String, RecoveredSession>,
    /// Highest LSN applied per origin shard; records at or below are skipped.
    pub watermarks: HashMap<u32, u64>,
    /// Records applied (post-dedup) — the catch-up signal tests poll for.
    pub records: u64,
    /// Records that decoded but failed to replay (counted, not fatal —
    /// same contract as crash recovery).
    pub errors: u64,
}

impl StandbySet {
    /// Apply one replicated WAL frame payload (`lsn u64 | kind u8 | body`)
    /// from `shard` of the origin node. Returns `true` when the record was
    /// applied, `false` when the watermark already covered it.
    pub fn apply(
        &mut self,
        config: &SedexConfig,
        observer: Option<&Arc<dyn Observer>>,
        shard: u32,
        payload: &[u8],
    ) -> Result<bool, String> {
        let (lsn, record) =
            WalRecord::decode(payload).map_err(|e| format!("replicated record: {e:?}"))?;
        let mark = self.watermarks.entry(shard).or_insert(0);
        if lsn <= *mark {
            return Ok(false);
        }
        *mark = lsn;
        match replay_record(&mut self.sessions, config, observer, record) {
            Ok(()) => {
                self.records += 1;
                Ok(true)
            }
            Err(e) => {
                self.errors += 1;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::Tuple;

    const SCENARIO: &str = "\
[source]
S(a*, b)
[target]
T(x*, y)
[correspondences]
a <-> x
b <-> y
";

    fn frame(lsn: u64, record: &WalRecord) -> Vec<u8> {
        record.encode(lsn)
    }

    #[test]
    fn records_apply_in_order_and_duplicates_are_skipped() {
        let mut set = StandbySet::default();
        let cfg = SedexConfig::default();
        let open = WalRecord::Open {
            session: "s".into(),
            scenario: SCENARIO.into(),
        };
        let push = WalRecord::Push {
            session: "s".into(),
            relation: "S".into(),
            tuple: Tuple::new(vec!["k1".into(), "v1".into()]),
        };
        assert!(set.apply(&cfg, None, 0, &frame(1, &open)).unwrap());
        assert!(set.apply(&cfg, None, 0, &frame(2, &push)).unwrap());
        // A catch-up replays from the start of the shard's log: both frames
        // are at or below the watermark and must be skipped, not re-applied.
        assert!(!set.apply(&cfg, None, 0, &frame(1, &open)).unwrap());
        assert!(!set.apply(&cfg, None, 0, &frame(2, &push)).unwrap());
        assert_eq!(set.records, 2);
        // A different shard has its own watermark.
        assert!(set
            .apply(
                &cfg,
                None,
                1,
                &frame(
                    1,
                    &WalRecord::Open {
                        session: "t".into(),
                        scenario: SCENARIO.into(),
                    }
                )
            )
            .unwrap());
        assert_eq!(set.sessions.len(), 2);
        assert_eq!(set.sessions["s"].tuples_in, 1);
    }
}
