//! The warm standby: replicated WAL records from a peer, replayed into live
//! shadow sessions that promotion hands to the session manager wholesale.
//!
//! Each origin node ships its WAL over a single replication link in
//! per-shard LSN order. The standby applies every record through the same
//! replay path crash recovery uses, tracking a per-`(origin, shard)`
//! watermark so the origin's catch-up re-sends (which restart the stream
//! from disk) are deduplicated instead of double-applied.

use std::collections::HashMap;
use std::sync::Arc;

use sedex_core::{Observer, SedexConfig};
use sedex_durable::recover::replay_record;
use sedex_durable::{RecoveredSession, WalRecord};

/// Replicated state received from one origin node.
#[derive(Default)]
pub struct StandbySet {
    /// Live shadow sessions, keyed by name — exactly what promotion installs.
    pub sessions: HashMap<String, RecoveredSession>,
    /// Highest LSN applied per origin shard; records at or below are skipped.
    pub watermarks: HashMap<u32, u64>,
    /// Records applied (post-dedup) — the catch-up signal tests poll for.
    pub records: u64,
    /// Records that decoded but failed to replay (counted, not fatal —
    /// same contract as crash recovery).
    pub errors: u64,
}

/// Outcome of applying one replicated frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applied {
    /// The record advanced the watermark and was replayed.
    Applied,
    /// The watermark already covered it (catch-up re-send); skipped.
    Duplicate,
    /// The record skips ahead of the watermark: a frame between them was
    /// lost in flight. Refused *without* touching the watermark, so the
    /// origin's next catch-up re-ship (which replays the shard's log in
    /// order) fills the hole.
    Gap {
        /// The LSN the standby was waiting for (`watermark + 1`).
        expected: u64,
        /// The LSN that arrived instead.
        got: u64,
    },
}

impl StandbySet {
    /// Apply one replicated WAL frame payload (`lsn u64 | kind u8 | body`)
    /// from `shard` of the origin node.
    ///
    /// The watermark only advances when the record actually replays: a
    /// record that fails replay must stay *below* the watermark so a later
    /// catch-up re-ship retries it instead of skipping it forever. LSNs are
    /// dense per shard, so a record more than one past the watermark means
    /// an earlier frame was dropped — refused as [`Applied::Gap`]. The
    /// first record from a shard (watermark still 0) is exempt: a
    /// catch-up stream legitimately starts wherever the retained log does.
    pub fn apply(
        &mut self,
        config: &SedexConfig,
        observer: Option<&Arc<dyn Observer>>,
        shard: u32,
        payload: &[u8],
    ) -> Result<Applied, String> {
        let (lsn, record) =
            WalRecord::decode(payload).map_err(|e| format!("replicated record: {e:?}"))?;
        let mark = self.watermarks.entry(shard).or_insert(0);
        if lsn <= *mark {
            return Ok(Applied::Duplicate);
        }
        if *mark > 0 && lsn > *mark + 1 {
            return Ok(Applied::Gap {
                expected: *mark + 1,
                got: lsn,
            });
        }
        match replay_record(&mut self.sessions, config, observer, record) {
            Ok(()) => {
                *mark = lsn;
                self.records += 1;
                Ok(Applied::Applied)
            }
            Err(e) => {
                self.errors += 1;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::Tuple;

    const SCENARIO: &str = "\
[source]
S(a*, b)
[target]
T(x*, y)
[correspondences]
a <-> x
b <-> y
";

    fn frame(lsn: u64, record: &WalRecord) -> Vec<u8> {
        record.encode(lsn)
    }

    fn open(session: &str) -> WalRecord {
        WalRecord::Open {
            session: session.into(),
            scenario: SCENARIO.into(),
        }
    }

    fn push(session: &str, key: &str) -> WalRecord {
        WalRecord::Push {
            session: session.into(),
            relation: "S".into(),
            tuple: Tuple::new(vec![key.into(), "v".into()]),
        }
    }

    #[test]
    fn records_apply_in_order_and_duplicates_are_skipped() {
        let mut set = StandbySet::default();
        let cfg = SedexConfig::default();
        assert_eq!(
            set.apply(&cfg, None, 0, &frame(1, &open("s"))).unwrap(),
            Applied::Applied
        );
        assert_eq!(
            set.apply(&cfg, None, 0, &frame(2, &push("s", "k1")))
                .unwrap(),
            Applied::Applied
        );
        // A catch-up replays from the start of the shard's log: both frames
        // are at or below the watermark and must be skipped, not re-applied.
        assert_eq!(
            set.apply(&cfg, None, 0, &frame(1, &open("s"))).unwrap(),
            Applied::Duplicate
        );
        assert_eq!(
            set.apply(&cfg, None, 0, &frame(2, &push("s", "k1")))
                .unwrap(),
            Applied::Duplicate
        );
        assert_eq!(set.records, 2);
        // A different shard has its own watermark.
        assert_eq!(
            set.apply(&cfg, None, 1, &frame(1, &open("t"))).unwrap(),
            Applied::Applied
        );
        assert_eq!(set.sessions.len(), 2);
        assert_eq!(set.sessions["s"].tuples_in, 1);
    }

    #[test]
    fn undecodable_frames_error_without_touching_the_watermark() {
        let mut set = StandbySet::default();
        let cfg = SedexConfig::default();
        assert_eq!(
            set.apply(&cfg, None, 0, &frame(1, &open("s"))).unwrap(),
            Applied::Applied
        );
        // Garbage and truncated payloads: hard errors, no state change.
        assert!(set.apply(&cfg, None, 0, b"nonsense").is_err());
        let mut torn = frame(2, &push("s", "k1"));
        torn.truncate(torn.len() - 3);
        assert!(set.apply(&cfg, None, 0, &torn).is_err());
        assert_eq!(set.watermarks[&0], 1);
        // The intact frame still applies afterwards.
        assert_eq!(
            set.apply(&cfg, None, 0, &frame(2, &push("s", "k1")))
                .unwrap(),
            Applied::Applied
        );
    }

    #[test]
    fn failed_replay_leaves_the_watermark_so_a_reship_can_retry() {
        let mut set = StandbySet::default();
        let cfg = SedexConfig::default();
        assert_eq!(
            set.apply(&cfg, None, 0, &frame(1, &open("s"))).unwrap(),
            Applied::Applied
        );
        // A push into a session the standby never opened fails replay. The
        // watermark must NOT advance — before the fix it did, and every
        // later catch-up re-ship skipped the record forever.
        assert!(set
            .apply(&cfg, None, 0, &frame(2, &push("ghost", "k")))
            .is_err());
        assert_eq!(set.errors, 1);
        assert_eq!(set.watermarks[&0], 1);
        // The re-ship retries LSN 2 (here: the record that makes it valid)
        // and the stream continues.
        assert_eq!(
            set.apply(&cfg, None, 0, &frame(2, &open("ghost"))).unwrap(),
            Applied::Applied
        );
        assert_eq!(
            set.apply(&cfg, None, 0, &frame(3, &push("ghost", "k")))
                .unwrap(),
            Applied::Applied
        );
        assert_eq!(set.watermarks[&0], 3);
    }

    #[test]
    fn lsn_gaps_are_refused_until_the_missing_record_arrives() {
        let mut set = StandbySet::default();
        let cfg = SedexConfig::default();
        // First contact may start anywhere: catch-up streams begin at the
        // oldest *retained* record, not necessarily LSN 1.
        assert_eq!(
            set.apply(&cfg, None, 0, &frame(5, &open("s"))).unwrap(),
            Applied::Applied
        );
        // LSN 7 with 6 missing: refused, watermark pinned at 5.
        assert_eq!(
            set.apply(&cfg, None, 0, &frame(7, &push("s", "k2")))
                .unwrap(),
            Applied::Gap {
                expected: 6,
                got: 7
            }
        );
        assert_eq!(set.watermarks[&0], 5);
        // The re-ship delivers 6 then 7 in order and the stream heals.
        assert_eq!(
            set.apply(&cfg, None, 0, &frame(6, &push("s", "k1")))
                .unwrap(),
            Applied::Applied
        );
        assert_eq!(
            set.apply(&cfg, None, 0, &frame(7, &push("s", "k2")))
                .unwrap(),
            Applied::Applied
        );
        assert_eq!(set.records, 3);
        assert_eq!(set.sessions["s"].tuples_in, 2);
    }

    #[test]
    fn watermarks_survive_origin_restarts_without_regressing() {
        let mut set = StandbySet::default();
        let cfg = SedexConfig::default();
        for (lsn, rec) in [(1, open("s")), (2, push("s", "k1")), (3, push("s", "k2"))] {
            assert_eq!(
                set.apply(&cfg, None, 0, &frame(lsn, &rec)).unwrap(),
                Applied::Applied
            );
        }
        // A restarted origin re-reads its WAL from disk and re-ships the
        // whole retained log. Every frame is a duplicate; the watermark
        // must not move backwards and nothing double-applies.
        for (lsn, rec) in [(1, open("s")), (2, push("s", "k1")), (3, push("s", "k2"))] {
            assert_eq!(
                set.apply(&cfg, None, 0, &frame(lsn, &rec)).unwrap(),
                Applied::Duplicate
            );
        }
        assert_eq!(set.watermarks[&0], 3);
        assert_eq!(set.records, 3);
        assert_eq!(set.sessions["s"].tuples_in, 2);
        // Post-restart appends continue the stream seamlessly.
        assert_eq!(
            set.apply(&cfg, None, 0, &frame(4, &push("s", "k3")))
                .unwrap(),
            Applied::Applied
        );
        assert_eq!(set.sessions["s"].tuples_in, 3);
    }
}
