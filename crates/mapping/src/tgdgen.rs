//! Clio-style mapping generation.
//!
//! Following the Clio algorithm (Popa et al. / Miller et al.), mappings are
//! produced by pairing **tableaux** — relations expanded with their
//! FK-reachable context ("logical relations") — of the source and target
//! schemas through the property correspondences:
//!
//! 1. For each relation, chase its foreign keys to build a tableau: a
//!    conjunction of atoms sharing join variables.
//! 2. For every (source tableau, target tableau) pair, collect the
//!    correspondences from source columns to target columns.
//! 3. If at least one correspondence connects the pair, emit the s-t tgd
//!    whose premise is the source tableau, whose conclusion is the target
//!    tableau, with corresponding positions sharing variables and all other
//!    target positions existentially quantified.
//!
//! On the generalization example of Section 1.2 this yields exactly the two
//! ambiguous mappings the paper shows:
//! `Inst(n,s,e,c) ∧ Course(c,x) → Grad(n,s,c)` and
//! `Inst(n,s,e,c) ∧ Course(c,x) → Prof(n,e,c)` — every source tuple fires
//! both, which is the entity-fragmentation behaviour SEDEX fixes.

use std::collections::HashMap;

use sedex_storage::Schema;

use crate::correspondence::Correspondences;
use crate::dependency::{Atom, Term, Tgd, VarId};

/// A tableau: FK-closed conjunction of atoms over one schema, with a map
/// from `(atom index, column index)` to its variable.
#[derive(Debug, Clone)]
pub struct Tableau {
    /// The relation the tableau was rooted at.
    pub root: String,
    /// The atoms, root first.
    pub atoms: Vec<Atom>,
    /// Highest variable id used plus one.
    pub var_count: usize,
}

/// Build the tableau of `relation` by chasing its foreign keys (depth-capped
/// and cycle-safe, mirroring relation-tree construction).
pub fn tableau(schema: &Schema, relation: &str, max_depth: usize) -> Tableau {
    let mut atoms = Vec::new();
    let mut next_var: VarId = 0;
    let mut path = vec![relation.to_owned()];
    expand(
        schema,
        relation,
        &mut atoms,
        &mut next_var,
        &mut path,
        max_depth,
        None,
    );
    Tableau {
        root: relation.to_owned(),
        atoms,
        var_count: next_var,
    }
}

/// Recursively add the atom for `relation`, reusing `bound` variables for
/// the referenced key columns, then chase its FKs.
fn expand(
    schema: &Schema,
    relation: &str,
    atoms: &mut Vec<Atom>,
    next_var: &mut VarId,
    path: &mut Vec<String>,
    depth_left: usize,
    bound: Option<(&[usize], &[VarId])>,
) {
    let Some(rel) = schema.relation(relation) else {
        return;
    };
    let mut terms: Vec<Term> = Vec::with_capacity(rel.arity());
    let mut vars: Vec<VarId> = Vec::with_capacity(rel.arity());
    for i in 0..rel.arity() {
        let v = match bound {
            Some((cols, bound_vars)) => match cols.iter().position(|&c| c == i) {
                Some(pos) => bound_vars[pos],
                None => {
                    let v = *next_var;
                    *next_var += 1;
                    v
                }
            },
            None => {
                let v = *next_var;
                *next_var += 1;
                v
            }
        };
        vars.push(v);
        terms.push(Term::Var(v));
    }
    atoms.push(Atom::new(rel.name.clone(), terms));
    if depth_left == 0 {
        return;
    }
    let fks = rel.foreign_keys.clone();
    for fk in &fks {
        if path.iter().any(|r| r == &fk.ref_relation) {
            continue;
        }
        let fk_vars: Vec<VarId> = fk.columns.iter().map(|&c| vars[c]).collect();
        path.push(fk.ref_relation.clone());
        expand(
            schema,
            &fk.ref_relation,
            atoms,
            next_var,
            path,
            depth_left - 1,
            Some((&fk.ref_columns, &fk_vars)),
        );
        path.pop();
    }
}

/// Generate the Clio-style s-t tgds for a data-exchange scenario.
pub fn generate_tgds(source: &Schema, target: &Schema, sigma: &Correspondences) -> Vec<Tgd> {
    const MAX_DEPTH: usize = 8;
    let src_tableaux: Vec<Tableau> = source
        .relations()
        .iter()
        .map(|r| tableau(source, &r.name, MAX_DEPTH))
        .collect();
    let tgt_tableaux: Vec<Tableau> = target
        .relations()
        .iter()
        .map(|r| tableau(target, &r.name, MAX_DEPTH))
        .collect();

    let mut tgds = Vec::new();
    for st in &src_tableaux {
        for tt in &tgt_tableaux {
            if let Some(tgd) = pair_tableaux(source, target, sigma, st, tt) {
                tgds.push(tgd);
            }
        }
    }
    dedup_subsumed(tgds)
}

/// Pair one source tableau with one target tableau through Σ; `None` when no
/// correspondence connects them.
fn pair_tableaux(
    source: &Schema,
    target: &Schema,
    sigma: &Correspondences,
    st: &Tableau,
    tt: &Tableau,
) -> Option<Tgd> {
    // (target atom idx, column idx) → source variable.
    let mut matched: HashMap<(usize, usize), VarId> = HashMap::new();
    for s_atom in &st.atoms {
        let s_rel = source.relation(&s_atom.relation)?;
        for (s_col, s_term) in s_atom.terms.iter().enumerate() {
            let Term::Var(s_var) = s_term else { continue };
            let s_col_name = &s_rel.columns[s_col].name;
            for (t_idx, t_atom) in tt.atoms.iter().enumerate() {
                let Some(t_rel) = target.relation(&t_atom.relation) else {
                    continue;
                };
                let Some(t_col_name) = sigma.target_in_relation(
                    Some(&s_atom.relation),
                    s_col_name,
                    &t_atom.relation,
                    |c| t_rel.column_index(c).is_some(),
                ) else {
                    continue;
                };
                if let Some(t_col) = t_rel.column_index(t_col_name) {
                    matched.entry((t_idx, t_col)).or_insert(*s_var);
                }
            }
        }
    }
    if matched.is_empty() {
        return None;
    }
    // Does the root target atom receive anything? A tgd that only feeds
    // context atoms duplicates what the context relation's own tableau
    // produces, so require at least one match into atom 0.
    if !matched.keys().any(|&(t_idx, _)| t_idx == 0) {
        return None;
    }
    // Renumber target variables above the source variables; positions with a
    // correspondence reuse the source variable, everything else becomes an
    // existential.
    let offset = st.var_count;
    let rhs: Vec<Atom> = tt
        .atoms
        .iter()
        .enumerate()
        .map(|(t_idx, a)| {
            let terms = a
                .terms
                .iter()
                .enumerate()
                .map(|(t_col, term)| match term {
                    Term::Var(v) => match matched.get(&(t_idx, t_col)) {
                        Some(&src_var) => Term::Var(src_var),
                        None => Term::Var(offset + v),
                    },
                    Term::Const(c) => Term::Const(c.clone()),
                })
                .collect();
            Atom::new(a.relation.clone(), terms)
        })
        .collect();
    Some(Tgd::new(st.atoms.clone(), rhs))
}

/// Drop tgds whose premise and conclusion are both sub-multisets of another
/// tgd's (textbook subsumption pruning; keeps the mapping set small without
/// changing the chase result).
fn dedup_subsumed(tgds: Vec<Tgd>) -> Vec<Tgd> {
    let mut keep: Vec<Tgd> = Vec::with_capacity(tgds.len());
    for t in tgds {
        if !keep.contains(&t) {
            keep.push(t);
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::RelationSchema;

    /// The generalization-ambiguity scenario of Section 1.2.
    fn ambiguity_scenario() -> (Schema, Schema, Correspondences) {
        let inst = RelationSchema::with_any_columns(
            "Inst",
            &["name", "studentID", "employeeID", "courseId"],
        )
        .foreign_key(&["courseId"], "Course")
        .unwrap();
        let course = RelationSchema::with_any_columns("Course", &["courseId", "credit"])
            .primary_key(&["courseId"])
            .unwrap();
        let source = Schema::from_relations(vec![inst, course]).unwrap();

        let grad = RelationSchema::with_any_columns("Grad", &["name", "stId", "course"])
            .primary_key(&["name"])
            .unwrap();
        let prof = RelationSchema::with_any_columns("Prof", &["name", "empId", "course"])
            .primary_key(&["name"])
            .unwrap();
        let target = Schema::from_relations(vec![grad, prof]).unwrap();

        let mut sigma = Correspondences::new();
        sigma.add_qualified("Inst", "name", "Grad", "name");
        sigma.add_qualified("Inst", "name", "Prof", "name");
        sigma.add_qualified("Inst", "studentID", "Grad", "stId");
        sigma.add_qualified("Inst", "employeeID", "Prof", "empId");
        sigma.add_qualified("Inst", "courseId", "Grad", "course");
        sigma.add_qualified("Inst", "courseId", "Prof", "course");
        (source, target, sigma)
    }

    #[test]
    fn tableau_chases_foreign_keys() {
        let (source, _, _) = ambiguity_scenario();
        let t = tableau(&source, "Inst", 8);
        assert_eq!(t.atoms.len(), 2);
        assert_eq!(t.atoms[0].relation, "Inst");
        assert_eq!(t.atoms[1].relation, "Course");
        // Join variable shared: Inst.courseId (position 3) = Course.courseId
        // (position 0).
        assert_eq!(t.atoms[0].terms[3], t.atoms[1].terms[0]);
    }

    #[test]
    fn section12_generates_both_ambiguous_mappings() {
        let (source, target, sigma) = ambiguity_scenario();
        let tgds = generate_tgds(&source, &target, &sigma);
        // Inst⋈Course → Grad and Inst⋈Course → Prof. The Course tableau has
        // no correspondences, so it generates nothing.
        assert_eq!(tgds.len(), 2, "{tgds:?}");
        let rhs_rels: Vec<&str> = tgds.iter().map(|t| t.rhs[0].relation.as_str()).collect();
        assert!(rhs_rels.contains(&"Grad"));
        assert!(rhs_rels.contains(&"Prof"));
        for t in &tgds {
            assert_eq!(t.lhs.len(), 2);
            // name and course flow from the source; exactly one of
            // stId/empId flows, the third target position is universal too
            // (no existential: all Grad/Prof columns are matched).
            assert!(t.existential_vars().is_empty());
        }
    }

    #[test]
    fn unmatched_target_columns_become_existentials() {
        let src =
            Schema::from_relations(vec![RelationSchema::with_any_columns("S", &["a"])]).unwrap();
        let tgt =
            Schema::from_relations(vec![RelationSchema::with_any_columns("T", &["x", "extra"])])
                .unwrap();
        let sigma = Correspondences::from_name_pairs([("a", "x")]);
        let tgds = generate_tgds(&src, &tgt, &sigma);
        assert_eq!(tgds.len(), 1);
        assert_eq!(tgds[0].existential_vars().len(), 1);
    }

    #[test]
    fn disconnected_pairs_generate_nothing() {
        let src =
            Schema::from_relations(vec![RelationSchema::with_any_columns("S", &["a"])]).unwrap();
        let tgt =
            Schema::from_relations(vec![RelationSchema::with_any_columns("T", &["x"])]).unwrap();
        let tgds = generate_tgds(&src, &tgt, &Correspondences::new());
        assert!(tgds.is_empty());
    }

    #[test]
    fn copy_primitive_generates_single_identity_tgd() {
        let src = Schema::from_relations(vec![RelationSchema::with_any_columns(
            "R",
            &["a", "b", "c"],
        )])
        .unwrap();
        let tgt = Schema::from_relations(vec![RelationSchema::with_any_columns(
            "Rc",
            &["a2", "b2", "c2"],
        )])
        .unwrap();
        let sigma = Correspondences::from_name_pairs([("a", "a2"), ("b", "b2"), ("c", "c2")]);
        let tgds = generate_tgds(&src, &tgt, &sigma);
        assert_eq!(tgds.len(), 1);
        let t = &tgds[0];
        assert_eq!(t.lhs.len(), 1);
        assert_eq!(t.rhs.len(), 1);
        assert!(t.existential_vars().is_empty());
        // Positional flow preserved.
        assert_eq!(t.lhs[0].terms, t.rhs[0].terms);
    }

    #[test]
    fn vertical_partitioning_shares_join_variable() {
        // R(a,b) → T1(a,k) ∧ ... in VP the target has an FK; the target
        // tableau T1⋈T2 gets both correspondences in one tgd.
        let src = Schema::from_relations(vec![RelationSchema::with_any_columns("R", &["a", "b"])])
            .unwrap();
        let t1 = RelationSchema::with_any_columns("T1", &["a2", "k"])
            .foreign_key(&["k"], "T2")
            .unwrap();
        let t2 = RelationSchema::with_any_columns("T2", &["k2", "b2"])
            .primary_key(&["k2"])
            .unwrap();
        let tgt = Schema::from_relations(vec![t1, t2]).unwrap();
        let sigma = Correspondences::from_name_pairs([("a", "a2"), ("b", "b2")]);
        let tgds = generate_tgds(&src, &tgt, &sigma);
        // T1's tableau = T1⋈T2 covers both correspondences; T2's own tableau
        // receives b only.
        assert!(!tgds.is_empty());
        let big = tgds.iter().find(|t| t.rhs.len() == 2).expect("joint tgd");
        // The surrogate key k (= k2) is an existential shared by both atoms.
        let ex = big.existential_vars();
        assert_eq!(ex.len(), 1);
    }
}
