//! # sedex-mapping
//!
//! The schema-mapping substrate SEDEX is evaluated against:
//!
//! * [`correspondence`] — property correspondences `Σ` (the solid lines of
//!   Fig. 2), hash-backed as required by Algorithm 1's complexity analysis;
//! * [`dependency`] — source-to-target tgds and target egds (primary-key
//!   constraints `Γ`);
//! * [`tgdgen`] — Clio-style mapping generation: FK-chased source/target
//!   tableaux paired through the correspondences, reproducing e.g. the two
//!   ambiguous `Inst → Grad / Prof` mappings of Section 1.2;
//! * [`mod@chase`] — the naive chase producing the *universal solution* with
//!   labeled nulls;
//! * [`egd`] — egd application (null unification to fixpoint);
//! * [`core`] — core-style minimisation by tuple subsumption;
//! * [`clio`] / [`mapmerge`] / [`spicy`] — the baseline drivers the paper
//!   discusses: Clio emits the universal solution, MapMerge correlates
//!   Clio's mappings to shrink it, ++Spicy additionally enforces egds and
//!   minimises towards the core.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chase;
pub mod clio;
pub mod core;
pub mod correspondence;
pub mod dependency;
pub mod egd;
pub mod mapmerge;
pub mod spicy;
pub mod tgdgen;

pub use chase::{chase, ChaseStats};
pub use clio::ClioEngine;
pub use correspondence::{Correspondence, Correspondences, PropertyRef};
pub use dependency::{Atom, Egd, Term, Tgd};
pub use mapmerge::MapMergeEngine;
pub use spicy::SpicyEngine;
pub use tgdgen::generate_tgds;
