//! Property correspondences `Σ` between source and target schemas.
//!
//! A correspondence `p1 ↔ p2` states that source property `p1` and target
//! property `p2` hold the same kind of information (the solid lines of
//! Fig. 2). They are "generally produced automatically by schema matching
//! techniques"; here the scenario generators emit them alongside the
//! schemas. Lookups are hash-backed, which is what makes the number of
//! correspondences irrelevant to Algorithm 1's time complexity.

use std::collections::HashMap;
use std::fmt;

/// One side of a correspondence: a property, optionally qualified by its
/// relation. Unqualified correspondences (`sname ↔ student`) apply to any
/// relation carrying that property.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PropertyRef {
    /// Owning relation; `None` means "any relation with this column".
    pub relation: Option<String>,
    /// Column (property) name.
    pub column: String,
}

impl PropertyRef {
    /// An unqualified property reference.
    pub fn unqualified(column: impl Into<String>) -> Self {
        PropertyRef {
            relation: None,
            column: column.into(),
        }
    }

    /// A relation-qualified property reference.
    pub fn qualified(relation: impl Into<String>, column: impl Into<String>) -> Self {
        PropertyRef {
            relation: Some(relation.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for PropertyRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.relation {
            Some(r) => write!(f, "{r}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A directed correspondence from a source property to a target property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Correspondence {
    /// Source side.
    pub source: PropertyRef,
    /// Target side.
    pub target: PropertyRef,
}

impl fmt::Display for Correspondence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ↔ {}", self.source, self.target)
    }
}

/// The set `Σ` of property correspondences, with hash lookups keyed on the
/// source column name.
#[derive(Debug, Clone, Default)]
pub struct Correspondences {
    list: Vec<Correspondence>,
    /// source column name → indexes into `list`.
    by_source: HashMap<String, Vec<usize>>,
}

impl Correspondences {
    /// An empty set.
    pub fn new() -> Self {
        Correspondences::default()
    }

    /// Add a correspondence.
    pub fn add(&mut self, c: Correspondence) {
        self.by_source
            .entry(c.source.column.clone())
            .or_default()
            .push(self.list.len());
        self.list.push(c);
    }

    /// Add an unqualified name correspondence `source_col ↔ target_col`.
    pub fn add_names(&mut self, source_col: impl Into<String>, target_col: impl Into<String>) {
        self.add(Correspondence {
            source: PropertyRef::unqualified(source_col),
            target: PropertyRef::unqualified(target_col),
        });
    }

    /// Add a fully qualified correspondence.
    pub fn add_qualified(
        &mut self,
        src_rel: impl Into<String>,
        src_col: impl Into<String>,
        tgt_rel: impl Into<String>,
        tgt_col: impl Into<String>,
    ) {
        self.add(Correspondence {
            source: PropertyRef::qualified(src_rel, src_col),
            target: PropertyRef::qualified(tgt_rel, tgt_col),
        });
    }

    /// Build from `(source, target)` name pairs.
    pub fn from_name_pairs<S: Into<String>, T: Into<String>>(
        pairs: impl IntoIterator<Item = (S, T)>,
    ) -> Self {
        let mut c = Correspondences::new();
        for (s, t) in pairs {
            c.add_names(s, t);
        }
        c
    }

    /// All correspondences.
    pub fn iter(&self) -> impl Iterator<Item = &Correspondence> {
        self.list.iter()
    }

    /// Number of correspondences.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// All correspondences whose source column is `source_col`, owned by
    /// `source_rel` when qualified.
    pub fn matches<'a>(
        &'a self,
        source_rel: Option<&'a str>,
        source_col: &str,
    ) -> impl Iterator<Item = &'a Correspondence> + 'a {
        self.by_source
            .get(source_col)
            .into_iter()
            .flatten()
            .map(move |&i| &self.list[i])
            .filter(move |c| match (&c.source.relation, source_rel) {
                (Some(r), Some(s)) => r == s,
                (Some(_), None) => true,
                (None, _) => true,
            })
    }

    /// The *target label* a source property maps to for tree comparison:
    /// prefers a correspondence qualified with `source_rel`, then an
    /// unqualified one. Returns `None` when no correspondence exists — the
    /// property then keeps a source-only label and cannot match any target
    /// gram.
    pub fn target_label<'a>(
        &'a self,
        source_rel: Option<&'a str>,
        source_col: &str,
    ) -> Option<&'a str> {
        let mut unqualified = None;
        for c in self.matches(source_rel, source_col) {
            match (&c.source.relation, source_rel) {
                (Some(r), Some(s)) if r == s => return Some(&c.target.column),
                (None, _) if unqualified.is_none() => unqualified = Some(c.target.column.as_str()),
                _ => {}
            }
        }
        unqualified
    }

    /// The target property (relation-scoped when qualified) a qualified
    /// source property maps to *within* the given target relation, if any.
    pub fn target_in_relation<'a>(
        &'a self,
        source_rel: Option<&'a str>,
        source_col: &str,
        target_rel: &str,
        target_has_col: impl Fn(&str) -> bool,
    ) -> Option<&'a str> {
        self.matches(source_rel, source_col)
            .filter(|c| match &c.target.relation {
                Some(r) => r == target_rel,
                None => target_has_col(&c.target.column),
            })
            .map(|c| c.target.column.as_str())
            .next()
    }
}

impl FromIterator<(String, String)> for Correspondences {
    fn from_iter<I: IntoIterator<Item = (String, String)>>(iter: I) -> Self {
        Correspondences::from_name_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_sigma() -> Correspondences {
        // The Σ that reproduces the worked distances of Section 4.3.
        Correspondences::from_name_pairs([
            ("sname", "student"),
            ("course", "cname"),
            ("regdate", "date"),
            ("program", "prog"),
            ("dep", "dpt"),
        ])
    }

    #[test]
    fn unqualified_lookup() {
        let s = paper_sigma();
        assert_eq!(s.target_label(None, "sname"), Some("student"));
        assert_eq!(
            s.target_label(Some("Registration"), "sname"),
            Some("student")
        );
        assert_eq!(s.target_label(None, "supervisor"), None);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn qualified_beats_unqualified() {
        let mut s = paper_sigma();
        s.add_qualified("Registration", "sname", "Reg", "student_id");
        assert_eq!(
            s.target_label(Some("Registration"), "sname"),
            Some("student_id")
        );
        // Other relations still use the unqualified match.
        assert_eq!(s.target_label(Some("Student"), "sname"), Some("student"));
    }

    #[test]
    fn target_in_relation_scopes_by_relation() {
        let mut s = Correspondences::new();
        s.add_qualified("Inst", "empId", "Prof", "empId");
        s.add_qualified("Inst", "stId", "Grad", "stId");
        let has = |_: &str| true;
        assert_eq!(
            s.target_in_relation(Some("Inst"), "empId", "Prof", has),
            Some("empId")
        );
        assert_eq!(
            s.target_in_relation(Some("Inst"), "empId", "Grad", has),
            None
        );
    }

    #[test]
    fn unqualified_target_checks_column_presence() {
        let s = paper_sigma();
        assert_eq!(
            s.target_in_relation(None, "sname", "Stu", |c| c == "student"),
            Some("student")
        );
        assert_eq!(
            s.target_in_relation(None, "sname", "Course", |c| c == "credit"),
            None
        );
    }

    #[test]
    fn display_forms() {
        let c = Correspondence {
            source: PropertyRef::qualified("R", "a"),
            target: PropertyRef::unqualified("b"),
        };
        assert_eq!(c.to_string(), "R.a ↔ b");
    }
}
