//! Source-to-target tgds and target egds.
//!
//! A source-to-target **tgd** (tuple-generating dependency) has the form
//! `∀x̄: φ(x̄) → ∃ȳ: ψ(x̄, ȳ)` with `φ` a conjunction of source atoms and
//! `ψ` of target atoms — the mapping language of Clio and ++Spicy. A target
//! **egd** (equality-generating dependency) has the form
//! `∀x̄: φ(x̄) → x_i = x_j`; SEDEX and ++Spicy use egds to encode target
//! primary-key constraints (`Γ`).

use std::collections::HashSet;
use std::fmt;

use sedex_storage::{RelationSchema, Value};

/// A variable identifier within one dependency.
pub type VarId = usize;

/// A term of an atom: a universally/existentially quantified variable or a
/// constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable.
    Var(VarId),
    /// A constant value.
    Const(Value),
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "x{v}"),
            Term::Const(c) => write!(f, "'{c}'"),
        }
    }
}

/// A relational atom `R(t1, …, tk)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Terms, one per column.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// The variables appearing in this atom.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.iter().filter_map(|t| match t {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        })
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A source-to-target tuple-generating dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tgd {
    /// Conjunction of source atoms (the premise `φ`).
    pub lhs: Vec<Atom>,
    /// Conjunction of target atoms (the conclusion `ψ`).
    pub rhs: Vec<Atom>,
}

impl Tgd {
    /// Build a tgd.
    pub fn new(lhs: Vec<Atom>, rhs: Vec<Atom>) -> Self {
        Tgd { lhs, rhs }
    }

    /// Variables universally quantified (appearing in the premise).
    pub fn universal_vars(&self) -> HashSet<VarId> {
        self.lhs.iter().flat_map(Atom::vars).collect()
    }

    /// Variables existentially quantified (in the conclusion only) — these
    /// become labeled nulls when the tgd fires.
    pub fn existential_vars(&self) -> HashSet<VarId> {
        let univ = self.universal_vars();
        self.rhs
            .iter()
            .flat_map(Atom::vars)
            .filter(|v| !univ.contains(v))
            .collect()
    }
}

impl fmt::Display for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " → ")?;
        for (i, a) in self.rhs.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// A target equality-generating dependency.
///
/// The only egds the paper's setting needs are **key egds**: two tuples of
/// the same relation agreeing on the key columns must agree everywhere.
/// They are represented directly by the key column set, which lets
/// [`crate::egd`] apply them by hashing on the key projection instead of
/// enumerating homomorphisms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Egd {
    /// The constrained target relation.
    pub relation: String,
    /// Key column indexes.
    pub key: Vec<usize>,
}

impl Egd {
    /// The key egd of a relation schema (its primary key), if it has one.
    pub fn key_egd(rel: &RelationSchema) -> Option<Egd> {
        if rel.primary_key.is_empty() {
            None
        } else {
            Some(Egd {
                relation: rel.name.clone(),
                key: rel.primary_key.clone(),
            })
        }
    }

    /// Key egds for every keyed relation of a schema.
    pub fn key_egds(schema: &sedex_storage::Schema) -> Vec<Egd> {
        schema.relations().iter().filter_map(Egd::key_egd).collect()
    }
}

impl fmt::Display for Egd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: key({})",
            self.relation,
            self.key
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst_grad_tgd() -> Tgd {
        // ∀n,s,e,c: Inst(n,s,e,c) ∧ Course(c,x) → ∃: Grad(n,s,c)
        Tgd::new(
            vec![
                Atom::new(
                    "Inst",
                    vec![Term::Var(0), Term::Var(1), Term::Var(2), Term::Var(3)],
                ),
                Atom::new("Course", vec![Term::Var(3), Term::Var(4)]),
            ],
            vec![Atom::new(
                "Grad",
                vec![Term::Var(0), Term::Var(1), Term::Var(3)],
            )],
        )
    }

    #[test]
    fn variable_classification() {
        let t = inst_grad_tgd();
        assert_eq!(t.universal_vars().len(), 5);
        assert!(t.existential_vars().is_empty());

        // Add an existential to the rhs.
        let mut t2 = t.clone();
        t2.rhs[0].terms.push(Term::Var(99));
        assert_eq!(t2.existential_vars(), HashSet::from([99]));
    }

    #[test]
    fn display_forms() {
        let t = inst_grad_tgd();
        let s = t.to_string();
        assert!(s.contains("Inst(x0,x1,x2,x3)"));
        assert!(s.contains("∧ Course(x3,x4)"));
        assert!(s.contains("→ Grad(x0,x1,x3)"));
    }

    #[test]
    fn key_egd_from_schema() {
        let r = RelationSchema::with_any_columns("R", &["id", "a"])
            .primary_key(&["id"])
            .unwrap();
        let e = Egd::key_egd(&r).unwrap();
        assert_eq!(e.relation, "R");
        assert_eq!(e.key, vec![0]);
        let keyless = RelationSchema::with_any_columns("S", &["x"]);
        assert!(Egd::key_egd(&keyless).is_none());
    }

    #[test]
    fn atom_vars_skip_constants() {
        let a = Atom::new(
            "R",
            vec![Term::Var(1), Term::Const(Value::text("c")), Term::Var(2)],
        );
        let vs: Vec<_> = a.vars().collect();
        assert_eq!(vs, vec![1, 2]);
    }
}
