//! The MapMerge baseline: correlating independent Clio mappings.
//!
//! MapMerge (Alexe, Hernández, Popa & Tan, VLDB J. 2012) addresses the
//! "existing uncorrelated mappings that may result in duplication of data
//! as well as loss of associations" (Section 1.2 of the SEDEX paper): Clio
//! treats each mapping as an independent expression, so two mappings firing
//! for the same source data invent *different* existential values for the
//! same target entity. MapMerge correlates them, "reducing the size of the
//! target instance as well as increasing the similarity between source and
//! target instances" — but, unlike ++Spicy, it uses no egds and therefore
//! still does not reach the core.
//!
//! The correlation implemented here captures MapMerge's behavioural core:
//!
//! 1. Mappings with the same premise (up to variable renaming) are merged
//!    into one mapping whose conclusion is the union of the originals'.
//! 2. Within a merged conclusion, atoms of the same relation that agree on
//!    every universal position are *unified*: their existentials are
//!    identified, so one firing produces one tuple instead of several
//!    differently-nulled copies.
//! 3. Conclusions of mappings whose premise is *subsumed* by a wider
//!    premise (its atoms are a subset) are dropped when the wider mapping
//!    already produces the same target atoms — Clio's redundant
//!    sub-mappings.

use std::collections::HashMap;

use sedex_storage::{Instance, Schema, StorageError};

use crate::chase::{chase, NullFactory};
use crate::clio::BaselineReport;
use crate::correspondence::Correspondences;
use crate::dependency::{Atom, Term, Tgd, VarId};
use crate::tgdgen::generate_tgds;

/// The MapMerge engine: Clio mappings, correlated.
#[derive(Debug, Clone)]
pub struct MapMergeEngine {
    tgds: Vec<Tgd>,
    gen_time: std::time::Duration,
}

impl MapMergeEngine {
    /// Generate Clio mappings for the scenario and correlate them.
    pub fn new(source: &Schema, target: &Schema, sigma: &Correspondences) -> Self {
        let start = std::time::Instant::now();
        let raw = generate_tgds(source, target, sigma);
        let tgds = correlate(raw);
        MapMergeEngine {
            tgds,
            gen_time: start.elapsed(),
        }
    }

    /// The correlated mappings.
    pub fn tgds(&self) -> &[Tgd] {
        &self.tgds
    }

    /// Run the exchange (chase with the correlated mappings; no egds).
    pub fn run(
        &self,
        source: &Instance,
        target_schema: &Schema,
    ) -> Result<(Instance, BaselineReport), StorageError> {
        let mut target = Instance::new(target_schema.clone());
        let mut nulls = NullFactory::new();
        let start = std::time::Instant::now();
        let chase_stats = chase(source, &mut target, &self.tgds, &mut nulls)?;
        let exec_time = start.elapsed();
        let stats = target.stats();
        Ok((
            target,
            BaselineReport {
                gen_time: self.gen_time,
                exec_time,
                tgd_count: self.tgds.len(),
                chase: chase_stats,
                stats,
                egd_merged: 0,
                egd_violations: 0,
                core_removed: 0,
            },
        ))
    }
}

/// Correlate a set of tgds (steps 1–3 of the module docs).
pub fn correlate(tgds: Vec<Tgd>) -> Vec<Tgd> {
    // Step 1: group by canonical premise.
    let mut groups: HashMap<String, Vec<Tgd>> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for t in tgds {
        let key = canonical_premise(&t);
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(t);
    }

    let mut merged: Vec<Tgd> = Vec::new();
    for key in &order {
        let group = groups.remove(key).expect("group exists");
        merged.push(merge_group(group));
    }

    // Step 3: drop conclusions already produced by a mapping with a wider
    // premise. Premise A subsumes premise B when B's relation multiset is a
    // subset of A's and B's rhs relations are all covered by A's rhs.
    let mut keep = vec![true; merged.len()];
    for i in 0..merged.len() {
        for j in 0..merged.len() {
            if i == j || !keep[i] || !keep[j] {
                continue;
            }
            if premise_covers(&merged[i], &merged[j]) && rhs_covers(&merged[i], &merged[j]) {
                keep[j] = false;
            }
        }
    }
    merged
        .into_iter()
        .zip(keep)
        .filter_map(|(t, k)| k.then_some(t))
        .collect()
}

/// Canonical string of a premise with variables renumbered in first-use
/// order — mappings differing only in variable names group together.
fn canonical_premise(t: &Tgd) -> String {
    let mut renaming: HashMap<VarId, usize> = HashMap::new();
    let mut out = String::new();
    let mut atoms: Vec<&Atom> = t.lhs.iter().collect();
    atoms.sort_by(|a, b| {
        a.relation
            .cmp(&b.relation)
            .then_with(|| a.terms.len().cmp(&b.terms.len()))
    });
    for a in atoms {
        out.push_str(&a.relation);
        out.push('(');
        for term in &a.terms {
            match term {
                Term::Var(v) => {
                    let next = renaming.len();
                    let id = *renaming.entry(*v).or_insert(next);
                    out.push_str(&format!("x{id},"));
                }
                Term::Const(c) => out.push_str(&format!("'{c}',")),
            }
        }
        out.push(')');
    }
    out
}

/// Merge a group of same-premise tgds into one correlated tgd.
fn merge_group(mut group: Vec<Tgd>) -> Tgd {
    if group.len() == 1 {
        return group.pop().expect("non-empty");
    }
    // All premises are equal up to renaming; rename every member onto the
    // first one's variables.
    let base = group[0].clone();
    let mut rhs: Vec<Atom> = base.rhs.clone();
    let mut next_var: VarId = 1 + max_var(&base);
    for other in group.into_iter().skip(1) {
        let renaming = premise_renaming(&other, &base);
        for atom in other.rhs {
            let terms = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => match renaming.get(v) {
                        Some(&b) => Term::Var(b),
                        None => Term::Var(*v + next_var), // existential: shift
                    },
                    Term::Const(c) => Term::Const(c.clone()),
                })
                .collect();
            rhs.push(Atom::new(atom.relation, terms));
        }
        next_var += 1000; // generous gap per member keeps shifts disjoint
    }
    // Step 2: unify rhs atoms of the same relation that agree on every
    // universal position.
    let universal = Tgd::new(base.lhs.clone(), rhs.clone()).universal_vars();
    let mut unified: Vec<Atom> = Vec::new();
    let mut subst: HashMap<VarId, VarId> = HashMap::new();
    'atoms: for atom in rhs {
        let atom = apply_subst(&atom, &subst);
        for existing in &unified {
            if existing.relation != atom.relation || existing.terms.len() != atom.terms.len() {
                continue;
            }
            // Agree on universal/constant positions?
            let mut candidate: HashMap<VarId, VarId> = HashMap::new();
            let mut agree = true;
            for (a, b) in existing.terms.iter().zip(&atom.terms) {
                match (a, b) {
                    (Term::Var(x), Term::Var(y)) if x == y => {}
                    (Term::Var(x), Term::Var(y))
                        if !universal.contains(x) && !universal.contains(y) =>
                    {
                        candidate.insert(*y, *x);
                    }
                    (Term::Const(c1), Term::Const(c2)) if c1 == c2 => {}
                    _ => {
                        agree = false;
                        break;
                    }
                }
            }
            if agree {
                subst.extend(candidate);
                continue 'atoms; // atom unified away
            }
        }
        unified.push(atom);
    }
    // Re-apply accumulated substitutions so later unifications propagate.
    let final_rhs: Vec<Atom> = unified.iter().map(|a| apply_subst(a, &subst)).collect();
    Tgd::new(base.lhs, final_rhs)
}

fn max_var(t: &Tgd) -> VarId {
    t.lhs
        .iter()
        .chain(&t.rhs)
        .flat_map(Atom::vars)
        .max()
        .unwrap_or(0)
}

/// Variable renaming mapping `other`'s premise onto `base`'s (premises are
/// equal up to renaming by construction of the groups).
fn premise_renaming(other: &Tgd, base: &Tgd) -> HashMap<VarId, VarId> {
    let mut sorted_other: Vec<&Atom> = other.lhs.iter().collect();
    let mut sorted_base: Vec<&Atom> = base.lhs.iter().collect();
    let key = |a: &&Atom| (a.relation.clone(), a.terms.len());
    sorted_other.sort_by_key(key);
    sorted_base.sort_by_key(key);
    let mut renaming = HashMap::new();
    for (o, b) in sorted_other.iter().zip(&sorted_base) {
        for (to, tb) in o.terms.iter().zip(&b.terms) {
            if let (Term::Var(x), Term::Var(y)) = (to, tb) {
                renaming.insert(*x, *y);
            }
        }
    }
    renaming
}

fn apply_subst(atom: &Atom, subst: &HashMap<VarId, VarId>) -> Atom {
    let terms = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Var(v) => {
                let mut cur = *v;
                // Chase the substitution chain (bounded by map size).
                for _ in 0..subst.len() {
                    match subst.get(&cur) {
                        Some(&n) if n != cur => cur = n,
                        _ => break,
                    }
                }
                Term::Var(cur)
            }
            Term::Const(c) => Term::Const(c.clone()),
        })
        .collect();
    Atom::new(atom.relation.clone(), terms)
}

/// `a`'s premise relation multiset contains `b`'s.
fn premise_covers(a: &Tgd, b: &Tgd) -> bool {
    if a.lhs.len() <= b.lhs.len() {
        return false;
    }
    let mut counts: HashMap<&str, isize> = HashMap::new();
    for atom in &a.lhs {
        *counts.entry(atom.relation.as_str()).or_insert(0) += 1;
    }
    for atom in &b.lhs {
        let c = counts.entry(atom.relation.as_str()).or_insert(0);
        *c -= 1;
        if *c < 0 {
            return false;
        }
    }
    true
}

/// `a`'s conclusion relation multiset contains `b`'s.
fn rhs_covers(a: &Tgd, b: &Tgd) -> bool {
    let mut counts: HashMap<&str, isize> = HashMap::new();
    for atom in &a.rhs {
        *counts.entry(atom.relation.as_str()).or_insert(0) += 1;
    }
    for atom in &b.rhs {
        let c = counts.entry(atom.relation.as_str()).or_insert(0);
        *c -= 1;
        if *c < 0 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clio::ClioEngine;
    use crate::spicy::SpicyEngine;
    use sedex_storage::{ConflictPolicy, RelationSchema, Value};

    /// Two uncorrelated mappings from the same premise inventing separate
    /// existentials: S(a) → T(a, E1) and S(a) → T(a, E2) ∧ U(E2).
    #[test]
    fn same_premise_mappings_merge_and_unify() {
        let t1 = Tgd::new(
            vec![Atom::new("S", vec![Term::Var(0)])],
            vec![Atom::new("T", vec![Term::Var(0), Term::Var(1)])],
        );
        let t2 = Tgd::new(
            vec![Atom::new("S", vec![Term::Var(0)])],
            vec![
                Atom::new("T", vec![Term::Var(0), Term::Var(5)]),
                Atom::new("U", vec![Term::Var(5)]),
            ],
        );
        let merged = correlate(vec![t1, t2]);
        assert_eq!(merged.len(), 1);
        let m = &merged[0];
        // The two T atoms unified: conclusion is T(a, E) ∧ U(E) with ONE
        // shared existential.
        assert_eq!(m.rhs.len(), 2);
        assert_eq!(m.existential_vars().len(), 1);
        let t_atom = m.rhs.iter().find(|a| a.relation == "T").unwrap();
        let u_atom = m.rhs.iter().find(|a| a.relation == "U").unwrap();
        assert_eq!(t_atom.terms[1], u_atom.terms[0]);
    }

    #[test]
    fn different_premises_stay_separate() {
        let t1 = Tgd::new(
            vec![Atom::new("S", vec![Term::Var(0)])],
            vec![Atom::new("T", vec![Term::Var(0)])],
        );
        let t2 = Tgd::new(
            vec![Atom::new("R", vec![Term::Var(0)])],
            vec![Atom::new("U", vec![Term::Var(0)])],
        );
        assert_eq!(correlate(vec![t1, t2]).len(), 2);
    }

    /// The paper's quality ordering on a VP scenario:
    /// Clio ≥ MapMerge ≥ ++Spicy in target size.
    #[test]
    fn quality_between_clio_and_spicy() {
        let src = Schema::from_relations(vec![RelationSchema::with_any_columns(
            "R",
            &["k", "a", "b"],
        )
        .primary_key(&["k"])
        .unwrap()])
        .unwrap();
        let t2 = RelationSchema::with_any_columns("T2", &["k2", "b2"])
            .primary_key(&["k2"])
            .unwrap();
        let t1 = RelationSchema::with_any_columns("T1", &["k1", "a2"])
            .primary_key(&["k1"])
            .unwrap()
            .foreign_key(&["k1"], "T2")
            .unwrap();
        let tgt = Schema::from_relations(vec![t1, t2]).unwrap();
        let sigma =
            Correspondences::from_name_pairs([("k", "k1"), ("k", "k2"), ("a", "a2"), ("b", "b2")]);
        let mut inst = Instance::new(src.clone());
        for i in 0..40 {
            inst.insert(
                "R",
                sedex_storage::Tuple::of([format!("k{i}"), format!("a{i}"), format!("b{i}")]),
                ConflictPolicy::Reject,
            )
            .unwrap();
        }
        let (c_out, _) = ClioEngine::new(&src, &tgt, &sigma)
            .run(&inst, &tgt)
            .unwrap();
        let (m_out, _) = MapMergeEngine::new(&src, &tgt, &sigma)
            .run(&inst, &tgt)
            .unwrap();
        let (s_out, _) = SpicyEngine::new(&src, &tgt, &sigma)
            .run(&inst, &tgt)
            .unwrap();
        let (c, m, s) = (c_out.stats(), m_out.stats(), s_out.stats());
        assert!(c.atoms() >= m.atoms(), "clio {c:?} vs mapmerge {m:?}");
        assert!(m.atoms() >= s.atoms(), "mapmerge {m:?} vs spicy {s:?}");
        let _ = Value::Null;
    }

    #[test]
    fn correlate_is_idempotent() {
        let t1 = Tgd::new(
            vec![Atom::new("S", vec![Term::Var(0)])],
            vec![Atom::new("T", vec![Term::Var(0), Term::Var(1)])],
        );
        let once = correlate(vec![t1]);
        let twice = correlate(once.clone());
        assert_eq!(once, twice);
    }
}
