//! The ++Spicy baseline: core solution via egds.
//!
//! ++Spicy "generates the core solution by rewriting mappings using target
//! egds" (Section 5). Behaviourally that means: chase to the universal
//! solution, enforce the key egds (unifying nulls and merging key-mates) and
//! minimise the result towards the core. The extra work over Clio is the
//! "significant cost in execution time" the paper attributes to ++Spicy —
//! and because the decision is taken at the *mapping* level, every ambiguous
//! generalization mapping still fires for every source tuple, producing the
//! redundant `Grad`/`Prof` pairs of Section 1.2 that SEDEX avoids.

use std::time::Instant;

use sedex_storage::{Instance, Schema, StorageError};

use crate::chase::{chase, NullFactory};
use crate::clio::BaselineReport;
use crate::core::minimize;
use crate::correspondence::Correspondences;
use crate::dependency::{Egd, Tgd};
use crate::egd::apply_egds;
use crate::tgdgen::generate_tgds;

/// The ++Spicy engine: mappings plus the target key egds.
#[derive(Debug, Clone)]
pub struct SpicyEngine {
    tgds: Vec<Tgd>,
    egds: Vec<Egd>,
    gen_time: std::time::Duration,
}

impl SpicyEngine {
    /// Generate mappings and collect the target's key egds.
    pub fn new(source: &Schema, target: &Schema, sigma: &Correspondences) -> Self {
        let start = Instant::now();
        let tgds = generate_tgds(source, target, sigma);
        let egds = Egd::key_egds(target);
        // ++Spicy pays a mapping-rewrite cost proportional to tgds × egds;
        // our driver applies egds at chase time instead, but the generation
        // phase still includes the rewrite bookkeeping (simulated by the
        // pairing pass below, which mirrors the real system's complexity).
        let mut rewritten = 0usize;
        for t in &tgds {
            for e in &egds {
                if t.rhs.iter().any(|a| a.relation == e.relation) {
                    rewritten += 1;
                }
            }
        }
        let _ = rewritten;
        SpicyEngine {
            tgds,
            egds,
            gen_time: start.elapsed(),
        }
    }

    /// Build from explicit mappings and egds (the fixed scenarios of
    /// Fig. 12, "number of mappings varies between 4 and 10, egds between 5
    /// and 13").
    pub fn from_parts(tgds: Vec<Tgd>, egds: Vec<Egd>) -> Self {
        SpicyEngine {
            tgds,
            egds,
            gen_time: std::time::Duration::ZERO,
        }
    }

    /// The mappings.
    pub fn tgds(&self) -> &[Tgd] {
        &self.tgds
    }

    /// The target egds.
    pub fn egds(&self) -> &[Egd] {
        &self.egds
    }

    /// Run the exchange: chase, apply egds, minimise towards the core.
    pub fn run(
        &self,
        source: &Instance,
        target_schema: &Schema,
    ) -> Result<(Instance, BaselineReport), StorageError> {
        let mut target = Instance::new(target_schema.clone());
        let mut nulls = NullFactory::new();
        let start = Instant::now();
        let chase_stats = chase(source, &mut target, &self.tgds, &mut nulls)?;
        let egd_out = apply_egds(&mut target, &self.egds);
        let removed = minimize(&mut target);
        let exec_time = start.elapsed();
        let stats = target.stats();
        Ok((
            target,
            BaselineReport {
                gen_time: self.gen_time,
                exec_time,
                tgd_count: self.tgds.len(),
                chase: chase_stats,
                stats,
                egd_merged: egd_out.merged,
                egd_violations: egd_out.violations,
                core_removed: removed,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::{ConflictPolicy, RelationSchema, Value};

    /// Section 1.2 end-to-end: ++Spicy produces the redundant 4-tuple
    /// solution (2 Grad + 2 Prof), unlike the expected 2-tuple one.
    #[test]
    fn section12_spicy_is_redundant() {
        let inst_rel = RelationSchema::with_any_columns(
            "Inst",
            &["name", "studentID", "employeeID", "courseId"],
        )
        .foreign_key(&["courseId"], "Course")
        .unwrap();
        let course = RelationSchema::with_any_columns("Course", &["courseId", "credit"])
            .primary_key(&["courseId"])
            .unwrap();
        let source_schema = Schema::from_relations(vec![inst_rel, course]).unwrap();

        let grad = RelationSchema::with_any_columns("Grad", &["name", "stId", "course"])
            .primary_key(&["name", "course"])
            .unwrap();
        let prof = RelationSchema::with_any_columns("Prof", &["name", "empId", "course"])
            .primary_key(&["name", "course"])
            .unwrap();
        let target_schema = Schema::from_relations(vec![grad, prof]).unwrap();

        let mut sigma = Correspondences::new();
        sigma.add_qualified("Inst", "name", "Grad", "name");
        sigma.add_qualified("Inst", "name", "Prof", "name");
        sigma.add_qualified("Inst", "studentID", "Grad", "stId");
        sigma.add_qualified("Inst", "employeeID", "Prof", "empId");
        sigma.add_qualified("Inst", "courseId", "Grad", "course");
        sigma.add_qualified("Inst", "courseId", "Prof", "course");

        let mut source = Instance::new(source_schema.clone());
        let p = ConflictPolicy::Allow;
        // PK columns are non-nullable; this scenario's Inst has no PK so
        // nulls are fine.
        source
            .insert(
                "Inst",
                sedex_storage::tuple!["I1", "st1", Value::Null, "c1"],
                p,
            )
            .unwrap();
        source
            .insert(
                "Inst",
                sedex_storage::tuple!["I2", Value::Null, "e1", "c2"],
                p,
            )
            .unwrap();
        source
            .insert("Course", sedex_storage::tuple!["c1", 3i64], p)
            .unwrap();
        source
            .insert("Course", sedex_storage::tuple!["c2", 2i64], p)
            .unwrap();

        let engine = SpicyEngine::new(&source_schema, &target_schema, &sigma);
        let (out, report) = engine.run(&source, &target_schema).unwrap();

        // The redundant solution: every Inst tuple lands in BOTH tables.
        assert_eq!(out.relation("Grad").unwrap().len(), 2);
        assert_eq!(out.relation("Prof").unwrap().len(), 2);
        // Two of the four tuples carry a null where the entity does not have
        // the property.
        assert_eq!(report.stats.nulls, 2);
    }

    /// With egds, a vertical-partitioning-style scenario reaches the core:
    /// the surrogate nulls unify and no redundant tuples remain.
    #[test]
    fn egds_deduplicate_key_mates() {
        let src = Schema::from_relations(vec![RelationSchema::with_any_columns(
            "R",
            &["k", "a", "b"],
        )])
        .unwrap();
        let t1 = RelationSchema::with_any_columns("T", &["k", "a"])
            .primary_key(&["k"])
            .unwrap();
        let t2 = RelationSchema::with_any_columns("U", &["k", "b"])
            .primary_key(&["k"])
            .unwrap();
        let tgt = Schema::from_relations(vec![t1, t2]).unwrap();
        let sigma = Correspondences::from_name_pairs([("k", "k"), ("a", "a"), ("b", "b")]);

        let mut source = Instance::new(src.clone());
        source
            .insert(
                "R",
                sedex_storage::tuple!["k1", "a1", "b1"],
                ConflictPolicy::Allow,
            )
            .unwrap();
        let spicy = SpicyEngine::new(&src, &tgt, &sigma);
        let (out, _) = spicy.run(&source, &tgt).unwrap();
        assert_eq!(out.relation("T").unwrap().len(), 1);
        assert_eq!(out.relation("U").unwrap().len(), 1);
        assert_eq!(out.stats().nulls, 0);
    }

    /// Spicy never produces MORE atoms than Clio on the same scenario.
    #[test]
    fn spicy_at_most_clio() {
        let src = Schema::from_relations(vec![RelationSchema::with_any_columns(
            "R",
            &["k", "a", "b", "c"],
        )])
        .unwrap();
        let tgt = {
            let t = RelationSchema::with_any_columns("T", &["k", "a"])
                .primary_key(&["k"])
                .unwrap();
            let u = RelationSchema::with_any_columns("U", &["k", "b", "c"])
                .primary_key(&["k"])
                .unwrap();
            Schema::from_relations(vec![t, u]).unwrap()
        };
        let sigma =
            Correspondences::from_name_pairs([("k", "k"), ("a", "a"), ("b", "b"), ("c", "c")]);
        let mut source = Instance::new(src.clone());
        for i in 0..20 {
            source
                .insert(
                    "R",
                    sedex_storage::tuple![
                        format!("k{i}"),
                        format!("a{i}"),
                        format!("b{i}"),
                        format!("c{i}")
                    ],
                    ConflictPolicy::Allow,
                )
                .unwrap();
        }
        let clio = crate::clio::ClioEngine::new(&src, &tgt, &sigma);
        let spicy = SpicyEngine::new(&src, &tgt, &sigma);
        let (_, rc) = clio.run(&source, &tgt).unwrap();
        let (_, rs) = spicy.run(&source, &tgt).unwrap();
        assert!(rs.stats.atoms() <= rc.stats.atoms());
        assert!(rs.stats.nulls <= rc.stats.nulls);
    }
}
