//! The naive chase: firing s-t tgds to produce the universal solution.
//!
//! For every homomorphism from a tgd's premise into the source instance, the
//! conclusion is instantiated — existential variables become fresh labeled
//! nulls, shared across the conclusion's atoms of one firing — and inserted
//! into the target (set semantics, no key enforcement: that is Clio's
//! universal solution, which may fragment entities; ++Spicy then applies
//! egds on top, see [`crate::egd`]).
//!
//! Joins are evaluated left to right with per-atom hash indexes on the
//! columns bound by earlier atoms, so chasing is linear-ish in the number of
//! homomorphisms rather than quadratic in relation sizes.

use std::collections::HashMap;

use sedex_storage::{ConflictPolicy, Instance, Tuple, Value};

use crate::dependency::{Atom, Term, Tgd, VarId};

/// Counters describing one chase run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// tgd firings (homomorphisms found).
    pub firings: usize,
    /// Tuples actually added to the target (exact duplicates collapse).
    pub tuples_inserted: usize,
    /// Labeled nulls invented.
    pub nulls_created: usize,
}

/// Allocates labeled-null identifiers; share one across engines so labels
/// never collide within an exchange run.
#[derive(Debug, Default)]
pub struct NullFactory {
    next: u64,
}

impl NullFactory {
    /// A factory starting at label 0.
    pub fn new() -> Self {
        NullFactory::default()
    }

    /// Next fresh labeled null.
    pub fn fresh(&mut self) -> Value {
        let v = Value::Labeled(self.next);
        self.next += 1;
        v
    }
}

/// Chase `source` with the given s-t tgds, inserting into `target`.
///
/// Source-to-target tgds never feed each other, so a single pass over the
/// tgds is a complete chase.
pub fn chase(
    source: &Instance,
    target: &mut Instance,
    tgds: &[Tgd],
    nulls: &mut NullFactory,
) -> Result<ChaseStats, sedex_storage::StorageError> {
    let mut stats = ChaseStats::default();
    for tgd in tgds {
        let bindings = enumerate_homomorphisms(source, &tgd.lhs);
        let existentials: Vec<VarId> = {
            let mut e: Vec<VarId> = tgd.existential_vars().into_iter().collect();
            e.sort_unstable();
            e
        };
        for binding in bindings {
            stats.firings += 1;
            // One fresh null per existential per firing, shared across atoms.
            let mut fresh: HashMap<VarId, Value> = HashMap::with_capacity(existentials.len());
            for &v in &existentials {
                fresh.insert(v, nulls.fresh());
                stats.nulls_created += 1;
            }
            for atom in &tgd.rhs {
                let vals: Vec<Value> = atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => c.clone(),
                        Term::Var(v) => binding.get(v).cloned().unwrap_or_else(|| fresh[v].clone()),
                    })
                    .collect();
                let out = target.insert(&atom.relation, Tuple::new(vals), ConflictPolicy::Allow)?;
                if out.is_inserted() {
                    stats.tuples_inserted += 1;
                }
            }
        }
    }
    Ok(stats)
}

/// Enumerate all homomorphisms from a conjunction of atoms into `source`.
/// Returns complete variable bindings.
pub fn enumerate_homomorphisms(source: &Instance, atoms: &[Atom]) -> Vec<HashMap<VarId, Value>> {
    let mut results: Vec<HashMap<VarId, Value>> = vec![HashMap::new()];
    for atom in atoms {
        if results.is_empty() {
            return results;
        }
        let Some(rel) = source.relation(&atom.relation) else {
            return Vec::new(); // relation absent → premise unsatisfiable
        };
        // Which positions are already bound by the accumulated bindings?
        // (Variables repeat across atoms — the join columns — and may repeat
        // within an atom.)
        let bound_vars: std::collections::HashSet<VarId> = results[0].keys().copied().collect();
        let mut bound_positions: Vec<(usize, VarId)> = Vec::new();
        let mut const_positions: Vec<(usize, &Value)> = Vec::new();
        let mut free_positions: Vec<(usize, VarId)> = Vec::new();
        let mut seen_in_atom: HashMap<VarId, usize> = HashMap::new();
        let mut intra_eq: Vec<(usize, usize)> = Vec::new();
        for (i, t) in atom.terms.iter().enumerate() {
            match t {
                Term::Const(c) => const_positions.push((i, c)),
                Term::Var(v) => {
                    if let Some(&first) = seen_in_atom.get(v) {
                        intra_eq.push((first, i));
                        continue;
                    }
                    seen_in_atom.insert(*v, i);
                    if bound_vars.contains(v) {
                        bound_positions.push((i, *v));
                    } else {
                        free_positions.push((i, *v));
                    }
                }
            }
        }
        // Hash-index the relation on the bound positions (if any).
        let key_cols: Vec<usize> = bound_positions.iter().map(|&(i, _)| i).collect();
        let index: Option<HashMap<Vec<Value>, Vec<u32>>> = if key_cols.is_empty() {
            None
        } else {
            let mut idx: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
            for (rid, t) in rel.rows().iter().enumerate() {
                idx.entry(t.project(&key_cols))
                    .or_default()
                    .push(rid as u32);
            }
            Some(idx)
        };

        let mut next: Vec<HashMap<VarId, Value>> = Vec::new();
        for binding in &results {
            let candidate_rows: Vec<u32> = match &index {
                Some(idx) => {
                    let key: Vec<Value> = bound_positions
                        .iter()
                        .map(|(_, v)| binding[v].clone())
                        .collect();
                    idx.get(&key).cloned().unwrap_or_default()
                }
                None => (0..rel.len() as u32).collect(),
            };
            'rows: for rid in candidate_rows {
                let t = rel.row(rid).expect("row id in range");
                for (i, c) in &const_positions {
                    if &t.values()[*i] != *c {
                        continue 'rows;
                    }
                }
                for (a, b) in &intra_eq {
                    if t.values()[*a] != t.values()[*b] {
                        continue 'rows;
                    }
                }
                let mut nb = binding.clone();
                for (i, v) in &free_positions {
                    nb.insert(*v, t.values()[*i].clone());
                }
                next.push(nb);
            }
        }
        results = next;
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::{RelationSchema, Schema};

    /// Source and target of the Section 1.2 ambiguity example, with the
    /// instance Inst(I1,st1,null,c1), Inst(I2,null,e1,c2), Course(c1,3),
    /// Course(c2,2).
    fn section12() -> (Instance, Instance, Vec<Tgd>) {
        let inst = RelationSchema::with_any_columns(
            "Inst",
            &["name", "studentID", "employeeID", "courseId"],
        );
        let course = RelationSchema::with_any_columns("Course", &["courseId", "credit"]);
        let source_schema = Schema::from_relations(vec![inst, course]).unwrap();
        let mut source = Instance::new(source_schema);
        let p = ConflictPolicy::Allow;
        source
            .insert(
                "Inst",
                sedex_storage::tuple!["I1", "st1", Value::Null, "c1"],
                p,
            )
            .unwrap();
        source
            .insert(
                "Inst",
                sedex_storage::tuple!["I2", Value::Null, "e1", "c2"],
                p,
            )
            .unwrap();
        source
            .insert("Course", sedex_storage::tuple!["c1", 3i64], p)
            .unwrap();
        source
            .insert("Course", sedex_storage::tuple!["c2", 2i64], p)
            .unwrap();

        let grad = RelationSchema::with_any_columns("Grad", &["name", "stId", "course"]);
        let prof = RelationSchema::with_any_columns("Prof", &["name", "empId", "course"]);
        let target_schema = Schema::from_relations(vec![grad, prof]).unwrap();
        let target = Instance::new(target_schema);

        // The two mappings ++Spicy generates (Section 1.2).
        let lhs = vec![
            Atom::new(
                "Inst",
                vec![Term::Var(0), Term::Var(1), Term::Var(2), Term::Var(3)],
            ),
            Atom::new("Course", vec![Term::Var(3), Term::Var(4)]),
        ];
        let tgds = vec![
            Tgd::new(
                lhs.clone(),
                vec![Atom::new(
                    "Grad",
                    vec![Term::Var(0), Term::Var(1), Term::Var(3)],
                )],
            ),
            Tgd::new(
                lhs,
                vec![Atom::new(
                    "Prof",
                    vec![Term::Var(0), Term::Var(2), Term::Var(3)],
                )],
            ),
        ];
        (source, target, tgds)
    }

    #[test]
    fn section12_redundant_universal_solution() {
        // The paper: ++Spicy's mappings generate the redundant target
        // Grad(I1,st1,c1), Grad(I2,null,c2), Prof(I1,null,c1), Prof(I2,e1,c2).
        let (source, mut target, tgds) = section12();
        let mut nulls = NullFactory::new();
        let stats = chase(&source, &mut target, &tgds, &mut nulls).unwrap();
        assert_eq!(stats.firings, 4); // 2 tuples × 2 tgds
        assert_eq!(target.relation("Grad").unwrap().len(), 2);
        assert_eq!(target.relation("Prof").unwrap().len(), 2);
        assert!(target
            .relation("Grad")
            .unwrap()
            .iter()
            .any(|t| t == &sedex_storage::tuple!["I1", "st1", "c1"]));
        assert!(target
            .relation("Prof")
            .unwrap()
            .iter()
            .any(|t| t == &sedex_storage::tuple!["I1", Value::Null, "c1"]));
    }

    #[test]
    fn join_variables_restrict_homomorphisms() {
        let (source, _, tgds) = section12();
        // Premise Inst ⋈ Course on courseId: exactly 2 homomorphisms.
        let h = enumerate_homomorphisms(&source, &tgds[0].lhs);
        assert_eq!(h.len(), 2);
        for b in &h {
            // Var 3 (join) must equal the Course key of the matched course.
            assert!(b[&3] == Value::text("c1") || b[&3] == Value::text("c2"));
        }
    }

    #[test]
    fn existentials_get_fresh_shared_nulls() {
        // S(a) → T(a, y) ∧ U(y): y must be the SAME null in both atoms of a
        // firing and DIFFERENT across firings.
        let s = RelationSchema::with_any_columns("S", &["a"]);
        let t = RelationSchema::with_any_columns("T", &["a", "y"]);
        let u = RelationSchema::with_any_columns("U", &["y"]);
        let src_schema = Schema::from_relations(vec![s]).unwrap();
        let tgt_schema = Schema::from_relations(vec![t, u]).unwrap();
        let mut source = Instance::new(src_schema);
        source
            .insert("S", sedex_storage::tuple!["r1"], ConflictPolicy::Allow)
            .unwrap();
        source
            .insert("S", sedex_storage::tuple!["r2"], ConflictPolicy::Allow)
            .unwrap();
        let mut target = Instance::new(tgt_schema);
        let tgd = Tgd::new(
            vec![Atom::new("S", vec![Term::Var(0)])],
            vec![
                Atom::new("T", vec![Term::Var(0), Term::Var(1)]),
                Atom::new("U", vec![Term::Var(1)]),
            ],
        );
        let mut nulls = NullFactory::new();
        let stats = chase(&source, &mut target, &[tgd], &mut nulls).unwrap();
        assert_eq!(stats.nulls_created, 2);
        let t_rel = target.relation("T").unwrap();
        let u_rel = target.relation("U").unwrap();
        assert_eq!(t_rel.len(), 2);
        assert_eq!(u_rel.len(), 2);
        for t in t_rel.iter() {
            let y = &t.values()[1];
            assert!(y.is_labeled_null());
            assert!(u_rel.iter().any(|ut| &ut.values()[0] == y));
        }
    }

    #[test]
    fn constants_in_atoms_filter() {
        let s = RelationSchema::with_any_columns("S", &["a", "b"]);
        let src = Schema::from_relations(vec![s]).unwrap();
        let mut source = Instance::new(src);
        source
            .insert(
                "S",
                sedex_storage::tuple!["keep", "1"],
                ConflictPolicy::Allow,
            )
            .unwrap();
        source
            .insert(
                "S",
                sedex_storage::tuple!["drop", "2"],
                ConflictPolicy::Allow,
            )
            .unwrap();
        let atoms = vec![Atom::new(
            "S",
            vec![Term::Const(Value::text("keep")), Term::Var(0)],
        )];
        let h = enumerate_homomorphisms(&source, &atoms);
        assert_eq!(h.len(), 1);
        assert_eq!(h[0][&0], Value::text("1"));
    }

    #[test]
    fn repeated_variable_within_atom_requires_equality() {
        let s = RelationSchema::with_any_columns("S", &["a", "b"]);
        let src = Schema::from_relations(vec![s]).unwrap();
        let mut source = Instance::new(src);
        source
            .insert("S", sedex_storage::tuple!["x", "x"], ConflictPolicy::Allow)
            .unwrap();
        source
            .insert("S", sedex_storage::tuple!["x", "y"], ConflictPolicy::Allow)
            .unwrap();
        let atoms = vec![Atom::new("S", vec![Term::Var(0), Term::Var(0)])];
        let h = enumerate_homomorphisms(&source, &atoms);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn missing_relation_means_no_homomorphism() {
        let s = RelationSchema::with_any_columns("S", &["a"]);
        let src = Schema::from_relations(vec![s]).unwrap();
        let source = Instance::new(src);
        let atoms = vec![Atom::new("Nope", vec![Term::Var(0)])];
        assert!(enumerate_homomorphisms(&source, &atoms).is_empty());
    }
}
