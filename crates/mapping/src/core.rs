//! Core-style minimisation of a universal solution.
//!
//! The *core* is the smallest universal solution (Fagin, Kolaitis & Popa).
//! Exact core computation is expensive; like practical systems (++Spicy's
//! rewriting targets the same effect) we minimise by **tuple subsumption**,
//! iterated to fixpoint:
//!
//! A tuple `t1` is removed when some other tuple `t2` of the same relation
//! and a mapping `h` over `t1`'s nulls exist such that `h(t1) = t2`, where
//! `h` may only remap nulls that occur *nowhere outside `t1`* (so removing
//! `t1` cannot strand references) and must be consistent within `t1`. SQL
//! nulls (which carry no identity) subsume under anything.
//!
//! For the tgd languages our scenario generators emit, this fixpoint *is*
//! the core; in general it is an upper bound.

use std::collections::HashMap;

use sedex_storage::{Instance, Tuple, Value};

/// Remove subsumed tuples from every relation, to fixpoint. Returns the
/// number of tuples removed.
pub fn minimize(target: &mut Instance) -> usize {
    let mut removed_total = 0;
    loop {
        let removed = minimize_round(target);
        removed_total += removed;
        if removed == 0 {
            return removed_total;
        }
    }
}

fn minimize_round(target: &mut Instance) -> usize {
    // Global occurrence counts of labeled nulls.
    let mut occurrences: HashMap<u64, usize> = HashMap::new();
    for (_, rel) in target.relations() {
        for t in rel.iter() {
            for v in t.values() {
                if let Value::Labeled(l) = v {
                    *occurrences.entry(*l).or_insert(0) += 1;
                }
            }
        }
    }

    let mut removed = 0;
    let rel_names: Vec<String> = target
        .schema()
        .relation_names()
        .map(str::to_owned)
        .collect();
    for name in rel_names {
        let rel = target.relation(&name).expect("relation exists");
        if rel.len() < 2 {
            continue;
        }
        let rows: Vec<Tuple> = rel.rows().to_vec();
        let mut alive = vec![true; rows.len()];
        // Build, per distinct null-mask among candidates, an index over all
        // rows keyed by the projection onto the mask's constant positions.
        let mut masks: Vec<u64> = Vec::new();
        for t in &rows {
            let m = null_mask(t);
            if m != 0 && !masks.contains(&m) {
                masks.push(m);
            }
        }
        let mut projections: HashMap<u64, HashMap<Vec<Value>, Vec<usize>>> = HashMap::new();
        for &m in &masks {
            let cols: Vec<usize> = const_positions(m, rows[0].arity());
            let mut idx: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            for (i, t) in rows.iter().enumerate() {
                idx.entry(t.project(&cols)).or_default().push(i);
            }
            projections.insert(m, idx);
        }

        for i in 0..rows.len() {
            let m = null_mask(&rows[i]);
            if m == 0 {
                continue; // all-constant tuples are never redundant
            }
            let cols = const_positions(m, rows[i].arity());
            let key = rows[i].project(&cols);
            let Some(cands) = projections.get(&m).and_then(|idx| idx.get(&key)) else {
                continue;
            };
            for &j in cands {
                if j == i || !alive[j] {
                    continue;
                }
                if subsumes(&rows[i], &rows[j], &occurrences) {
                    alive[i] = false;
                    removed += 1;
                    // Free t1's nulls for later candidates this round.
                    for v in rows[i].values() {
                        if let Value::Labeled(l) = v {
                            if let Some(c) = occurrences.get_mut(l) {
                                *c -= 1;
                            }
                        }
                    }
                    break;
                }
            }
        }
        if removed > 0 {
            let keep: Vec<Tuple> = rows
                .into_iter()
                .zip(&alive)
                .filter_map(|(t, &a)| a.then_some(t))
                .collect();
            let rel_mut = target.relation_mut(&name).expect("relation exists");
            if keep.len() != rel_mut.len() {
                rel_mut.set_rows(keep);
            }
        }
    }
    removed
}

/// Bitmask of positions holding any kind of null (tuples wider than 64
/// columns treat the tail as constants — safe, just less minimisation).
fn null_mask(t: &Tuple) -> u64 {
    let mut m = 0u64;
    for (i, v) in t.values().iter().enumerate().take(64) {
        if v.is_any_null() {
            m |= 1 << i;
        }
    }
    m
}

fn const_positions(mask: u64, arity: usize) -> Vec<usize> {
    (0..arity)
        .filter(|&i| i >= 64 || mask & (1 << i) == 0)
        .collect()
}

/// Whether `t1` is subsumed by `t2`: equal on constants, and `t1`'s nulls
/// map consistently onto `t2`'s values, with labeled nulls remappable only
/// when all their occurrences lie inside `t1`.
fn subsumes(t1: &Tuple, t2: &Tuple, occurrences: &HashMap<u64, usize>) -> bool {
    if t1 == t2 {
        return false;
    }
    // Count each labeled null's occurrences inside t1.
    let mut local: HashMap<u64, usize> = HashMap::new();
    for v in t1.values() {
        if let Value::Labeled(l) = v {
            *local.entry(*l).or_insert(0) += 1;
        }
    }
    let mut mapping: HashMap<u64, &Value> = HashMap::new();
    for (a, b) in t1.values().iter().zip(t2.values()) {
        match a {
            Value::Null => {} // no identity: subsumed by anything
            Value::Labeled(l) => {
                if a == b {
                    continue; // identity mapping is always fine
                }
                // Remapping allowed only for t1-local nulls.
                if occurrences.get(l).copied().unwrap_or(0) != local[l] {
                    return false;
                }
                match mapping.get(l) {
                    Some(prev) => {
                        if *prev != b {
                            return false;
                        }
                    }
                    None => {
                        mapping.insert(*l, b);
                    }
                }
            }
            _ => {
                if a != b {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::{ConflictPolicy, RelationSchema, Schema};

    fn instance_with(rows: Vec<Tuple>) -> Instance {
        let r = RelationSchema::with_any_columns("T", &["a", "b", "c"]);
        let schema = Schema::from_relations(vec![r]).unwrap();
        let mut inst = Instance::new(schema);
        for t in rows {
            inst.insert("T", t, ConflictPolicy::Allow).unwrap();
        }
        inst
    }

    #[test]
    fn null_padded_tuple_is_subsumed_by_fuller_one() {
        let mut inst = instance_with(vec![
            sedex_storage::tuple!["x", "y", Value::Labeled(1)],
            sedex_storage::tuple!["x", "y", "z"],
        ]);
        assert_eq!(minimize(&mut inst), 1);
        let rel = inst.relation("T").unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.row(0).unwrap(), &sedex_storage::tuple!["x", "y", "z"]);
    }

    #[test]
    fn shared_nulls_block_removal() {
        // N1 also appears in another tuple: removing would strand it.
        let mut inst = instance_with(vec![
            sedex_storage::tuple!["x", "y", Value::Labeled(1)],
            sedex_storage::tuple!["x", "y", "z"],
            sedex_storage::tuple!["q", Value::Labeled(1), "r"],
        ]);
        assert_eq!(minimize(&mut inst), 0);
        assert_eq!(inst.relation("T").unwrap().len(), 3);
    }

    #[test]
    fn sql_nulls_always_subsume() {
        let mut inst = instance_with(vec![
            sedex_storage::tuple!["x", Value::Null, Value::Null],
            sedex_storage::tuple!["x", "y", "z"],
        ]);
        assert_eq!(minimize(&mut inst), 1);
    }

    #[test]
    fn inconsistent_null_mapping_blocks() {
        // (x, N1, N1) vs (x, y, z): N1 would map to both y and z.
        let mut inst = instance_with(vec![
            sedex_storage::tuple!["x", Value::Labeled(1), Value::Labeled(1)],
            sedex_storage::tuple!["x", "y", "z"],
        ]);
        assert_eq!(minimize(&mut inst), 0);
    }

    #[test]
    fn consistent_null_mapping_allows() {
        // (x, N1, N1) vs (x, y, y): N1 → y consistently.
        let mut inst = instance_with(vec![
            sedex_storage::tuple!["x", Value::Labeled(1), Value::Labeled(1)],
            sedex_storage::tuple!["x", "y", "y"],
        ]);
        assert_eq!(minimize(&mut inst), 1);
    }

    #[test]
    fn constant_tuples_never_removed() {
        let mut inst = instance_with(vec![
            sedex_storage::tuple!["x", "y", "z"],
            sedex_storage::tuple!["x", "y", "w"],
        ]);
        assert_eq!(minimize(&mut inst), 0);
    }

    #[test]
    fn chain_removals_reach_fixpoint() {
        // (x,N1,N2) subsumed by (x,y,N3)? N3 is not t1-local… construct a
        // two-step chain instead: (x,N1,N2) → (x,y,N2') needs N2 local; use
        // three tuples of increasing specificity.
        let mut inst = instance_with(vec![
            sedex_storage::tuple!["x", Value::Labeled(1), Value::Labeled(2)],
            sedex_storage::tuple!["x", "y", Value::Labeled(3)],
            sedex_storage::tuple!["x", "y", "z"],
        ]);
        // Round 1 can remove both null-bearing tuples (each maps into the
        // constant one).
        assert_eq!(minimize(&mut inst), 2);
        assert_eq!(inst.relation("T").unwrap().len(), 1);
    }

    #[test]
    fn null_to_null_remapping_between_tuples() {
        // (x,N1,q) vs (x,N2,q): N1 local → maps to N2; one is redundant.
        let mut inst = instance_with(vec![
            sedex_storage::tuple!["x", Value::Labeled(1), "q"],
            sedex_storage::tuple!["x", Value::Labeled(2), "q"],
        ]);
        assert_eq!(minimize(&mut inst), 1);
        assert_eq!(inst.relation("T").unwrap().len(), 1);
    }
}
