//! The Clio baseline: universal solution via tgd generation + naive chase.
//!
//! Clio "generates a universal solution using mappings and transformation
//! scripts" (Section 5). It applies no egds, so the output may contain both
//! redundant tuples (uncorrelated mappings firing for the same entity) and
//! labeled nulls — the entity-fragmentation behaviour that motivates SEDEX.

use std::time::{Duration, Instant};

use sedex_storage::{Instance, InstanceStats, Schema, StorageError};

use crate::chase::{chase, ChaseStats, NullFactory};
use crate::correspondence::Correspondences;
use crate::dependency::Tgd;
use crate::tgdgen::generate_tgds;

/// Timing + outcome of one baseline exchange run.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Mapping-generation time (the paper's `Tg`).
    pub gen_time: Duration,
    /// Script/chase execution time (the paper's `Te`).
    pub exec_time: Duration,
    /// Number of mappings used.
    pub tgd_count: usize,
    /// Chase counters.
    pub chase: ChaseStats,
    /// Target-instance statistics (the quality measure of Figs. 9–10).
    pub stats: InstanceStats,
    /// Tuples merged away by egd application (++Spicy only).
    pub egd_merged: usize,
    /// Hard egd violations (++Spicy only).
    pub egd_violations: usize,
    /// Tuples removed by core minimisation (++Spicy only).
    pub core_removed: usize,
}

/// The Clio engine: owns the generated mappings.
#[derive(Debug, Clone)]
pub struct ClioEngine {
    tgds: Vec<Tgd>,
    gen_time: Duration,
}

impl ClioEngine {
    /// Generate mappings for a scenario.
    pub fn new(source: &Schema, target: &Schema, sigma: &Correspondences) -> Self {
        let start = Instant::now();
        let tgds = generate_tgds(source, target, sigma);
        ClioEngine {
            tgds,
            gen_time: start.elapsed(),
        }
    }

    /// Build from pre-existing mappings (the fixed scenarios a–d of Fig. 12).
    pub fn from_tgds(tgds: Vec<Tgd>) -> Self {
        ClioEngine {
            tgds,
            gen_time: Duration::ZERO,
        }
    }

    /// The generated mappings.
    pub fn tgds(&self) -> &[Tgd] {
        &self.tgds
    }

    /// Run the exchange: chase the source, producing the universal solution
    /// in a fresh instance of `target_schema`.
    pub fn run(
        &self,
        source: &Instance,
        target_schema: &Schema,
    ) -> Result<(Instance, BaselineReport), StorageError> {
        let mut target = Instance::new(target_schema.clone());
        let mut nulls = NullFactory::new();
        let start = Instant::now();
        let chase_stats = chase(source, &mut target, &self.tgds, &mut nulls)?;
        let exec_time = start.elapsed();
        let stats = target.stats();
        Ok((
            target,
            BaselineReport {
                gen_time: self.gen_time,
                exec_time,
                tgd_count: self.tgds.len(),
                chase: chase_stats,
                stats,
                egd_merged: 0,
                egd_violations: 0,
                core_removed: 0,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::{ConflictPolicy, RelationSchema, Value};

    fn copy_scenario() -> (Schema, Schema, Correspondences, Instance) {
        let src = Schema::from_relations(vec![RelationSchema::with_any_columns("R", &["a", "b"])])
            .unwrap();
        let tgt = Schema::from_relations(vec![RelationSchema::with_any_columns("S", &["x", "y"])])
            .unwrap();
        let sigma = Correspondences::from_name_pairs([("a", "x"), ("b", "y")]);
        let mut inst = Instance::new(src.clone());
        inst.insert("R", sedex_storage::tuple!["1", "2"], ConflictPolicy::Allow)
            .unwrap();
        inst.insert("R", sedex_storage::tuple!["3", "4"], ConflictPolicy::Allow)
            .unwrap();
        (src, tgt, sigma, inst)
    }

    #[test]
    fn copy_scenario_copies() {
        let (src, tgt, sigma, inst) = copy_scenario();
        let engine = ClioEngine::new(&src, &tgt, &sigma);
        assert_eq!(engine.tgds().len(), 1);
        let (out, report) = engine.run(&inst, &tgt).unwrap();
        assert_eq!(out.relation("S").unwrap().len(), 2);
        assert_eq!(report.stats.constants, 4);
        assert_eq!(report.stats.nulls, 0);
        assert_eq!(report.chase.firings, 2);
    }

    #[test]
    fn uncovered_target_columns_become_nulls() {
        let src =
            Schema::from_relations(vec![RelationSchema::with_any_columns("R", &["a"])]).unwrap();
        let tgt =
            Schema::from_relations(vec![RelationSchema::with_any_columns("S", &["x", "extra"])])
                .unwrap();
        let sigma = Correspondences::from_name_pairs([("a", "x")]);
        let mut inst = Instance::new(src.clone());
        inst.insert("R", sedex_storage::tuple!["1"], ConflictPolicy::Allow)
            .unwrap();
        let engine = ClioEngine::new(&src, &tgt, &sigma);
        let (out, report) = engine.run(&inst, &tgt).unwrap();
        let row = out.relation("S").unwrap().row(0).unwrap();
        assert_eq!(row.values()[0], Value::text("1"));
        assert!(row.values()[1].is_labeled_null());
        assert_eq!(report.stats.nulls, 1);
    }
}
