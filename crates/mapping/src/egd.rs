//! Target egd application: unify tuples that agree on a key.
//!
//! Key egds say that two target tuples agreeing on the key columns must
//! agree everywhere. Applying them to a chased instance unifies labeled
//! nulls with constants (or with each other), merges the tuples, and
//! propagates the resulting substitution across the whole instance, to
//! fixpoint. Two *distinct constants* for the same entity make the egd fail
//! in chase terms; like practical systems we count the violation and keep
//! the first tuple — the data-consistency vs. data-completeness trade-off
//! Section 4.4.3 discusses.

use std::collections::HashMap;

use sedex_storage::{Instance, Tuple, Value};

use crate::dependency::Egd;

/// Counters describing one egd-application run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EgdOutcome {
    /// Tuples removed by merging into a key-mate.
    pub merged: usize,
    /// Hard constant-vs-constant conflicts (tuple kept separate).
    pub violations: usize,
    /// Null-unification substitutions applied.
    pub substitutions: usize,
    /// Fixpoint rounds.
    pub rounds: usize,
}

/// Apply the key egds to `target`, to fixpoint.
pub fn apply_egds(target: &mut Instance, egds: &[Egd]) -> EgdOutcome {
    let mut out = EgdOutcome::default();
    loop {
        out.rounds += 1;
        let mut subst: HashMap<u64, Value> = HashMap::new();
        let mut merged_this_round = 0;

        for egd in egds {
            let Some(rel) = target.relation(&egd.relation) else {
                continue;
            };
            if rel.len() < 2 {
                continue;
            }
            // Group rows by key projection (groups keyed by value equality;
            // a labeled null in the key groups with its equals).
            let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            for (i, t) in rel.rows().iter().enumerate() {
                let key = t.project(&egd.key);
                if key.iter().any(Value::is_null) {
                    continue; // SQL-null keys identify nothing
                }
                groups.entry(key).or_default().push(i);
            }
            let mut new_rows: Vec<Tuple> = Vec::with_capacity(rel.len());
            let mut consumed = vec![false; rel.len()];
            for rows in groups.values() {
                if rows.len() < 2 {
                    continue;
                }
                // Fold the group into one tuple where possible.
                let mut merged: Tuple = rel.rows()[rows[0]].clone();
                consumed[rows[0]] = true;
                for &i in &rows[1..] {
                    match unify_tuples(&merged, &rel.rows()[i], &mut subst) {
                        Some(m) => {
                            merged = m;
                            consumed[i] = true;
                            merged_this_round += 1;
                        }
                        None => {
                            out.violations += 1; // keep the conflicting tuple as-is
                        }
                    }
                }
                new_rows.push(merged);
            }
            if merged_this_round > 0 || !subst.is_empty() {
                for (i, t) in rel.rows().iter().enumerate() {
                    if !consumed[i] {
                        new_rows.push(t.clone());
                    }
                }
                // Only rebuild when something in this relation changed.
                let changed = new_rows.len() != rel.len();
                if changed {
                    let rel_mut = target.relation_mut(&egd.relation).expect("relation exists");
                    rel_mut.set_rows(new_rows);
                }
            }
        }

        out.merged += merged_this_round;
        let applied = target.substitute_labeled(&subst);
        out.substitutions += subst.len();
        if merged_this_round == 0 && applied == 0 {
            break;
        }
    }
    out
}

/// Column-wise unification of two tuples; records labeled-null
/// substitutions. `None` on a constant conflict.
fn unify_tuples(a: &Tuple, b: &Tuple, subst: &mut HashMap<u64, Value>) -> Option<Tuple> {
    let mut vals = Vec::with_capacity(a.arity());
    // Tentative local substitutions; only committed when the whole tuple
    // unifies.
    let mut local: Vec<(u64, Value)> = Vec::new();
    for (x, y) in a.values().iter().zip(b.values()) {
        let m = x.unify(y)?;
        if let Value::Labeled(l) = x {
            if &m != x {
                local.push((*l, m.clone()));
            }
        }
        if let Value::Labeled(l) = y {
            if &m != y {
                local.push((*l, m.clone()));
            }
        }
        vals.push(m);
    }
    for (l, v) in local {
        subst.entry(l).or_insert(v);
    }
    Some(Tuple::new(vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::{ConflictPolicy, RelationSchema, Schema};

    fn target_with(rows: Vec<Tuple>) -> Instance {
        let r = RelationSchema::with_any_columns("T", &["k", "a", "b"]);
        let schema = Schema::from_relations(vec![r]).unwrap();
        let mut inst = Instance::new(schema);
        for t in rows {
            inst.insert("T", t, ConflictPolicy::Allow).unwrap();
        }
        inst
    }

    fn key_egd() -> Egd {
        Egd {
            relation: "T".into(),
            key: vec![0],
        }
    }

    #[test]
    fn merges_null_with_constant() {
        let mut inst = target_with(vec![
            sedex_storage::tuple!["k1", Value::Labeled(1), "b"],
            sedex_storage::tuple!["k1", "a", Value::Labeled(2)],
        ]);
        let out = apply_egds(&mut inst, &[key_egd()]);
        let rel = inst.relation("T").unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.row(0).unwrap(), &sedex_storage::tuple!["k1", "a", "b"]);
        assert_eq!(out.merged, 1);
        assert_eq!(out.violations, 0);
    }

    #[test]
    fn propagates_substitution_across_relations() {
        let t = RelationSchema::with_any_columns("T", &["k", "a"]);
        let u = RelationSchema::with_any_columns("U", &["x"]);
        let schema = Schema::from_relations(vec![t, u]).unwrap();
        let mut inst = Instance::new(schema);
        inst.insert(
            "T",
            sedex_storage::tuple!["k1", Value::Labeled(7)],
            ConflictPolicy::Allow,
        )
        .unwrap();
        inst.insert(
            "T",
            sedex_storage::tuple!["k1", "resolved"],
            ConflictPolicy::Allow,
        )
        .unwrap();
        inst.insert(
            "U",
            sedex_storage::tuple![Value::Labeled(7)],
            ConflictPolicy::Allow,
        )
        .unwrap();
        let egd = Egd {
            relation: "T".into(),
            key: vec![0],
        };
        apply_egds(&mut inst, &[egd]);
        assert_eq!(
            inst.relation("U").unwrap().row(0).unwrap(),
            &sedex_storage::tuple!["resolved"]
        );
    }

    #[test]
    fn constant_conflicts_are_violations() {
        let mut inst = target_with(vec![
            sedex_storage::tuple!["k1", "a", "b"],
            sedex_storage::tuple!["k1", "DIFFERENT", "b"],
        ]);
        let out = apply_egds(&mut inst, &[key_egd()]);
        assert_eq!(out.violations, 1);
        assert_eq!(inst.relation("T").unwrap().len(), 2); // both kept
    }

    #[test]
    fn null_keys_do_not_group() {
        let mut inst = target_with(vec![
            sedex_storage::tuple![Value::Null, "a", "b"],
            sedex_storage::tuple![Value::Null, "c", "d"],
        ]);
        let out = apply_egds(&mut inst, &[key_egd()]);
        assert_eq!(out.merged, 0);
        assert_eq!(inst.relation("T").unwrap().len(), 2);
    }

    #[test]
    fn labeled_null_keys_group_when_equal() {
        let mut inst = target_with(vec![
            sedex_storage::tuple![Value::Labeled(3), "a", Value::Labeled(4)],
            sedex_storage::tuple![Value::Labeled(3), "a", "b"],
        ]);
        let out = apply_egds(&mut inst, &[key_egd()]);
        assert_eq!(out.merged, 1);
        assert_eq!(inst.relation("T").unwrap().len(), 1);
    }

    #[test]
    fn cascading_substitutions_reach_fixpoint() {
        // Merging k1 resolves N1→"v"; that makes the k2 pair equal, which
        // then collapses by set semantics on the next round.
        let mut inst = target_with(vec![
            sedex_storage::tuple!["k1", Value::Labeled(1), "x"],
            sedex_storage::tuple!["k1", "v", "x"],
            sedex_storage::tuple!["k2", Value::Labeled(1), "y"],
            sedex_storage::tuple!["k2", "v", "y"],
        ]);
        let out = apply_egds(&mut inst, &[key_egd()]);
        assert_eq!(inst.relation("T").unwrap().len(), 2);
        assert!(out.rounds >= 1);
        assert_eq!(inst.stats().nulls, 0);
    }

    #[test]
    fn idempotent_on_clean_instances() {
        let mut inst = target_with(vec![
            sedex_storage::tuple!["k1", "a", "b"],
            sedex_storage::tuple!["k2", "c", "d"],
        ]);
        let before = inst.stats();
        let out = apply_egds(&mut inst, &[key_egd()]);
        assert_eq!(out.merged, 0);
        assert_eq!(out.violations, 0);
        assert_eq!(inst.stats(), before);
    }
}
