//! Property tests for the mapping substrate: chase soundness and
//! completeness, egd convergence, core-minimisation safety and MapMerge
//! equivalence on constants.
//!
//! Deterministic: workloads are generated from seeded SplitMix64 streams,
//! so every run exercises the same (broad) input set with no external
//! property-testing dependency.

use sedex_mapping::chase::{chase, enumerate_homomorphisms, NullFactory};
use sedex_mapping::egd::apply_egds;
use sedex_mapping::mapmerge::correlate;
use sedex_mapping::{core, Atom, Correspondences, Egd, Term, Tgd};
use sedex_storage::{ConflictPolicy, Instance, RelationSchema, Schema, Tuple, Value};

/// SplitMix64 — tiny, seedable, good enough to diversify test inputs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn pairs(&mut self, lo: usize, max: usize, a: usize, b: usize) -> Vec<(u8, u8)> {
        let n = lo + self.below(max - lo);
        (0..n)
            .map(|_| (self.below(a) as u8, self.below(b) as u8))
            .collect()
    }
}

fn source_with(rows: &[(u8, u8)]) -> Instance {
    let r = RelationSchema::with_any_columns("S", &["a", "b"]);
    let schema = Schema::from_relations(vec![r]).unwrap();
    let mut inst = Instance::new(schema);
    for (a, b) in rows {
        inst.insert(
            "S",
            Tuple::new(vec![Value::int(*a as i64), Value::int(*b as i64)]),
            ConflictPolicy::Allow,
        )
        .unwrap();
    }
    inst
}

fn target_schema() -> Schema {
    let t = RelationSchema::with_any_columns("T", &["x", "y", "z"]);
    let u = RelationSchema::with_any_columns("U", &["p"]);
    Schema::from_relations(vec![t, u]).unwrap()
}

fn demo_tgd() -> Tgd {
    // S(a,b) → T(a,b,E) ∧ U(E)
    Tgd::new(
        vec![Atom::new("S", vec![Term::Var(0), Term::Var(1)])],
        vec![
            Atom::new("T", vec![Term::Var(0), Term::Var(1), Term::Var(9)]),
            Atom::new("U", vec![Term::Var(9)]),
        ],
    )
}

/// Chase soundness + completeness: the output SATISFIES the tgd (every
/// premise homomorphism extends to the conclusion) and contains nothing
/// beyond what some firing produced.
#[test]
fn chase_satisfies_tgds() {
    for seed in 0..24u64 {
        let rows = Rng(seed).pairs(1, 20, 5, 5);
        let source = source_with(&rows);
        let mut target = Instance::new(target_schema());
        let tgd = demo_tgd();
        let mut nulls = NullFactory::new();
        let stats = chase(&source, &mut target, std::slice::from_ref(&tgd), &mut nulls).unwrap();
        // One firing per distinct source tuple.
        assert_eq!(
            stats.firings,
            source.relation("S").unwrap().len(),
            "seed {seed}"
        );
        // Satisfaction: for each source tuple there is a T row agreeing on
        // (x, y) whose z appears in U.
        for s in source.relation("S").unwrap().iter() {
            let t_rel = target.relation("T").unwrap();
            let hit = t_rel
                .iter()
                .find(|t| t.values()[0] == s.values()[0] && t.values()[1] == s.values()[1]);
            assert!(hit.is_some(), "seed {seed}");
            let z = &hit.unwrap().values()[2];
            assert!(
                target
                    .relation("U")
                    .unwrap()
                    .iter()
                    .any(|u| &u.values()[0] == z),
                "seed {seed}"
            );
        }
        // Soundness: every T constant pair came from the source.
        for t in target.relation("T").unwrap().iter() {
            let found = source
                .relation("S")
                .unwrap()
                .iter()
                .any(|s| s.values()[0] == t.values()[0] && s.values()[1] == t.values()[1]);
            assert!(found, "seed {seed}");
        }
    }
}

/// Homomorphism enumeration equals the brute-force count on single-atom
/// premises.
#[test]
fn homomorphism_count_matches_rows() {
    for seed in 0..24u64 {
        let rows = Rng(seed ^ 0x1111).pairs(0, 20, 5, 5);
        let source = source_with(&rows);
        let atoms = vec![Atom::new("S", vec![Term::Var(0), Term::Var(1)])];
        let h = enumerate_homomorphisms(&source, &atoms);
        assert_eq!(h.len(), source.relation("S").unwrap().len(), "seed {seed}");
    }
}

/// egd application terminates and leaves no two rows sharing a key.
#[test]
fn egds_converge_to_keyed_instance() {
    for seed in 0..24u64 {
        let rows = Rng(seed ^ 0x2222).pairs(1, 25, 4, 6);
        let t = RelationSchema::with_any_columns("T", &["k", "v"]);
        let schema = Schema::from_relations(vec![t]).unwrap();
        let mut inst = Instance::new(schema);
        for (k, v) in &rows {
            let val = if *v == 0 {
                Value::Labeled(*v as u64 + 100)
            } else {
                Value::int(*v as i64)
            };
            inst.insert(
                "T",
                Tuple::new(vec![Value::int(*k as i64), val]),
                ConflictPolicy::Allow,
            )
            .unwrap();
        }
        let egds = vec![Egd {
            relation: "T".into(),
            key: vec![0],
        }];
        let out = apply_egds(&mut inst, &egds);
        assert!(out.rounds < 50, "seed {seed}");
        // Keys are unique up to recorded violations.
        let rel = inst.relation("T").unwrap();
        let mut per_key: std::collections::HashMap<Value, usize> = std::collections::HashMap::new();
        for t in rel.iter() {
            *per_key.entry(t.values()[0].clone()).or_insert(0) += 1;
        }
        let extra: usize = per_key.values().map(|c| c - 1).sum();
        assert!(extra <= out.violations, "seed {seed}");
    }
}

/// Core minimisation never removes all-constant tuples and never increases
/// the instance.
#[test]
fn minimisation_is_safe() {
    for seed in 0..24u64 {
        let rows = Rng(seed ^ 0x3333).pairs(1, 25, 4, 6);
        let t = RelationSchema::with_any_columns("T", &["k", "v"]);
        let schema = Schema::from_relations(vec![t]).unwrap();
        let mut inst = Instance::new(schema);
        let mut constant_rows = std::collections::HashSet::new();
        for (k, v) in &rows {
            let val = if *v == 0 {
                Value::Labeled(*k as u64)
            } else {
                Value::int(*v as i64)
            };
            let tup = Tuple::new(vec![Value::int(*k as i64), val]);
            if tup.nulls() == 0 {
                constant_rows.insert(tup.clone());
            }
            inst.insert("T", tup, ConflictPolicy::Allow).unwrap();
        }
        let before = inst.total_tuples();
        core::minimize(&mut inst);
        assert!(inst.total_tuples() <= before, "seed {seed}");
        for t in constant_rows {
            assert!(
                inst.relation("T").unwrap().iter().any(|u| u == &t),
                "seed {seed}"
            );
        }
    }
}

/// MapMerge correlation preserves the chased CONSTANTS (it only merges
/// existentials, never drops source data).
#[test]
fn mapmerge_preserves_constants() {
    for seed in 0..16u64 {
        let rows = Rng(seed ^ 0x4444).pairs(1, 15, 5, 5);
        let source = source_with(&rows);
        let tgds = vec![
            demo_tgd(),
            // A second, overlapping mapping with the same premise.
            Tgd::new(
                vec![Atom::new("S", vec![Term::Var(0), Term::Var(1)])],
                vec![Atom::new(
                    "T",
                    vec![Term::Var(0), Term::Var(1), Term::Var(7)],
                )],
            ),
        ];
        let correlated = correlate(tgds.clone());
        assert!(correlated.len() <= tgds.len(), "seed {seed}");

        let run = |mappings: &[Tgd]| {
            let mut target = Instance::new(target_schema());
            let mut nulls = NullFactory::new();
            chase(&source, &mut target, mappings, &mut nulls).unwrap();
            let mut consts = std::collections::HashSet::new();
            for (_, rel) in target.relations() {
                for t in rel.iter() {
                    for v in t.values() {
                        if v.is_constant() {
                            consts.insert(v.clone());
                        }
                    }
                }
            }
            (target.stats(), consts)
        };
        let (clio_stats, clio_consts) = run(&tgds);
        let (mm_stats, mm_consts) = run(&correlated);
        assert_eq!(clio_consts, mm_consts, "seed {seed}");
        assert!(mm_stats.atoms() <= clio_stats.atoms(), "seed {seed}");
    }
}

/// The Correspondences hash lookup agrees with a linear scan.
#[test]
fn correspondence_lookup_matches_scan() {
    for seed in 0..24u64 {
        let mut rng = Rng(seed ^ 0x5555);
        let pairs = rng.pairs(0, 20, 6, 6);
        let probe = rng.below(6) as u8;
        let named: Vec<(String, String)> = pairs
            .iter()
            .map(|(s, t)| (format!("s{s}"), format!("t{t}")))
            .collect();
        let sigma = Correspondences::from_name_pairs(named.clone());
        let probe_name = format!("s{probe}");
        let via_lookup = sigma.target_label(None, &probe_name).map(str::to_owned);
        let via_scan = named
            .iter()
            .find(|(s, _)| s == &probe_name)
            .map(|(_, t)| t.clone());
        assert_eq!(via_lookup, via_scan, "seed {seed}");
    }
}
