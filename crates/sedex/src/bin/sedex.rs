//! The `sedex` command-line tool: run a data exchange described by a
//! scenario file (see [`sedex::textfmt`] for the format).
//!
//! ```text
//! sedex run <file.sdx> [--engine sedex|edex|clio|mapmerge|spicy]
//!                      [--threads N] [--batch-size N]
//!                      [--parallel-threshold N]
//!                      [--metrics-out <path>] [--slow-ms N]
//!                      [--sql] [--xml-sample] [--quiet] [--verbose]
//! sedex check <file.sdx>        # parse + validate only
//! sedex trees <file.sdx>        # print source/target relation trees
//! sedex gen <kind> [--tuples N] # emit a ready-to-run scenario file
//! sedex serve [--addr A] [--workers N] [--shards N] [--queue-depth N]
//!             [--idle-ttl SECS] [--metrics] [--slow-ms N]
//!             [--engine-threads N] [--parallel-threshold N]
//!             [--data-dir DIR] [--fsync always|every-N|off]
//!             [--snapshot-every N] [--request-timeout MS]
//!             [--max-conns N] [--shed-queue-depth N]
//!             [--pipeline-window N] [--trace-buffer N]
//!             [--cluster] [--node-id ID] [--advertise A]
//!             [--peers A,B,...] [--heartbeat-ms N] [--failover-ms N]
//!             [--replication-factor R]
//! sedex cluster status [--addr A]  # one node's ring + replication view
//! sedex recover <dir>           # inspect a --data-dir: what would recover?
//! ```
//!
//! `--metrics-out` writes the exchange's metrics registry as Prometheus
//! text exposition after the run; `--slow-ms` logs a one-line phase
//! breakdown to stderr for every exchange slower than the threshold.
//!
//! `--data-dir` turns on durability: every acknowledged operation is
//! written ahead to a per-shard CRC-checked log, snapshots bound replay
//! time, and a restart on the same directory recovers all sessions —
//! warm script repositories included.
//!
//! `--trace-buffer N` turns on request-lifecycle tracing: every request
//! gets a stage-decomposed span (read/parse/queue_wait/exec/flush) kept
//! in an N-slot in-memory flight recorder, dumped over the wire with the
//! `TRACE` command. Off by default — the untraced hot path performs no
//! extra clock reads.
//!
//! `--cluster` (or any of the cluster flags) starts the node in cluster
//! mode: session names are consistent-hashed to owner nodes, non-owners
//! answer `ERR MOVED <node> <addr>`, the WAL is shipped live to the node's
//! ring successors as warm standbys, and a planned `LEAVE` migrates every
//! owned session out before the node departs. `--peers` lists seed
//! addresses to `JOIN` through at startup; `--replication-factor R`
//! (default 2) keeps every acknowledged record on R nodes — the origin
//! plus its R−1 distinct alive successors — so the cluster survives R−1
//! simultaneous node failures.
//!
//! `gen` kinds: `university`, `stb`, `amb`, and the ten STBenchmark basics
//! (`cp`, `cv`, `hp`, `sk`, `vp`, `un`, `ne`, `de`, `ko`, `av`).

use std::process::ExitCode;

use sedex::core::{sql_statements, EdexEngine, SedexConfig, SedexEngine};
use sedex::mapping::{ClioEngine, MapMergeEngine, SpicyEngine};
use sedex::textfmt::{parse_scenario, ScenarioFile};
use sedex::treerep::{relation_tree, TreeConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage:\n  sedex run <file.sdx> [--engine sedex|edex|clio|mapmerge|spicy] [--threads N] [--batch-size N] [--parallel-threshold N] [--metrics-out <path>] [--slow-ms N] [--sql] [--quiet] [--verbose]\n  sedex check <file.sdx>\n  sedex trees <file.sdx>\n  sedex gen <university|stb|amb|cp|cv|hp|sk|vp|un|ne|de|ko|av> [--tuples N]\n  sedex serve [--addr host:port] [--workers N] [--shards N] [--queue-depth N] [--idle-ttl SECS] [--metrics] [--slow-ms N] [--engine-threads N] [--parallel-threshold N] [--data-dir DIR] [--fsync always|every-N|off] [--snapshot-every N] [--request-timeout MS] [--max-conns N] [--shed-queue-depth N] [--pipeline-window N] [--trace-buffer N] [--cluster] [--node-id ID] [--advertise host:port] [--peers host:port,...] [--heartbeat-ms N] [--failover-ms N] [--replication-factor R]\n  sedex cluster status [--addr host:port]\n  sedex recover <data-dir>"
        .to_owned()
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or_else(usage)?;
    if cmd == "gen" {
        return generate(&args[1..]);
    }
    if cmd == "serve" {
        return serve(&args[1..]);
    }
    if cmd == "cluster" {
        return cluster_command(&args[1..]);
    }
    if cmd == "recover" {
        let dir = args.get(1).ok_or_else(usage)?;
        let report = sedex::durable::inspect(std::path::Path::new(dir))
            .map_err(|e| format!("inspecting {dir}: {e}"))?;
        print!("{report}");
        return Ok(());
    }
    let path = args.get(1).ok_or_else(usage)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let file = parse_scenario(&text).map_err(|e| format!("{path}:{e}"))?;

    match cmd.as_str() {
        "check" => {
            println!(
                "{path}: OK — {} source relations, {} target relations, {} correspondences, {} tuples, {} CFDs",
                file.scenario.source.len(),
                file.scenario.target.len(),
                file.scenario.sigma.len(),
                file.instance.total_tuples(),
                file.cfds.len(),
            );
            Ok(())
        }
        "trees" => {
            let cfg = TreeConfig::default();
            println!("== source relation trees ==");
            for r in file.scenario.source.relations() {
                let rt = relation_tree(&file.scenario.source, &r.name, &cfg)
                    .map_err(|e| e.to_string())?;
                println!(
                    "-- {} (height {}) --\n{}",
                    r.name,
                    rt.height(),
                    rt.tree.render()
                );
            }
            println!("== target relation trees ==");
            for r in file.scenario.target.relations() {
                let rt = relation_tree(&file.scenario.target, &r.name, &cfg)
                    .map_err(|e| e.to_string())?;
                println!(
                    "-- {} (height {}) --\n{}",
                    r.name,
                    rt.height(),
                    rt.tree.render()
                );
            }
            Ok(())
        }
        "run" => run_exchange(&file, &args[2..]),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

/// `sedex gen <kind> [--tuples N]`: print a complete scenario file built
/// from the built-in generators, ready for `sedex run`.
fn generate(args: &[String]) -> Result<(), String> {
    use sedex::scenarios::ambiguity::amb;
    use sedex::scenarios::ibench::{stb, IbenchConfig};
    use sedex::scenarios::stbench::{basic, BasicKind};
    use sedex::scenarios::university;
    use sedex::textfmt::{render_data, render_scenario};

    let kind = args.first().ok_or_else(usage)?.as_str();
    let mut tuples = 10usize;
    let mut it = args[1..].iter();
    while let Some(f) = it.next() {
        match f.as_str() {
            "--tuples" => {
                tuples = it
                    .next()
                    .ok_or_else(|| "--tuples needs a value".to_owned())?
                    .parse()
                    .map_err(|e| format!("--tuples: {e}"))?;
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }

    let small = IbenchConfig {
        instances_per_primitive: 2,
        ..IbenchConfig::default()
    };
    let (scenario, instance) = match kind {
        "university" => {
            let s = university::scenario();
            let i = university::fig3_instance().map_err(|e| e.to_string())?;
            (s, i)
        }
        "stb" => {
            let s = stb(&small);
            let i = s.populate(tuples, 1).map_err(|e| e.to_string())?;
            (s, i)
        }
        "amb" => {
            let s = amb(&small, 2);
            let i = s.populate(tuples, 1).map_err(|e| e.to_string())?;
            (s, i)
        }
        basic_kind => {
            let kind = BasicKind::all()
                .into_iter()
                .find(|k| k.name().eq_ignore_ascii_case(basic_kind))
                .ok_or_else(|| format!("unknown scenario kind `{basic_kind}`\n{}", usage()))?;
            let s = basic(kind);
            let i = s.populate(tuples, 1).map_err(|e| e.to_string())?;
            (s, i)
        }
    };
    println!("# generated by `sedex gen {kind}`");
    print!("{}", render_scenario(&scenario));
    println!("\n[data]");
    print!("{}", render_data(&instance));
    Ok(())
}

/// `sedex serve [--addr host:port] [--workers N] [--shards N]
/// [--queue-depth N] [--idle-ttl SECS] [--metrics] [--slow-ms N]
/// [--engine-threads N] [--parallel-threshold N] [--data-dir DIR]
/// [--fsync always|every-N|off] [--snapshot-every N]
/// [--request-timeout MS] [--max-conns N] [--shed-queue-depth N]
/// [--pipeline-window N] [--trace-buffer N]`:
/// run the multi-tenant exchange server until a wire `SHUTDOWN` arrives.
fn serve(flags: &[String]) -> Result<(), String> {
    use sedex::service::{ClusterConfig, Server, ServerConfig};

    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7878".to_owned(),
        ..ServerConfig::default()
    };
    let mut cluster: Option<ClusterConfig> = None;
    let mut it = flags.iter();
    while let Some(f) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match f.as_str() {
            "--addr" => cfg.addr = value("--addr")?.clone(),
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--shards" => {
                cfg.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--queue-depth" => {
                cfg.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--idle-ttl" => {
                let secs: u64 = value("--idle-ttl")?
                    .parse()
                    .map_err(|e| format!("--idle-ttl: {e}"))?;
                cfg.idle_ttl = (secs > 0).then(|| std::time::Duration::from_secs(secs));
            }
            "--metrics" => cfg.metrics = true,
            "--slow-ms" => {
                let ms: u64 = value("--slow-ms")?
                    .parse()
                    .map_err(|e| format!("--slow-ms: {e}"))?;
                cfg.slow_exchange_threshold = Some(std::time::Duration::from_millis(ms));
            }
            "--engine-threads" => {
                cfg.engine_threads = value("--engine-threads")?
                    .parse()
                    .map_err(|e| format!("--engine-threads: {e}"))?;
            }
            "--parallel-threshold" => {
                cfg.parallel_threshold = value("--parallel-threshold")?
                    .parse()
                    .map_err(|e| format!("--parallel-threshold: {e}"))?;
            }
            "--data-dir" => {
                cfg.data_dir = Some(std::path::PathBuf::from(value("--data-dir")?));
            }
            "--fsync" => {
                cfg.fsync = value("--fsync")?
                    .parse()
                    .map_err(|e| format!("--fsync: {e}"))?;
            }
            "--snapshot-every" => {
                cfg.snapshot_every = value("--snapshot-every")?
                    .parse()
                    .map_err(|e| format!("--snapshot-every: {e}"))?;
            }
            "--request-timeout" => {
                let ms: u64 = value("--request-timeout")?
                    .parse()
                    .map_err(|e| format!("--request-timeout: {e}"))?;
                cfg.request_timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--max-conns" => {
                cfg.max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?;
            }
            "--shed-queue-depth" => {
                cfg.shed_queue_depth = value("--shed-queue-depth")?
                    .parse()
                    .map_err(|e| format!("--shed-queue-depth: {e}"))?;
            }
            "--pipeline-window" => {
                cfg.pipeline_window = value("--pipeline-window")?
                    .parse()
                    .map_err(|e| format!("--pipeline-window: {e}"))?;
            }
            "--trace-buffer" => {
                cfg.trace_buffer = value("--trace-buffer")?
                    .parse()
                    .map_err(|e| format!("--trace-buffer: {e}"))?;
            }
            "--cluster" => {
                cluster.get_or_insert_with(ClusterConfig::default);
            }
            "--node-id" => {
                cluster.get_or_insert_with(ClusterConfig::default).node_id =
                    value("--node-id")?.clone();
            }
            "--advertise" => {
                cluster.get_or_insert_with(ClusterConfig::default).advertise =
                    value("--advertise")?.clone();
            }
            "--peers" => {
                cluster.get_or_insert_with(ClusterConfig::default).peers = value("--peers")?
                    .split(',')
                    .filter(|p| !p.is_empty())
                    .map(str::to_owned)
                    .collect();
            }
            "--heartbeat-ms" => {
                let ms: u64 = value("--heartbeat-ms")?
                    .parse()
                    .map_err(|e| format!("--heartbeat-ms: {e}"))?;
                cluster.get_or_insert_with(ClusterConfig::default).heartbeat =
                    std::time::Duration::from_millis(ms.max(1));
            }
            "--failover-ms" => {
                let ms: u64 = value("--failover-ms")?
                    .parse()
                    .map_err(|e| format!("--failover-ms: {e}"))?;
                cluster.get_or_insert_with(ClusterConfig::default).failover =
                    std::time::Duration::from_millis(ms.max(1));
            }
            "--replication-factor" => {
                let r: usize = value("--replication-factor")?
                    .parse()
                    .map_err(|e| format!("--replication-factor: {e}"))?;
                cluster
                    .get_or_insert_with(ClusterConfig::default)
                    .replication = r.max(1);
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    let node_id = cluster.as_ref().map(|c| c.node_id.clone());
    cfg.cluster = cluster;
    let workers = cfg.workers;
    let metrics = cfg.metrics;
    let trace_buffer = cfg.trace_buffer;
    let durable = cfg.data_dir.clone();
    let handle = Server::start(cfg).map_err(|e| e.to_string())?;
    println!(
        "sedex-service listening on {} ({} workers{}{}{}); stop with the SHUTDOWN command",
        handle.local_addr(),
        workers,
        if metrics {
            ", session tracing on — scrape with METRICS"
        } else {
            ""
        },
        if trace_buffer > 0 {
            format!(
                ", request tracing on (flight recorder of {trace_buffer} spans — dump with TRACE)"
            )
        } else {
            String::new()
        },
        match &durable {
            Some(dir) => format!(", durable in {}", dir.display()),
            None => String::new(),
        }
    );
    if let Some(id) = node_id {
        println!("cluster mode on: node {id} (inspect with `sedex cluster status`)");
    }
    handle.join();
    println!("sedex-service stopped");
    Ok(())
}

/// `sedex cluster status [--addr host:port]`: print one node's view of
/// the ring, its standby holdings, and replication progress (the same
/// block `CLUSTER` returns over plain `nc`).
fn cluster_command(args: &[String]) -> Result<(), String> {
    use sedex::service::Client;

    let sub = args.first().ok_or_else(usage)?;
    if sub != "status" {
        return Err(format!("unknown cluster subcommand `{sub}`\n{}", usage()));
    }
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut it = args[1..].iter();
    while let Some(f) = it.next() {
        match f.as_str() {
            "--addr" => {
                addr = it
                    .next()
                    .ok_or_else(|| "--addr needs a value".to_owned())?
                    .clone();
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    let mut client =
        Client::connect(addr.as_str()).map_err(|e| format!("connecting {addr}: {e}"))?;
    let reply = client.cluster().map_err(|e| e.to_string())?;
    if !reply.ok {
        return Err(reply.head);
    }
    println!("{}", reply.head);
    let body = reply.body();
    if !body.is_empty() {
        println!("{body}");
    }
    Ok(())
}

fn run_exchange(file: &ScenarioFile, flags: &[String]) -> Result<(), String> {
    use sedex::core::observe::{render_prometheus, MetricsRegistry, RegistryObserver};

    let mut engine_name = "sedex".to_owned();
    let mut show_sql = false;
    let mut quiet = false;
    let mut verbose = false;
    let mut metrics_out: Option<String> = None;
    let mut config = SedexConfig::default();
    let mut it = flags.iter();
    while let Some(f) = it.next() {
        match f.as_str() {
            "--engine" => {
                engine_name = it
                    .next()
                    .ok_or_else(|| "--engine needs a value".to_owned())?
                    .clone();
            }
            "--threads" => {
                config.threads = it
                    .next()
                    .ok_or_else(|| "--threads needs a value".to_owned())?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--batch-size" => {
                config.batch_size = it
                    .next()
                    .ok_or_else(|| "--batch-size needs a value".to_owned())?
                    .parse()
                    .map_err(|e| format!("--batch-size: {e}"))?;
            }
            "--parallel-threshold" => {
                config.parallel_threshold = it
                    .next()
                    .ok_or_else(|| "--parallel-threshold needs a value".to_owned())?
                    .parse()
                    .map_err(|e| format!("--parallel-threshold: {e}"))?;
            }
            "--metrics-out" => {
                metrics_out = Some(
                    it.next()
                        .ok_or_else(|| "--metrics-out needs a path".to_owned())?
                        .clone(),
                );
            }
            "--slow-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or_else(|| "--slow-ms needs a value".to_owned())?
                    .parse()
                    .map_err(|e| format!("--slow-ms: {e}"))?;
                config.slow_exchange_threshold = Some(std::time::Duration::from_millis(ms));
            }
            "--sql" => show_sql = true,
            "--quiet" => quiet = true,
            "--verbose" => verbose = true,
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if metrics_out.is_some() && engine_name != "sedex" {
        return Err("--metrics-out requires --engine sedex".to_owned());
    }
    let registry = metrics_out.as_ref().map(|_| MetricsRegistry::new());

    let s = &file.scenario;
    let (out, summary) = match engine_name.as_str() {
        "sedex" => {
            let mut engine = SedexEngine::with_config(config).with_cfds(file.cfds.clone());
            if let Some(reg) = &registry {
                engine = engine.with_observer(std::sync::Arc::new(RegistryObserver::new(reg)));
            }
            let (out, r) = engine
                .exchange(&file.instance, &s.target, &s.sigma)
                .map_err(|e| e.to_string())?;
            let summary = if verbose {
                format!("sedex:\n{}", r.verbose())
            } else {
                format!("sedex: {r}")
            };
            (out, summary)
        }
        "edex" => {
            let (out, r) = EdexEngine::new()
                .exchange(&file.instance, &s.target, &s.sigma)
                .map_err(|e| e.to_string())?;
            (
                out,
                format!("edex: {} | Tg {:?} Te {:?}", r.stats, r.tg, r.te),
            )
        }
        "clio" => {
            let engine = ClioEngine::new(&s.source, &s.target, &s.sigma);
            let (out, r) = engine
                .run(&file.instance, &s.target)
                .map_err(|e| e.to_string())?;
            (out, format!("clio: {} | {} mappings", r.stats, r.tgd_count))
        }
        "mapmerge" => {
            let engine = MapMergeEngine::new(&s.source, &s.target, &s.sigma);
            let (out, r) = engine
                .run(&file.instance, &s.target)
                .map_err(|e| e.to_string())?;
            (
                out,
                format!(
                    "mapmerge: {} | {} correlated mappings",
                    r.stats, r.tgd_count
                ),
            )
        }
        "spicy" => {
            let engine = SpicyEngine::new(&s.source, &s.target, &s.sigma);
            let (out, r) = engine
                .run(&file.instance, &s.target)
                .map_err(|e| e.to_string())?;
            (
                out,
                format!(
                    "spicy: {} | {} mappings, {} egd merges, {} core removals",
                    r.stats, r.tgd_count, r.egd_merged, r.core_removed
                ),
            )
        }
        other => {
            return Err(format!(
                "unknown engine `{other}` (sedex|edex|clio|mapmerge|spicy)"
            ))
        }
    };

    if !quiet {
        print!("{out}");
    }
    println!("{summary}");

    if let (Some(path), Some(reg)) = (&metrics_out, &registry) {
        std::fs::write(path, render_prometheus(reg)).map_err(|e| format!("writing {path}: {e}"))?;
        println!("metrics: Prometheus exposition written to {path}");
    }

    if show_sql {
        // Render the SEDEX transformation scripts for each source tuple
        // shape (one sample per shape).
        use sedex::core::scriptgen::generate_script;
        use sedex::core::translate::{slot_values, translate};
        use sedex::core::Matcher;
        use sedex::treerep::{post_order_key, reduce_to_relation_tree, tuple_tree, SchemaForest};
        let cfg = TreeConfig::default();
        let forest = SchemaForest::new(&s.target, &cfg).map_err(|e| e.to_string())?;
        let matcher = Matcher::new(&forest, 2, 1);
        let mut seen_shapes = std::collections::HashSet::new();
        println!("\n-- transformation scripts (one sample per tuple shape) --");
        for (rel, inst) in file.instance.relations() {
            for row in 0..inst.len() as u32 {
                let tx = tuple_tree(&file.instance, rel, row, &cfg).map_err(|e| e.to_string())?;
                let key = format!("{rel}|{}", post_order_key(&reduce_to_relation_tree(&tx)));
                if !seen_shapes.insert(key.clone()) {
                    continue;
                }
                let Some(m) = matcher.best_match(&tx, &s.sigma) else {
                    continue;
                };
                let Some(tr) = forest.tree(&m.relation) else {
                    continue;
                };
                let ty = translate(&tx, tr, &s.sigma);
                let script = generate_script(&ty, &s.target);
                if script.is_empty() {
                    continue;
                }
                println!("-- shape {key}");
                print!("{}", sql_statements(&script, &s.target, &slot_values(&tx)));
            }
        }
    }
    Ok(())
}
