//! # SEDEX — Scalable Entity Preserving Data Exchange
//!
//! A from-scratch Rust implementation of the data-exchange system of
//! Sekhavat & Parsons (IEEE TKDE 2016), together with every substrate its
//! evaluation depends on: an in-memory relational engine, the tree
//! representation of schemas and data, windowed pq-gram similarity, a
//! schema-mapping stack (tgds, chase, egds, core) powering Clio and ++Spicy
//! baselines, the EDEX predecessor, and iBench/STBenchmark-style scenario
//! generators.
//!
//! ## Quickstart
//!
//! ```
//! use sedex::prelude::*;
//!
//! // Source: people with optional student/employee ids (a collapsed
//! // generalization). Target: separate Grad / Prof tables.
//! let inst = RelationSchema::with_any_columns("Inst", &["name", "stId", "empId"])
//!     .primary_key(&["name"]).unwrap();
//! let source = Schema::from_relations(vec![inst]).unwrap();
//!
//! let grad = RelationSchema::with_any_columns("Grad", &["gname", "gstId"])
//!     .primary_key(&["gname"]).unwrap();
//! let prof = RelationSchema::with_any_columns("Prof", &["pname", "pempId"])
//!     .primary_key(&["pname"]).unwrap();
//! let target = Schema::from_relations(vec![grad, prof]).unwrap();
//!
//! let sigma = Correspondences::from_name_pairs([
//!     ("name", "gname"), ("name", "pname"),
//!     ("stId", "gstId"), ("empId", "pempId"),
//! ]);
//!
//! let mut src = Instance::new(source);
//! src.insert("Inst", tuple!["Bob", "st-1234", Value::Null], ConflictPolicy::Reject).unwrap();
//! src.insert("Inst", tuple!["Eve", Value::Null, "e-77"], ConflictPolicy::Reject).unwrap();
//!
//! let (out, report) = SedexEngine::new().exchange(&src, &target, &sigma).unwrap();
//! // Bob is a student, Eve an employee — each lands in exactly one table.
//! assert_eq!(out.relation("Grad").unwrap().len(), 1);
//! assert_eq!(out.relation("Prof").unwrap().len(), 1);
//! assert_eq!(report.stats.nulls, 0);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`storage`] | values, schemas, constraint-checked instances |
//! | [`treerep`] | relation trees, tuple trees, schema forests (paper §3) |
//! | [`pqgram`]  | pq-gram profiles and the normalized distance (§4.3) |
//! | [`mapping`] | correspondences, tgds/egds, chase, Clio & ++Spicy |
//! | [`core`]    | the SEDEX engine, scripts, repository, CFDs, EDEX (§4) |
//! | [`scenarios`] | iBench/STBenchmark-style generators (§5) |
//! | [`durable`] | write-ahead log, snapshots, crash recovery |
//! | [`service`] | the multi-tenant exchange server and client |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sedex_core as core;
pub use sedex_durable as durable;
pub use sedex_mapping as mapping;
pub use sedex_pqgram as pqgram;
pub use sedex_scenarios as scenarios;
pub use sedex_scenarios::textfmt;
pub use sedex_service as service;
pub use sedex_storage as storage;
pub use sedex_treerep as treerep;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use sedex_core::{
        Cfd, CfdInterpreter, EdexEngine, ExchangeReport, SedexConfig, SedexEngine, SedexSession,
    };
    pub use sedex_mapping::{ClioEngine, Correspondences, Egd, MapMergeEngine, SpicyEngine};
    pub use sedex_scenarios::Scenario;
    pub use sedex_storage::{
        tuple, ConflictPolicy, Instance, InstanceStats, RelationSchema, Schema, Tuple, Value,
    };
}
