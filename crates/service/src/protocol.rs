//! The wire protocol: line-based text, request in, framed text block out.
//!
//! Requests are single lines, except `OPEN`, whose `.sdx` scenario body
//! follows on subsequent lines up to a lone `END`:
//!
//! ```text
//! HELLO [text|binary]       # negotiate the connection's protocol
//! OPEN <session>            # then scenario lines …, then END
//! PUSH <session> <Relation>: v1, v2, _      # feed + exchange one tuple
//! FEED <session> <Relation>: v1, v2         # feed only (context/dimension)
//! FLUSH <session>           # exchange everything fed but not yet seen
//! STATS                     # server-wide counters + load signals
//! STATS <session>           # the session's verbose ExchangeReport
//! METRICS                   # Prometheus text exposition of the registry
//! TRACE [recent|slow] [K]   # dump flight-recorder request spans
//! SQL <session>             # target instance as INSERT statements
//! CLOSE <session>           # finish the session, report final counters
//! SHUTDOWN                  # graceful stop: drain in-flight work, exit
//! ```
//!
//! Every response is a block of text lines terminated by a line containing
//! a single `.` — readable over `nc`, trivially parseable by the client.
//! The first line starts with `OK` or `ERR`.
//!
//! `HELLO binary` switches the connection to the length-prefixed binary
//! framing defined in [`crate::wire`] (requests may be pipelined and tuples
//! batched there); every connection starts in, and text stays, the
//! `nc`-friendly default.

use std::fmt;

use sedex_storage::Tuple;

/// Maximum accepted scenario-body size for `OPEN` (defense against a
/// client streaming garbage forever).
pub const MAX_OPEN_BODY_LINES: usize = 100_000;

/// Maximum accepted request-line length. A longer line is answered
/// `ERR TOO_LARGE` and the connection closed (the stream cannot be
/// resynchronized mid-line).
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Maximum accepted `OPEN` body size in bytes (on top of the line cap).
pub const MAX_OPEN_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Maximum accepted `PUSH`/`FEED` data-line payload. One tuple has no
/// business being this long; larger ones are answered `ERR TOO_LARGE`.
pub const MAX_DATA_LINE_BYTES: usize = 64 * 1024;

/// Maximum rows accepted in one binary `PUSH_BATCH` frame.
pub const MAX_BATCH_ROWS: usize = 65_536;

/// Maximum span count a single `TRACE` request may ask for (the flight
/// recorder itself is typically far smaller).
pub const MAX_TRACE_K: u32 = 10_000;

/// Default span count when `TRACE` is issued without a `K`.
pub const DEFAULT_TRACE_K: u32 = 10;

/// The protocol a connection speaks. Every connection starts in
/// [`Proto::Text`]; `HELLO binary` switches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// Line-based, `nc`-friendly text (the default).
    Text,
    /// Length-prefixed binary frames ([`crate::wire`]): pipelining and
    /// batched `PUSH` supported.
    Binary,
}

impl Proto {
    /// Lower-case protocol name, as used in `HELLO`, metrics labels and
    /// `STATS` output.
    pub fn name(self) -> &'static str {
        match self {
            Proto::Text => "text",
            Proto::Binary => "binary",
        }
    }
}

/// Recognizes a `HELLO` negotiation line. Returns `None` when the line is
/// not a `HELLO` at all, `Some(Ok(proto))` for a valid negotiation
/// (`HELLO` alone means text), and `Some(Err(_))` for an unknown protocol
/// argument.
pub fn parse_hello(line: &str) -> Option<Result<Proto, ProtocolError>> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    if !verb.eq_ignore_ascii_case("HELLO") {
        return None;
    }
    Some(match rest.to_ascii_lowercase().as_str() {
        "" | "text" => Ok(Proto::Text),
        "binary" => Ok(Proto::Binary),
        other => Err(bad(format!(
            "HELLO: unknown protocol `{other}` (text|binary)"
        ))),
    })
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Open a named session with an inline scenario body.
    Open {
        /// Session (tenant) name.
        session: String,
        /// The `.sdx` scenario text (schemas, correspondences, optional
        /// seed data and CFDs).
        body: String,
    },
    /// Feed a tuple and exchange it immediately.
    Push {
        /// Session name.
        session: String,
        /// The `Relation: v1, v2, …` data line.
        line: String,
    },
    /// Feed a tuple without exchanging it (dimension/lookup data).
    Feed {
        /// Session name.
        session: String,
        /// The `Relation: v1, v2, …` data line.
        line: String,
    },
    /// Binary-frame `PUSH`: the tuple arrives already decoded.
    PushTuple {
        /// Session name.
        session: String,
        /// Target relation of the tuple.
        relation: String,
        /// The decoded tuple.
        tuple: Tuple,
    },
    /// Binary-frame `FEED`: the tuple arrives already decoded.
    FeedTuple {
        /// Session name.
        session: String,
        /// Target relation of the tuple.
        relation: String,
        /// The decoded tuple.
        tuple: Tuple,
    },
    /// Binary-frame batched `PUSH`: many rows exchanged in one request.
    PushBatch {
        /// Session name.
        session: String,
        /// `(relation, tuple)` rows, applied in order.
        rows: Vec<(String, Tuple)>,
    },
    /// Exchange every fed-but-unseen tuple.
    Flush {
        /// Session name.
        session: String,
    },
    /// Server-wide counters (`None`) or one session's report (`Some`).
    Stats {
        /// Session name, if per-session stats were requested.
        session: Option<String>,
    },
    /// Prometheus text exposition of the server's metrics registry.
    Metrics,
    /// Dump request-lifecycle spans from the flight recorder.
    Trace {
        /// `true` for the slowest-K spans, `false` for the most recent K.
        slow: bool,
        /// How many spans to return.
        k: u32,
    },
    /// Dump the session's target instance as SQL INSERT statements.
    Sql {
        /// Session name.
        session: String,
    },
    /// Finish and remove the session.
    Close {
        /// Session name.
        session: String,
    },
    /// Graceful server shutdown.
    Shutdown,
    /// Dump the cluster topology (ring version, members, standby state).
    Cluster,
    /// A node announces itself (or is announced) to the ring.
    Join {
        /// Joining node's id.
        node: String,
        /// Joining node's advertised address.
        addr: String,
    },
    /// Planned departure. `node: None` asks the *receiving* node to migrate
    /// its sessions out and leave; `node: Some(_)` is a membership
    /// announcement that the named node has left.
    Leave {
        /// Departing node, when this is an announcement.
        node: Option<String>,
    },
    /// Heartbeat from a peer node.
    Ping {
        /// Sending node's id.
        node: String,
    },
    /// Live session handoff from a leaving node (binary protocol only):
    /// the full exported session state, installed verbatim.
    Migrate {
        /// Session name.
        session: String,
        /// The scenario body the session was opened with.
        scenario: String,
        /// Requests served so far (tenant bookkeeping).
        requests: u64,
        /// Tuples pushed or fed so far (tenant bookkeeping).
        tuples_in: u64,
        /// Encoded [`SessionState`](sedex_core::SessionState) —
        /// `sedex_durable::encode_session_state` layout.
        state: Vec<u8>,
    },
    /// One replicated WAL record from a peer (binary protocol only).
    Repl {
        /// Origin node id.
        origin: String,
        /// Origin shard index.
        shard: u32,
        /// The raw WAL frame payload (`lsn u64 | kind u8 | body`).
        payload: Vec<u8>,
    },
}

impl Request {
    /// The session this request addresses, if any — used to route the
    /// request to its shard.
    pub fn session(&self) -> Option<&str> {
        match self {
            Request::Open { session, .. }
            | Request::Push { session, .. }
            | Request::Feed { session, .. }
            | Request::PushTuple { session, .. }
            | Request::FeedTuple { session, .. }
            | Request::PushBatch { session, .. }
            | Request::Flush { session }
            | Request::Sql { session }
            | Request::Close { session } => Some(session),
            Request::Stats { session } => session.as_deref(),
            Request::Migrate { session, .. } => Some(session),
            Request::Metrics
            | Request::Trace { .. }
            | Request::Shutdown
            | Request::Cluster
            | Request::Join { .. }
            | Request::Leave { .. }
            | Request::Ping { .. }
            | Request::Repl { .. } => None,
        }
    }

    /// True for the session-addressed client verbs that cluster routing
    /// applies to — the ones a non-owner answers with `MOVED`. Internal
    /// node-to-node verbs (`MIGRATE`, `REPL`) and introspection are exempt.
    pub fn is_routed(&self) -> bool {
        matches!(
            self,
            Request::Open { .. }
                | Request::Push { .. }
                | Request::Feed { .. }
                | Request::PushTuple { .. }
                | Request::FeedTuple { .. }
                | Request::PushBatch { .. }
                | Request::Flush { .. }
                | Request::Sql { .. }
                | Request::Close { .. }
        )
    }

    /// The canonical verb name, as stamped into request spans and
    /// slow-exchange records.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Open { .. } => "OPEN",
            Request::Push { .. } | Request::PushTuple { .. } => "PUSH",
            Request::Feed { .. } | Request::FeedTuple { .. } => "FEED",
            Request::PushBatch { .. } => "PUSH_BATCH",
            Request::Flush { .. } => "FLUSH",
            Request::Stats { .. } => "STATS",
            Request::Metrics => "METRICS",
            Request::Trace { .. } => "TRACE",
            Request::Sql { .. } => "SQL",
            Request::Close { .. } => "CLOSE",
            Request::Shutdown => "SHUTDOWN",
            Request::Cluster => "CLUSTER",
            Request::Join { .. } => "JOIN",
            Request::Leave { .. } => "LEAVE",
            Request::Ping { .. } => "PING",
            Request::Migrate { .. } => "MIGRATE",
            Request::Repl { .. } => "REPL",
        }
    }
}

/// A response block: `ok` decides the `OK`/`ERR` head line; `lines` are
/// appended verbatim before the closing `.`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Success flag.
    pub ok: bool,
    /// Head-line text (after `OK `/`ERR `).
    pub head: String,
    /// Additional body lines.
    pub lines: Vec<String>,
}

impl Response {
    /// A single-line success response.
    pub fn ok(head: impl Into<String>) -> Self {
        Response {
            ok: true,
            head: head.into(),
            lines: Vec::new(),
        }
    }

    /// A multi-line success response.
    pub fn ok_with(head: impl Into<String>, body: impl fmt::Display) -> Self {
        Response {
            ok: true,
            head: head.into(),
            lines: body.to_string().lines().map(str::to_owned).collect(),
        }
    }

    /// An error response.
    pub fn err(message: impl Into<String>) -> Self {
        Response {
            ok: false,
            head: message.into(),
            lines: Vec::new(),
        }
    }

    /// Serialize as the wire block (head line, body lines, closing `.`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(if self.ok { "OK" } else { "ERR" });
        if !self.head.is_empty() {
            out.push(' ');
            // Head must stay one line; fold any stray newlines.
            out.push_str(&self.head.replace('\n', " "));
        }
        out.push('\n');
        for l in &self.lines {
            // A body line of exactly "." would terminate the block early;
            // escape it the classic SMTP way (leading dot doubled).
            if l.starts_with('.') {
                out.push('.');
            }
            out.push_str(l);
            out.push('\n');
        }
        out.push_str(".\n");
        out
    }
}

/// Errors produced while parsing a request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn bad(msg: impl Into<String>) -> ProtocolError {
    ProtocolError(msg.into())
}

/// Validate a session name: non-empty, word characters only, bounded.
pub fn valid_session_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
}

/// Parse one request line (for `OPEN`, the caller supplies the already
/// collected body).
///
/// `PUSH`/`FEED` keep everything after the session token verbatim — it is
/// a `[data]`-section line and may contain spaces inside quotes.
pub fn parse_request(line: &str, open_body: Option<String>) -> Result<Request, ProtocolError> {
    let line = line.trim();
    if line.is_empty() {
        return Err(bad("empty request"));
    }
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    let need_session = |rest: &str| -> Result<String, ProtocolError> {
        if !valid_session_name(rest) {
            return Err(bad(format!("invalid session name `{rest}`")));
        }
        Ok(rest.to_owned())
    };
    match verb.to_ascii_uppercase().as_str() {
        "OPEN" => {
            let session = need_session(rest)?;
            let body = open_body.ok_or_else(|| bad("OPEN requires a scenario body"))?;
            Ok(Request::Open { session, body })
        }
        "PUSH" | "FEED" => {
            let (session, data) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| bad(format!("{verb} <session> <Relation>: v1, v2, …")))?;
            let session = need_session(session)?;
            let data = data.trim();
            if data.len() > MAX_DATA_LINE_BYTES {
                return Err(bad(format!(
                    "TOO_LARGE {verb} data line is {} bytes (limit {MAX_DATA_LINE_BYTES})",
                    data.len()
                )));
            }
            if !data.contains(':') {
                return Err(bad(format!(
                    "{verb}: expected a data line `Relation: v1, v2, …`, got `{data}`"
                )));
            }
            let line = data.to_owned();
            if verb.eq_ignore_ascii_case("PUSH") {
                Ok(Request::Push { session, line })
            } else {
                Ok(Request::Feed { session, line })
            }
        }
        "FLUSH" => Ok(Request::Flush {
            session: need_session(rest)?,
        }),
        "STATS" => {
            if rest.is_empty() {
                Ok(Request::Stats { session: None })
            } else {
                Ok(Request::Stats {
                    session: Some(need_session(rest)?),
                })
            }
        }
        "METRICS" => {
            if rest.is_empty() {
                Ok(Request::Metrics)
            } else {
                Err(bad("METRICS takes no arguments"))
            }
        }
        "TRACE" => {
            let mut slow = false;
            let mut k = DEFAULT_TRACE_K;
            let mut tokens = rest.split_whitespace();
            if let Some(mode) = tokens.next() {
                match mode.to_ascii_lowercase().as_str() {
                    "recent" => slow = false,
                    "slow" => slow = true,
                    other => {
                        return Err(bad(format!(
                            "TRACE: unknown mode `{other}` (TRACE [recent|slow] [K])"
                        )))
                    }
                }
            }
            if let Some(count) = tokens.next() {
                k = count
                    .parse::<u32>()
                    .ok()
                    .filter(|k| (1..=MAX_TRACE_K).contains(k))
                    .ok_or_else(|| {
                        bad(format!("TRACE: K must be an integer in 1..={MAX_TRACE_K}"))
                    })?;
            }
            if tokens.next().is_some() {
                return Err(bad("TRACE takes at most a mode and a count"));
            }
            Ok(Request::Trace { slow, k })
        }
        "SQL" => Ok(Request::Sql {
            session: need_session(rest)?,
        }),
        "CLOSE" => Ok(Request::Close {
            session: need_session(rest)?,
        }),
        "SHUTDOWN" => {
            if rest.is_empty() {
                Ok(Request::Shutdown)
            } else {
                Err(bad("SHUTDOWN takes no arguments"))
            }
        }
        "CLUSTER" => {
            if rest.is_empty() {
                Ok(Request::Cluster)
            } else {
                Err(bad("CLUSTER takes no arguments"))
            }
        }
        "JOIN" => {
            let (node, addr) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| bad("JOIN <node> <addr>"))?;
            if !valid_session_name(node) {
                return Err(bad(format!("invalid node id `{node}`")));
            }
            let addr = addr.trim();
            if addr.is_empty() || addr.len() > 256 || addr.contains(char::is_whitespace) {
                return Err(bad(format!("invalid node address `{addr}`")));
            }
            Ok(Request::Join {
                node: node.to_owned(),
                addr: addr.to_owned(),
            })
        }
        "LEAVE" => {
            if rest.is_empty() {
                Ok(Request::Leave { node: None })
            } else if valid_session_name(rest) {
                Ok(Request::Leave {
                    node: Some(rest.to_owned()),
                })
            } else {
                Err(bad(format!("invalid node id `{rest}`")))
            }
        }
        "PING" => {
            if valid_session_name(rest) {
                Ok(Request::Ping {
                    node: rest.to_owned(),
                })
            } else {
                Err(bad("PING <node>"))
            }
        }
        "MIGRATE" | "REPL" => Err(bad(format!(
            "{verb} is a node-to-node verb on the binary protocol only"
        ))),
        other => Err(bad(format!(
            "unknown command `{other}` (OPEN|PUSH|FEED|FLUSH|STATS|METRICS|TRACE|SQL|CLOSE|SHUTDOWN|CLUSTER|JOIN|LEAVE|PING)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(
            parse_request("PUSH t1 Student: s1, p1, _", None).unwrap(),
            Request::Push {
                session: "t1".into(),
                line: "Student: s1, p1, _".into()
            }
        );
        assert_eq!(
            parse_request("feed t1 Dep: d1, b1", None).unwrap(),
            Request::Feed {
                session: "t1".into(),
                line: "Dep: d1, b1".into()
            }
        );
        assert_eq!(
            parse_request("FLUSH a-b.c", None).unwrap(),
            Request::Flush {
                session: "a-b.c".into()
            }
        );
        assert_eq!(
            parse_request("STATS", None).unwrap(),
            Request::Stats { session: None }
        );
        assert_eq!(
            parse_request("STATS t9", None).unwrap(),
            Request::Stats {
                session: Some("t9".into())
            }
        );
        assert_eq!(
            parse_request("SQL t1", None).unwrap(),
            Request::Sql {
                session: "t1".into()
            }
        );
        assert_eq!(
            parse_request("CLOSE t1", None).unwrap(),
            Request::Close {
                session: "t1".into()
            }
        );
        assert_eq!(parse_request("SHUTDOWN", None).unwrap(), Request::Shutdown);
        assert_eq!(parse_request("metrics", None).unwrap(), Request::Metrics);
        assert!(parse_request("METRICS t1", None).is_err());
    }

    #[test]
    fn trace_modes_and_counts() {
        assert_eq!(
            parse_request("TRACE", None).unwrap(),
            Request::Trace {
                slow: false,
                k: DEFAULT_TRACE_K
            }
        );
        assert_eq!(
            parse_request("trace slow 5", None).unwrap(),
            Request::Trace { slow: true, k: 5 }
        );
        assert_eq!(
            parse_request("TRACE recent 100", None).unwrap(),
            Request::Trace {
                slow: false,
                k: 100
            }
        );
        assert!(parse_request("TRACE weird", None).is_err());
        assert!(parse_request("TRACE slow 0", None).is_err());
        assert!(parse_request("TRACE slow 99999999", None).is_err());
        assert!(parse_request("TRACE slow 5 extra", None).is_err());
    }

    #[test]
    fn verbs_are_canonical() {
        assert_eq!(parse_request("TRACE", None).unwrap().verb(), "TRACE");
        assert_eq!(parse_request("PUSH t1 R: a", None).unwrap().verb(), "PUSH");
        assert_eq!(Request::Shutdown.verb(), "SHUTDOWN");
    }

    #[test]
    fn open_requires_body_and_valid_name() {
        assert!(parse_request("OPEN t1", None).is_err());
        let r = parse_request("OPEN t1", Some("[source]\n".into())).unwrap();
        assert!(matches!(r, Request::Open { .. }));
        assert!(parse_request("OPEN bad name", Some(String::new())).is_err());
        assert!(parse_request("OPEN", Some(String::new())).is_err());
    }

    #[test]
    fn push_requires_a_data_line() {
        assert!(parse_request("PUSH t1", None).is_err());
        assert!(parse_request("PUSH t1 nocolon", None).is_err());
    }

    #[test]
    fn unknown_verbs_are_rejected() {
        let e = parse_request("FROB x", None).unwrap_err();
        assert!(e.0.contains("unknown command"));
    }

    #[test]
    fn cluster_verbs_parse() {
        assert_eq!(parse_request("CLUSTER", None).unwrap(), Request::Cluster);
        assert!(parse_request("CLUSTER extra", None).is_err());
        assert_eq!(
            parse_request("JOIN n2 127.0.0.1:7002", None).unwrap(),
            Request::Join {
                node: "n2".into(),
                addr: "127.0.0.1:7002".into()
            }
        );
        assert!(parse_request("JOIN n2", None).is_err());
        assert!(parse_request("JOIN bad id 127.0.0.1:1 extra", None).is_err());
        assert_eq!(
            parse_request("LEAVE", None).unwrap(),
            Request::Leave { node: None }
        );
        assert_eq!(
            parse_request("LEAVE n1", None).unwrap(),
            Request::Leave {
                node: Some("n1".into())
            }
        );
        assert_eq!(
            parse_request("PING n1", None).unwrap(),
            Request::Ping { node: "n1".into() }
        );
        assert!(parse_request("PING", None).is_err());
        // Node-to-node verbs exist only on the binary protocol.
        assert!(parse_request("MIGRATE s1", None).is_err());
        assert!(parse_request("REPL n1 0", None).is_err());
    }

    #[test]
    fn routing_applies_to_session_verbs_only() {
        assert!(parse_request("PUSH t1 R: a", None).unwrap().is_routed());
        assert!(parse_request("CLOSE t1", None).unwrap().is_routed());
        assert!(!parse_request("STATS t1", None).unwrap().is_routed());
        assert!(!parse_request("CLUSTER", None).unwrap().is_routed());
        assert!(!Request::Shutdown.is_routed());
        assert!(!Request::Migrate {
            session: "s".into(),
            scenario: String::new(),
            requests: 0,
            tuples_in: 0,
            state: Vec::new(),
        }
        .is_routed());
    }

    #[test]
    fn response_block_renders_with_terminator() {
        let r = Response::ok("pushed");
        assert_eq!(r.render(), "OK pushed\n.\n");
        let e = Response::err("no such session");
        assert_eq!(e.render(), "ERR no such session\n.\n");
    }

    #[test]
    fn response_body_dots_are_escaped() {
        let r = Response {
            ok: true,
            head: "x".into(),
            lines: vec![".".into(), ".hidden".into(), "plain".into()],
        };
        let text = r.render();
        assert_eq!(text, "OK x\n..\n..hidden\nplain\n.\n");
    }

    #[test]
    fn hello_negotiation_lines() {
        assert_eq!(parse_hello("HELLO"), Some(Ok(Proto::Text)));
        assert_eq!(parse_hello("hello text"), Some(Ok(Proto::Text)));
        assert_eq!(parse_hello("HELLO binary"), Some(Ok(Proto::Binary)));
        assert_eq!(parse_hello("  HELLO   BINARY  "), Some(Ok(Proto::Binary)));
        assert!(matches!(parse_hello("HELLO msgpack"), Some(Err(_))));
        assert_eq!(parse_hello("PUSH t1 R: a"), None);
        assert_eq!(parse_hello("HELLOBINARY"), None);
    }

    #[test]
    fn session_name_validation() {
        assert!(valid_session_name("tenant-1.prod_a"));
        assert!(!valid_session_name(""));
        assert!(!valid_session_name("has space"));
        assert!(!valid_session_name(&"x".repeat(200)));
    }
}
