//! # sedex-service
//!
//! Exchange-as-a-service: a concurrent, multi-tenant TCP server over the
//! pay-as-you-go [`sedex_core::SedexSession`].
//!
//! The paper's pay-as-you-go architecture ("we reuse the scripts without
//! reprocessing the tuple … the only space required is to store scripts")
//! is naturally a *service*: a long-lived process that holds, per tenant,
//! the script repository and seen-set, and exchanges tuples as they
//! arrive over the network. This crate provides exactly that, std-only:
//!
//! * [`protocol`] — the line-based wire protocol (`OPEN`/`PUSH`/`FEED`/
//!   `FLUSH`/`STATS`/`METRICS`/`SQL`/`CLOSE`/`SHUTDOWN`; responses are
//!   text blocks terminated by a lone `.`), usable over plain `nc`.
//!   `METRICS` returns the server's registry as Prometheus text
//!   exposition; with [`server::ServerConfig::metrics`] set, sessions
//!   additionally trace every pipeline phase into the same registry;
//! * [`wire`] — the length-prefixed binary protocol a connection switches
//!   to with `HELLO binary`: framed requests/responses reusing
//!   [`sedex_storage::codec`], request pipelining, batched `PUSH`;
//! * [`manager`] — the sharded multi-tenant session map;
//! * [`server`] — the TCP server: a single [`sedex_net`] readiness-reactor
//!   thread multiplexes the listener and every connection (idle
//!   connections cost zero threads and zero periodic wakeups), feeding a
//!   fixed worker pool through a bounded channel (backpressure), with an
//!   idle-session TTL sweeper and graceful shutdown draining in-flight
//!   work; with [`server::ServerConfig::data_dir`] set, every acknowledged
//!   operation is written ahead to a per-shard log ([`sedex_durable`]) and
//!   sessions are recovered at the next startup;
//! * [`cluster_client`] — the cluster-aware client: resolves `session →
//!   node` locally on a [`sedex_cluster::HashRing`] snapshot, follows
//!   `ERR MOVED` redirects, and fails over to the successor when a node
//!   dies (see [`server::ServerConfig::cluster`] for the server side);
//! * [`client`] — a blocking client used by the integration tests, with
//!   bounded reconnect-and-retry (decorrelated-jitter backoff, honoring
//!   the server's `ERR BUSY retry-after=<ms>` hints), a binary transport
//!   ([`client::ClientConfig::binary`], or `SEDEX_CLIENT_PROTO=binary`),
//!   and pipelined/batched submission APIs.
//!
//! Robustness: requests carry an optional deadline
//! ([`server::ServerConfig::request_timeout`]), overload is shed with
//! `ERR BUSY` ([`server::ServerConfig::shed_queue_depth`] /
//! [`server::ServerConfig::max_conns`]), a panicking request quarantines
//! only its own session (`ERR POISONED`; every other tenant keeps
//! serving), and the whole stack is fault-injectable for chaos testing
//! via [`server::ServerConfig::fault_plan`] ([`sedex_durable::fault`]).
//!
//! ```no_run
//! use sedex_service::{Client, Server, ServerConfig};
//!
//! let handle = Server::start(ServerConfig::default()).unwrap();
//! let mut c = Client::connect(handle.local_addr()).unwrap();
//! c.open("tenant-a", "[source]\nS(a*)\n[target]\nT(b*)\n[correspondences]\na <-> b\n").unwrap();
//! c.push("tenant-a", "S: v1").unwrap();
//! println!("{}", c.sql("tenant-a").unwrap().body());
//! c.shutdown().unwrap();
//! handle.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster_client;
pub mod manager;
pub mod protocol;
mod reactor;
pub mod server;
pub mod wire;

pub use client::{Client, ClientConfig, Reply};
pub use cluster_client::{ClusterClient, ClusterClientConfig};
pub use manager::{PublishedState, ReadView, SessionManager, Tenant, TenantSlot};
pub use protocol::{Proto, Request, Response};
pub use sedex_cluster::ClusterConfig;
pub use server::{
    sql_dump, sql_dump_snapshot, Server, ServerConfig, ServerHandle, ServerStats,
    SHED_RETRY_AFTER_MS,
};
