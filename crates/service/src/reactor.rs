//! The server's event loop: one thread multiplexing the listener and every
//! connection through a [`sedex_net::Poller`].
//!
//! The reactor owns all connection I/O and protocol framing; it never
//! executes a request itself. Parsed requests are handed to the worker
//! pool over the bounded job channel, finished [`Done`]s flow back over an
//! unbounded channel (workers wake the reactor out of `epoll_wait` via the
//! [`sedex_net::Waker`]).
//!
//! Invariants the reactor maintains:
//!
//! * **Serial per connection.** At most one request per connection is ever
//!   in flight in the worker pool; later pipelined requests wait in the
//!   connection's item queue. Responses therefore come back in request
//!   order — pipelining saves round-trips, never reorders.
//! * **Inline answers stay ordered.** Parse errors, `HELLO` replies, shed
//!   `BUSY` answers and oversize errors are queued as items alongside real
//!   requests, so a pipelined burst gets its answers in exactly the order
//!   the requests were sent.
//! * **Backpressure, not buffering.** A connection with a full pipeline
//!   window (or a request parked on a full job queue) has its read
//!   interest dropped: bytes stay in the kernel socket buffer and TCP
//!   pushes back on the client.
//! * **Zero idle wakeups.** With no deadlines pending the poll timeout is
//!   infinite; an idle server (or ten thousand idle connections) wakes for
//!   nothing.
//!
//! Fault injection mirrors the old thread-per-connection layer:
//! `Accept`/`ConnRead`/`ConnWrite` fire on the corresponding paths, and a
//! `Panic` fault unwinding out of one connection's handling closes that
//! connection only — the reactor itself survives.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sedex_cluster::ReplPeer;
use sedex_durable::{FaultKind, FaultPoint};
use sedex_net::{
    read_once, ByteQueue, Event, FrameDecoder, FrameEvent, Interest, Poller, ReadOutcome, Token,
    WriteBuf,
};
use sedex_observe::{ReqSpan, StageClock};

use crate::protocol::{
    parse_hello, parse_request, Proto, Request, Response, MAX_LINE_BYTES, MAX_OPEN_BODY_BYTES,
    MAX_OPEN_BODY_LINES,
};
use crate::server::{
    busy_response, deadline_response, pong_response, promote_dead_peer, repl_catchup_frames, Done,
    Job, JobTrace, Shared, DEADLINE_REPLY_GRACE,
};
use crate::wire;

/// Token of the listening socket.
const LISTENER: Token = Token(0);
/// First token handed to an accepted connection. Tokens `1..FIRST_CONN`
/// are reserved for outbound peer links (so a node heartbeats up to 15
/// peers; larger clusters link the rest as slots free up).
const FIRST_CONN: u64 = 16;

/// One outbound link to a cluster peer, multiplexed on the reactor thread
/// like any other socket — cluster mode adds no threads. Every alive peer
/// gets a link (full-mesh heartbeats: silence is evidence of death
/// wherever it is observed); links to this node's R−1 ring successors
/// additionally ship replicated WAL records. The link speaks the ordinary
/// binary client protocol (`HELLO binary`, then `PING`/`REPL` frames), so
/// the receiving peer needs no special listener.
struct PeerLink {
    stream: TcpStream,
    /// Node id the link targets; torn down when the target dies, leaves,
    /// or changes role (follower ↔ heartbeat-only).
    target: String,
    rbuf: ByteQueue,
    wbuf: WriteBuf,
    frames: FrameDecoder,
    /// False until the text `HELLO` reply block has been consumed.
    ready: bool,
    /// True when the target is one of this node's replication followers:
    /// WAL records are shipped over this link.
    shipping: bool,
    /// The follower's replication queue and watermarks; `Some` iff
    /// `shipping`.
    repl: Option<Arc<ReplPeer>>,
    /// The follower's per-shard standby watermarks as reported by its last
    /// pong — the anti-entropy signal. `None` until a pong arrives (and
    /// reset to `None` after a catch-up is triggered, so the next decision
    /// waits for fresh evidence).
    standby_wm: Option<HashMap<u32, u64>>,
    /// Responses the peer still owes, in send order (the protocol answers
    /// serially, so one queue is enough to attribute acks).
    awaiting: VecDeque<Awaiting>,
    interest: Interest,
}

/// What one outstanding peer response will acknowledge.
enum Awaiting {
    Ping,
    Repl,
}

/// An `OPEN` whose body is still being collected (text protocol only; the
/// binary protocol carries the scenario inside the frame).
struct OpenCollect {
    /// The `OPEN …` command line itself.
    line: String,
    body: String,
    lines: usize,
    too_large: bool,
}

/// One entry in a connection's ordered item queue.
enum Item {
    /// A parsed request waiting for a worker slot.
    Req {
        request: Request,
        proto: Proto,
        deadline: Option<Instant>,
        /// Span-in-progress (read + parse stages measured); `None` whenever
        /// tracing is disabled.
        trace: Option<JobTrace>,
    },
    /// An answer the reactor produced itself (parse error, HELLO reply,
    /// oversize error). `count` is false for HELLO negotiation, which is
    /// not a request; `close` closes the connection after the reply is
    /// flushed (text close-on-oversize).
    Ready {
        response: Response,
        proto: Proto,
        close: bool,
        count: bool,
    },
}

/// The request currently executing in the worker pool for one connection.
struct Inflight {
    seq: u64,
    proto: Proto,
    shutdown: bool,
    /// Deadline + grace; when it passes before the worker answers, the
    /// reactor answers `ERR DEADLINE` itself and closes the connection.
    expiry: Option<Instant>,
}

struct Conn {
    stream: TcpStream,
    rbuf: ByteQueue,
    wbuf: WriteBuf,
    proto: Proto,
    frames: FrameDecoder,
    open: Option<OpenCollect>,
    pending: VecDeque<Item>,
    /// A job that found the worker queue full: retried (in order, before
    /// anything else on this connection) when a worker frees a slot.
    stalled: Option<Job>,
    inflight: Option<Inflight>,
    next_seq: u64,
    read_closed: bool,
    close_after_flush: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Socket-read nanoseconds not yet attributed to a request: a timed
    /// read batch is charged to the first request parsed out of it (later
    /// pipelined requests from the same batch read as 0). Stays 0 when
    /// tracing is disabled.
    read_pending_nanos: u64,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            rbuf: ByteQueue::new(),
            wbuf: WriteBuf::new(),
            proto: Proto::Text,
            frames: FrameDecoder::new(wire::MAX_FRAME_BYTES),
            open: None,
            pending: VecDeque::new(),
            stalled: None,
            inflight: None,
            next_seq: 0,
            read_closed: false,
            close_after_flush: false,
            interest: Interest::READ,
            read_pending_nanos: 0,
        }
    }
}

/// Entry point: runs until shutdown has been requested and every
/// connection has drained. Dropping `tx` on exit disconnects the job
/// channel, which is what makes the workers exit.
pub(crate) fn reactor_loop(
    listener: TcpListener,
    poller: Poller,
    tx: SyncSender<Job>,
    done_rx: Receiver<Done>,
    shared: Arc<Shared>,
    window: usize,
) {
    let next_heartbeat = shared.cluster.as_ref().map(|_| Instant::now());
    let mut reactor = Reactor {
        shared,
        poller,
        listener,
        tx,
        done_rx,
        conns: HashMap::new(),
        expiries: BTreeMap::new(),
        stalled: Vec::new(),
        next_token: FIRST_CONN,
        draining: false,
        window,
        next_req_id: 0,
        rbuf_hw: 0,
        wbuf_hw: 0,
        pipeline_hw: 0,
        peers: HashMap::new(),
        next_heartbeat,
        cluster_since: Instant::now(),
    };
    reactor.run();
}

struct Reactor {
    shared: Arc<Shared>,
    poller: Poller,
    listener: TcpListener,
    tx: SyncSender<Job>,
    done_rx: Receiver<Done>,
    conns: HashMap<u64, Conn>,
    /// Pending response deadlines: `(expiry, conn token) → seq`. The
    /// earliest entry bounds the poll timeout.
    expiries: BTreeMap<(Instant, u64), u64>,
    /// Connections with a stalled job to retry.
    stalled: Vec<u64>,
    next_token: u64,
    draining: bool,
    window: usize,
    /// Monotonically-assigned request id, stamped on spans at frame
    /// decode. Only advanced when tracing is on.
    next_req_id: u64,
    /// Reactor-local high-water marks mirrored into the
    /// `sedex_reactor_*_highwater` gauges (updated only on a new max, so
    /// the steady-state cost is a compare).
    rbuf_hw: usize,
    wbuf_hw: usize,
    pipeline_hw: usize,
    /// Outbound heartbeat/replication links, keyed by poller token
    /// (`1..FIRST_CONN`). Empty when not clustered; otherwise one link per
    /// alive peer, reconciled every heartbeat tick.
    peers: HashMap<u64, PeerLink>,
    /// Next heartbeat tick; `None` when not clustered (so the poll timeout
    /// stays infinite and single-node idle behaviour is unchanged).
    next_heartbeat: Option<Instant>,
    /// When this node's cluster view began — peers never heard from count
    /// their silence from here.
    cluster_since: Instant,
}

/// Outcome of trying to hand a job to the worker pool.
enum Dispatch {
    Sent,
    Full,
    Dead,
}

/// Deadline for a freshly parsed request: `request_timeout` from now —
/// except `SHUTDOWN`, which carries none (an operator must always be able
/// to stop the server).
fn request_deadline(timeout: Option<Duration>, request: &Request) -> Option<Instant> {
    if matches!(request, Request::Shutdown) {
        None
    } else {
        timeout.map(|t| Instant::now() + t)
    }
}

impl Reactor {
    fn run(&mut self) {
        if self
            .poller
            .register(self.listener.as_raw_fd(), LISTENER, Interest::READ)
            .is_err()
        {
            return;
        }
        let mut events: Vec<Event> = Vec::new();
        // Times the non-blocking span of one loop iteration (everything
        // between a `wait` returning and the next `wait` parking). Inert —
        // zero clock reads — unless tracing is on.
        let mut busy = StageClock::off();
        loop {
            self.drain_done();
            if !self.draining && self.shared.shutdown.load(Ordering::SeqCst) {
                self.enter_drain();
            }
            self.retry_stalled();
            self.expire_deadlines();
            self.cluster_tick();
            // Workers wake the reactor after every completion, so records
            // their WAL appends queued are shipped within one loop turn.
            self.peer_ship();
            if self.draining && self.conns.is_empty() {
                break;
            }
            let timeout = self.next_timeout();
            if busy.is_recording() {
                self.shared
                    .stats
                    .reactor_loop_seconds
                    .observe_nanos(busy.stop_nanos());
            }
            match self.poller.wait(&mut events, timeout) {
                Ok(woken) => {
                    self.shared.stats.reactor_polls.inc();
                    if woken {
                        self.shared.stats.reactor_wakeups.inc();
                    }
                    self.shared.stats.reactor_events.add(events.len() as u64);
                }
                Err(_) => {
                    // Should not happen; avoid a hot error loop if it does.
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            busy = StageClock::start(self.shared.recorder.is_some());
            for &ev in events.iter() {
                if ev.token == LISTENER {
                    self.accept_ready();
                } else if ev.token.0 < FIRST_CONN {
                    self.peer_event(ev.token.0, ev.readable, ev.writable);
                } else {
                    self.conn_event(ev.token.0, ev.readable, ev.writable);
                }
            }
        }
        self.teardown_all_peers();
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        for (_, conn) in self.conns.drain() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
        }
        self.shared.stats.open_conns.set(0);
        // Unblock a sweeper still parked on the condvar.
        self.shared.notify_sweeper();
        // `self.tx` drops with the reactor: workers drain and exit.
    }

    /// Poll timeout: until the earliest pending deadline or the next
    /// cluster heartbeat, else forever.
    fn next_timeout(&self) -> Option<Duration> {
        let deadline = self.expiries.keys().next().map(|&(at, _)| at);
        let at = match (deadline, self.next_heartbeat) {
            (Some(a), Some(b)) => a.min(b),
            (a, b) => a.or(b)?,
        };
        Some(at.saturating_duration_since(Instant::now()))
    }

    // --- worker completions -------------------------------------------

    fn drain_done(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            self.on_done(done);
        }
    }

    fn on_done(&mut self, done: Done) {
        let Done {
            conn: token,
            seq,
            response,
            trace,
        } = done;
        let (proto, shutdown, expiry) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return; // connection already gone (deadline or hangup)
            };
            match &conn.inflight {
                Some(inf) if inf.seq == seq => {}
                _ => return, // stale completion
            }
            let inf = conn.inflight.take().expect("checked above");
            (inf.proto, inf.shutdown, inf.expiry)
        };
        if let Some(at) = expiry {
            self.expiries.remove(&(at, token));
        }
        // A served SHUTDOWN closes its own connection once the reply is out.
        self.guarded(token, |r| {
            // Traced requests flush eagerly so the span's flush stage
            // covers render + queue + the push into the socket; with
            // tracing off this is the untouched write-then-pump path.
            let clk = StageClock::start(trace.is_some());
            let alive = r.write_response(token, &response, proto, shutdown);
            if alive && clk.is_recording() {
                r.flush_conn(token);
            }
            if let Some(t) = trace {
                let mut span = t.into_span(proto, clk.stop_nanos());
                if let Some(cl) = &r.shared.cluster {
                    span.node = cl.state.node_id().to_owned();
                }
                r.observe_stages(&span);
                if let Some(rec) = &r.shared.recorder {
                    rec.record(span);
                }
            }
            if alive {
                r.pump(token);
            }
        });
    }

    /// Feed one finished span into the per-proto × per-stage × per-verb
    /// latency histograms (`sedex_stage_seconds`). Traced requests only.
    fn observe_stages(&self, span: &ReqSpan) {
        const STAGE_HELP: &str =
            "Request lifecycle stage latency; recorded only while tracing is enabled.";
        let stages = [
            ("read", span.read_nanos),
            ("parse", span.parse_nanos),
            ("queue_wait", span.queue_nanos),
            ("exec", span.exec_nanos),
            ("flush", span.flush_nanos),
        ];
        for (stage, nanos) in stages {
            self.shared
                .registry
                .histogram_with(
                    "sedex_stage_seconds",
                    STAGE_HELP,
                    &[
                        ("proto", span.proto),
                        ("stage", stage),
                        ("verb", &span.verb),
                    ],
                )
                .observe_nanos(nanos);
        }
    }

    /// Track per-connection buffer and pipeline-depth high-water marks,
    /// mirroring new maxima into the reactor gauges. Steady-state cost is
    /// three compares — no clock reads, no atomics unless a mark grows.
    fn note_highwater(&mut self, token: u64) {
        let Some(c) = self.conns.get(&token) else {
            return;
        };
        let (rbuf, wbuf, depth) = (c.rbuf.len(), c.wbuf.len(), c.pending.len());
        if rbuf > self.rbuf_hw {
            self.rbuf_hw = rbuf;
            self.shared.stats.reactor_rbuf_hw.set(rbuf as i64);
        }
        if wbuf > self.wbuf_hw {
            self.wbuf_hw = wbuf;
            self.shared.stats.reactor_wbuf_hw.set(wbuf as i64);
        }
        if depth > self.pipeline_hw {
            self.pipeline_hw = depth;
            self.shared.stats.reactor_pipeline_hw.set(depth as i64);
        }
    }

    // --- accepting ----------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((mut stream, _peer)) => {
                    self.shared.stats.connections.inc();
                    // Injected accept fault: the connection is dropped on
                    // the floor, as if the network ate it post-handshake.
                    match self
                        .shared
                        .faults
                        .as_ref()
                        .and_then(|p| p.fire(FaultPoint::Accept))
                    {
                        Some(FaultKind::Error(_)) | Some(FaultKind::ShortWrite) => continue,
                        _ => {}
                    }
                    if self.draining {
                        continue; // raced the shutdown: drop it
                    }
                    if self.shared.max_conns > 0 && self.conns.len() >= self.shared.max_conns {
                        // Over the cap: refuse politely with a retry hint
                        // instead of letting the connection starve unserved.
                        // Best effort and nonblocking — a peer with a zero
                        // receive window must not stall the event loop; if
                        // the tiny reply doesn't fit the fresh socket
                        // buffer the connection is simply dropped.
                        self.shared.stats.shed.inc();
                        if stream.set_nonblocking(true).is_ok() {
                            let _ = stream.write(busy_response().render().as_bytes());
                        }
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), Token(token), Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(token, Conn::new(stream));
                    self.shared.stats.open_conns.set(self.conns.len() as i64);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock, or transient accept failure
            }
        }
    }

    // --- per-connection events ----------------------------------------

    /// Runs per-connection work with panic isolation: a panic (e.g. an
    /// injected `Panic` fault on a read/write path) unwinding out of one
    /// connection's handling closes that connection only — exactly like
    /// the per-connection thread it replaces dying. Every reactor-loop
    /// path that touches a connection (readiness events, worker
    /// completions, stalled retries, deadline replies) must go through
    /// this so a single connection can never take the reactor down.
    fn guarded<F: FnOnce(&mut Self)>(&mut self, token: u64, f: F) {
        if catch_unwind(AssertUnwindSafe(|| f(self))).is_err() {
            self.close_conn(token);
        }
    }

    fn conn_event(&mut self, token: u64, readable: bool, writable: bool) {
        if !self.conns.contains_key(&token) {
            return;
        }
        self.guarded(token, |r| {
            if writable && !r.flush_conn(token) {
                return;
            }
            if readable {
                r.conn_readable(token);
            }
            r.pump(token);
        });
    }

    fn conn_readable(&mut self, token: u64) {
        let traced = self.shared.recorder.is_some();
        // Bound the bytes pulled per readiness event so one fast client
        // cannot starve the rest of the loop.
        let mut budget: usize = 1 << 20;
        loop {
            let paused = {
                let Some(c) = self.conns.get(&token) else {
                    return;
                };
                c.read_closed
                    || c.close_after_flush
                    || c.stalled.is_some()
                    || c.pending.len() >= self.window
            };
            if paused {
                break;
            }
            // Injected read faults: transient kinds retry (like a real
            // EINTR), hard kinds close the connection (like a reset).
            match self
                .shared
                .faults
                .as_ref()
                .and_then(|p| p.fire(FaultPoint::ConnRead))
            {
                Some(FaultKind::Error(
                    ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut,
                )) => continue,
                Some(FaultKind::Error(_)) | Some(FaultKind::ShortWrite) => {
                    self.close_conn(token);
                    return;
                }
                _ => {}
            }
            let outcome = {
                let c = self.conns.get_mut(&token).expect("checked above");
                let clk = StageClock::start(traced);
                let (rbuf, stream) = (&mut c.rbuf, &c.stream);
                let outcome = read_once(&mut { stream }, rbuf, 64 * 1024);
                c.read_pending_nanos += clk.stop_nanos();
                outcome
            };
            match outcome {
                Ok(ReadOutcome::Data(n)) => {
                    self.note_highwater(token);
                    self.parse_conn(token);
                    budget = budget.saturating_sub(n);
                    if budget == 0 {
                        break;
                    }
                }
                Ok(ReadOutcome::WouldBlock) => break,
                Ok(ReadOutcome::Closed) => {
                    if let Some(c) = self.conns.get_mut(&token) {
                        c.read_closed = true;
                    }
                    break;
                }
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        self.parse_conn(token);
        self.note_highwater(token);
    }

    // --- parsing ------------------------------------------------------

    /// Turn buffered bytes into queue items, up to the pipeline window.
    fn parse_conn(&mut self, token: u64) {
        let timeout = self.shared.request_timeout;
        let traced = self.shared.recorder.is_some();
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.close_after_flush || conn.pending.len() >= self.window {
                return;
            }
            match conn.proto {
                Proto::Binary => {
                    let parse_clk = StageClock::start(traced);
                    match conn.frames.decode(&mut conn.rbuf) {
                        None => return,
                        Some(FrameEvent::Oversized { opcode, declared }) => {
                            // Binary framing resynchronizes: the decoder skips
                            // the declared body and the connection stays up.
                            conn.pending.push_back(Item::Ready {
                                response: Response::err(format!(
                                    "TOO_LARGE frame body of {declared} bytes exceeds {} (opcode 0x{opcode:02x}); frame skipped",
                                    wire::MAX_FRAME_BYTES
                                )),
                                proto: Proto::Binary,
                                close: false,
                                count: true,
                            });
                        }
                        Some(FrameEvent::Frame { opcode, payload }) => {
                            match wire::decode_request(opcode, &payload) {
                                Ok(request) => {
                                    let deadline = request_deadline(timeout, &request);
                                    let trace = if traced {
                                        self.next_req_id += 1;
                                        Some(JobTrace {
                                            id: self.next_req_id,
                                            read_nanos: std::mem::take(
                                                &mut conn.read_pending_nanos,
                                            ),
                                            parse_nanos: parse_clk.stop_nanos(),
                                            queued: Instant::now(),
                                        })
                                    } else {
                                        None
                                    };
                                    conn.pending.push_back(Item::Req {
                                        request,
                                        proto: Proto::Binary,
                                        deadline,
                                        trace,
                                    });
                                }
                                Err(msg) => conn.pending.push_back(Item::Ready {
                                    response: Response::err(msg),
                                    proto: Proto::Binary,
                                    close: false,
                                    count: true,
                                }),
                            }
                        }
                    }
                }
                Proto::Text => {
                    let newline = conn.rbuf.as_slice().iter().position(|&b| b == b'\n');
                    if newline.map_or(true, |i| i > MAX_LINE_BYTES) {
                        if newline.is_some() || conn.rbuf.len() > MAX_LINE_BYTES {
                            // Mid-line with no way to resynchronize: answer
                            // TOO_LARGE and close, like the old line reader.
                            let what = if conn.open.is_some() {
                                "scenario"
                            } else {
                                "request"
                            };
                            conn.pending.push_back(Item::Ready {
                                response: Response::err(format!(
                                    "TOO_LARGE {what} line exceeds {MAX_LINE_BYTES} bytes"
                                )),
                                proto: Proto::Text,
                                close: true,
                                count: true,
                            });
                            conn.read_closed = true;
                            conn.rbuf.clear();
                        }
                        return;
                    }
                    let i = newline.expect("checked above");
                    let mut raw = conn.rbuf.as_slice()[..i].to_vec();
                    conn.rbuf.consume(i + 1);
                    if raw.last() == Some(&b'\r') {
                        raw.pop();
                    }
                    let line = String::from_utf8_lossy(&raw).into_owned();
                    self.text_line(token, line);
                }
            }
        }
    }

    /// Process one complete text line (command, OPEN-body line, or HELLO).
    fn text_line(&mut self, token: u64, line: String) {
        let timeout = self.shared.request_timeout;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        // OPEN body collection: buffer lines until a lone END, with the
        // same line-count and byte caps as the old connection loop.
        if let Some(open) = &mut conn.open {
            if line.trim().eq_ignore_ascii_case("END") {
                let oc = conn.open.take().expect("checked above");
                let parse_clk = StageClock::start(self.shared.recorder.is_some());
                let item = if oc.too_large {
                    Item::Ready {
                        response: Response::err(format!(
                            "TOO_LARGE OPEN body exceeds {MAX_OPEN_BODY_BYTES} bytes"
                        )),
                        proto: Proto::Text,
                        close: false,
                        count: true,
                    }
                } else {
                    match parse_request(&oc.line, Some(oc.body)) {
                        Ok(request) => {
                            let deadline = request_deadline(timeout, &request);
                            let trace = self.stamp_trace(token, parse_clk);
                            Item::Req {
                                request,
                                proto: Proto::Text,
                                deadline,
                                trace,
                            }
                        }
                        Err(e) => Item::Ready {
                            response: Response::err(e.to_string()),
                            proto: Proto::Text,
                            close: false,
                            count: true,
                        },
                    }
                };
                // Borrow was released by the helpers above; requeue.
                if let Some(c) = self.conns.get_mut(&token) {
                    c.pending.push_back(item);
                }
                return;
            }
            open.lines += 1;
            if open.body.len() + line.len() > MAX_OPEN_BODY_BYTES {
                open.too_large = true;
            } else if !open.too_large {
                open.body.push_str(&line);
                open.body.push('\n');
            }
            if open.lines >= MAX_OPEN_BODY_LINES {
                // Body cap hit without an END: answer and abandon
                // collection (a later END parses as an unknown command).
                let too_large = open.too_large;
                conn.open = None;
                let msg = if too_large {
                    format!("TOO_LARGE OPEN body exceeds {MAX_OPEN_BODY_BYTES} bytes")
                } else {
                    "OPEN body not terminated by END".to_owned()
                };
                conn.pending.push_back(Item::Ready {
                    response: Response::err(msg),
                    proto: Proto::Text,
                    close: false,
                    count: true,
                });
            }
            return;
        }
        if line.trim().is_empty() {
            return;
        }
        // HELLO is answered by the reactor itself: it negotiates framing,
        // which only the reactor knows about. The reply is always rendered
        // as text (the client still reads text at this point); the parser
        // switches immediately, so the very next bytes may be binary.
        if let Some(negotiated) = parse_hello(&line) {
            let item = match negotiated {
                Ok(proto) => {
                    conn.proto = proto;
                    conn.frames = FrameDecoder::new(wire::MAX_FRAME_BYTES);
                    let head = match proto {
                        Proto::Binary => {
                            format!("proto=binary max-frame={}", wire::MAX_FRAME_BYTES)
                        }
                        Proto::Text => "proto=text".to_owned(),
                    };
                    Item::Ready {
                        response: Response::ok(head),
                        proto: Proto::Text,
                        close: false,
                        count: false,
                    }
                }
                Err(e) => Item::Ready {
                    response: Response::err(e.to_string()),
                    proto: Proto::Text,
                    close: false,
                    count: true,
                },
            };
            conn.pending.push_back(item);
            return;
        }
        let trimmed = line.trim_start();
        // Byte-wise prefix check: a slice like `trimmed[..4]` would panic
        // when byte 4 is not a char boundary (lossy decoding turns invalid
        // bytes into 3-byte U+FFFD), and this runs on attacker-controlled
        // input.
        let is_open = trimmed
            .as_bytes()
            .get(..4)
            .is_some_and(|p| p.eq_ignore_ascii_case(b"OPEN"));
        if is_open {
            conn.open = Some(OpenCollect {
                line,
                body: String::new(),
                lines: 0,
                too_large: false,
            });
            return;
        }
        let parse_clk = StageClock::start(self.shared.recorder.is_some());
        let item = match parse_request(&line, None) {
            Ok(request) => {
                let deadline = request_deadline(timeout, &request);
                let trace = self.stamp_trace(token, parse_clk);
                Item::Req {
                    request,
                    proto: Proto::Text,
                    deadline,
                    trace,
                }
            }
            Err(e) => Item::Ready {
                response: Response::err(e.to_string()),
                proto: Proto::Text,
                close: false,
                count: true,
            },
        };
        if let Some(c) = self.conns.get_mut(&token) {
            c.pending.push_back(item);
        }
    }

    /// Stamp a fresh span for a request just parsed on `token`: assigns
    /// the next request id, claims the connection's unattributed read
    /// nanoseconds, and closes the parse stage. `None` with tracing off.
    fn stamp_trace(&mut self, token: u64, parse_clk: StageClock) -> Option<JobTrace> {
        self.shared.recorder.as_ref()?;
        self.next_req_id += 1;
        let read_nanos = self
            .conns
            .get_mut(&token)
            .map_or(0, |c| std::mem::take(&mut c.read_pending_nanos));
        Some(JobTrace {
            id: self.next_req_id,
            read_nanos,
            parse_nanos: parse_clk.stop_nanos(),
            queued: Instant::now(),
        })
    }

    // --- dispatch -----------------------------------------------------

    /// Drive one connection forward: retry a stalled job, dispatch or
    /// answer queued items (keeping at most one request in flight), pull
    /// more parsed items if the window freed up, flush, and close if done.
    fn pump(&mut self, token: u64) {
        loop {
            self.pump_items(token);
            let Some(c) = self.conns.get(&token) else {
                return;
            };
            // The window may have freed up: parse more buffered bytes and
            // go around once they produce new items.
            let can_refill = c.inflight.is_none()
                && c.stalled.is_none()
                && !c.close_after_flush
                && c.pending.is_empty()
                && !c.rbuf.is_empty();
            if !can_refill {
                break;
            }
            let before = c.pending.len();
            self.parse_conn(token);
            match self.conns.get(&token) {
                Some(c) if c.pending.len() > before => continue,
                _ => break,
            }
        }
        if self.flush_conn(token) {
            self.maybe_finish(token);
            self.update_interest(token);
        }
    }

    /// Serve the connection's item queue until it blocks (a request is in
    /// flight, the job queue is full) or empties.
    fn pump_items(&mut self, token: u64) {
        loop {
            // A stalled job goes first — it predates everything queued.
            let stalled = {
                let Some(c) = self.conns.get_mut(&token) else {
                    return;
                };
                if c.close_after_flush {
                    return;
                }
                c.stalled.take()
            };
            if let Some(job) = stalled {
                match self.try_dispatch(token, job) {
                    Dispatch::Sent => continue,
                    Dispatch::Full => return, // re-stalled by try_dispatch
                    Dispatch::Dead => {
                        self.close_conn(token);
                        return;
                    }
                }
            }
            let item = {
                let Some(c) = self.conns.get_mut(&token) else {
                    return;
                };
                if c.inflight.is_some() {
                    return; // serial per connection: wait for the worker
                }
                match c.pending.pop_front() {
                    Some(item) => item,
                    None => return,
                }
            };
            match item {
                Item::Ready {
                    response,
                    proto,
                    close,
                    count,
                } => {
                    if count {
                        self.shared.stats.requests.inc();
                        if !response.ok {
                            self.shared.stats.errors.inc();
                        }
                        self.shared.stats.count_proto(proto);
                    }
                    if !self.write_response(token, &response, proto, close) {
                        return;
                    }
                    if close {
                        return;
                    }
                }
                Item::Req {
                    request,
                    proto,
                    deadline,
                    trace,
                } => {
                    // Expired while queued behind earlier pipelined
                    // requests: answer without executing, keep the
                    // connection (same contract as the worker's skip).
                    if deadline.is_some_and(|d| Instant::now() > d) {
                        self.shared.stats.deadlines.inc();
                        self.shared.stats.requests.inc();
                        self.shared.stats.errors.inc();
                        self.shared.stats.count_proto(proto);
                        let resp = deadline_response(&self.shared);
                        if !self.write_response(token, &resp, proto, false) {
                            return;
                        }
                        continue;
                    }
                    // Heartbeat liveness must not depend on worker
                    // availability: a saturated or wedged pool would starve
                    // pongs past the failover window and trigger false
                    // death declarations. Pings are cheap and lock-bounded,
                    // so they are answered right here — skipping the job
                    // queue and the shed gate (shedding protects workers;
                    // this touches none).
                    if let Request::Ping { node } = &request {
                        let response = pong_response(&self.shared, node);
                        self.shared.stats.requests.inc();
                        if !response.ok {
                            self.shared.stats.errors.inc();
                        }
                        self.shared.stats.count_proto(proto);
                        if !self.write_response(token, &response, proto, false) {
                            return;
                        }
                        continue;
                    }
                    let is_shutdown = matches!(request, Request::Shutdown);
                    // Load shedding: past the configured depth, answer BUSY
                    // with a retry hint instead of joining the queue.
                    // SHUTDOWN is exempt.
                    if !is_shutdown
                        && self.shared.shed_queue_depth > 0
                        && self.shared.stats.queue_depth.get()
                            >= self.shared.shed_queue_depth as i64
                    {
                        self.shared.stats.requests.inc();
                        self.shared.stats.errors.inc();
                        self.shared.stats.shed.inc();
                        self.shared.stats.count_proto(proto);
                        if !self.write_response(token, &busy_response(), proto, false) {
                            return;
                        }
                        continue;
                    }
                    let seq = {
                        let Some(c) = self.conns.get_mut(&token) else {
                            return;
                        };
                        let seq = c.next_seq;
                        c.next_seq += 1;
                        seq
                    };
                    let job = Job {
                        request,
                        proto,
                        conn: token,
                        seq,
                        deadline,
                        trace,
                    };
                    match self.try_dispatch(token, job) {
                        Dispatch::Sent => continue,
                        Dispatch::Full => return,
                        Dispatch::Dead => {
                            self.close_conn(token);
                            return;
                        }
                    }
                }
            }
        }
    }

    fn try_dispatch(&mut self, token: u64, job: Job) -> Dispatch {
        let shutdown = matches!(job.request, Request::Shutdown);
        let proto = job.proto;
        let seq = job.seq;
        let deadline = job.deadline;
        match self.tx.try_send(job) {
            Ok(()) => {
                self.shared.stats.queue_depth.inc();
                // The expiry is deadline + grace: the worker answers
                // expired jobs itself (cheaper, counted once); the timer
                // only fires when a worker is stuck executing.
                let expiry = deadline.map(|d| d + DEADLINE_REPLY_GRACE);
                if let Some(at) = expiry {
                    self.expiries.insert((at, token), seq);
                }
                if let Some(c) = self.conns.get_mut(&token) {
                    c.inflight = Some(Inflight {
                        seq,
                        proto,
                        shutdown,
                        expiry,
                    });
                }
                Dispatch::Sent
            }
            Err(TrySendError::Full(job)) => {
                // Queue full: park the job and stop reading this socket
                // until a worker completion frees a slot (backpressure).
                self.shared.stats.reactor_parks.inc();
                if let Some(c) = self.conns.get_mut(&token) {
                    c.stalled = Some(job);
                }
                if !self.stalled.contains(&token) {
                    self.stalled.push(token);
                }
                Dispatch::Full
            }
            Err(TrySendError::Disconnected(_)) => Dispatch::Dead,
        }
    }

    /// Retry every parked job; called after completions drained (a worker
    /// finishing is the only thing that frees queue slots).
    fn retry_stalled(&mut self) {
        if self.stalled.is_empty() {
            return;
        }
        let tokens = std::mem::take(&mut self.stalled);
        for token in tokens {
            let has_stalled = self.conns.get(&token).is_some_and(|c| c.stalled.is_some());
            if has_stalled {
                self.guarded(token, |r| r.pump(token));
            }
        }
    }

    // --- responses and teardown ---------------------------------------

    /// Render and queue one response, firing [`FaultPoint::ConnWrite`]: an
    /// injected hard error drops the connection; a short write queues a
    /// response prefix and closes after flushing it — the client sees a
    /// truncated reply, exactly like a connection dropped mid-reply.
    /// Returns false when the connection died.
    fn write_response(
        &mut self,
        token: u64,
        response: &Response,
        proto: Proto,
        close_after: bool,
    ) -> bool {
        let bytes = match proto {
            Proto::Text => response.render().into_bytes(),
            Proto::Binary => wire::encode_response(response),
        };
        let fault = self
            .shared
            .faults
            .as_ref()
            .and_then(|p| p.fire(FaultPoint::ConnWrite));
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        match fault {
            Some(FaultKind::Error(_)) => {
                self.close_conn(token);
                return false;
            }
            Some(FaultKind::ShortWrite) => {
                conn.wbuf.queue(&bytes[..bytes.len() / 2]);
                conn.close_after_flush = true;
            }
            _ => {
                conn.wbuf.queue(&bytes);
                if close_after {
                    conn.close_after_flush = true;
                }
            }
        }
        self.note_highwater(token);
        true
    }

    /// Push buffered response bytes into the socket; returns false when
    /// the connection died (write error, or close-after-flush completed).
    fn flush_conn(&mut self, token: u64) -> bool {
        let drained = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            if conn.wbuf.is_empty() && !conn.close_after_flush {
                return true;
            }
            let (wbuf, stream) = (&mut conn.wbuf, &conn.stream);
            wbuf.flush(&mut { stream })
        };
        match drained {
            Ok(true) => {
                let close = self.conns.get(&token).is_some_and(|c| c.close_after_flush);
                if close {
                    self.close_conn(token);
                    return false;
                }
                true
            }
            Ok(false) => true, // kernel buffer full: wait for writable
            Err(_) => {
                self.close_conn(token);
                false
            }
        }
    }

    /// Close a connection whose work is done: nothing left to read, parse,
    /// execute, or flush. During drain, "nothing left to read" is implied.
    fn maybe_finish(&mut self, token: u64) {
        let done = {
            let Some(c) = self.conns.get(&token) else {
                return;
            };
            (c.read_closed || self.draining)
                && c.pending.is_empty()
                && c.inflight.is_none()
                && c.stalled.is_none()
                && c.wbuf.is_empty()
        };
        if done {
            self.close_conn(token);
        }
    }

    /// Keep the poller's interest in sync with what the connection can
    /// actually make progress on.
    fn update_interest(&mut self, token: u64) {
        let Some(c) = self.conns.get_mut(&token) else {
            return;
        };
        let want = Interest {
            readable: !c.read_closed
                && !c.close_after_flush
                && c.stalled.is_none()
                && c.pending.len() < self.window,
            writable: !c.wbuf.is_empty(),
        };
        if want != c.interest
            && self
                .poller
                .modify(c.stream.as_raw_fd(), Token(token), want)
                .is_ok()
        {
            c.interest = want;
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            if let Some(inf) = conn.inflight {
                if let Some(at) = inf.expiry {
                    self.expiries.remove(&(at, token));
                }
            }
        }
        self.shared.stats.open_conns.set(self.conns.len() as i64);
    }

    // --- cluster peer link --------------------------------------------

    /// Heartbeat tick: run the failure detector, reconcile the peer links
    /// against the ring (one per alive peer; the R−1 successors ship), and
    /// ping everyone. Panic-isolated like per-connection work — a wedged
    /// cluster path costs the links, not the reactor.
    fn cluster_tick(&mut self) {
        let Some(at) = self.next_heartbeat else {
            return;
        };
        if Instant::now() < at {
            return;
        }
        let shared = Arc::clone(&self.shared);
        let cl = shared
            .cluster
            .as_ref()
            .expect("heartbeat set only with cluster");
        self.next_heartbeat = Some(Instant::now() + cl.state.config.heartbeat);
        if catch_unwind(AssertUnwindSafe(|| self.heartbeat(cl))).is_err() {
            self.teardown_all_peers();
        }
    }

    fn heartbeat(&mut self, cl: &crate::server::ClusterRt) {
        for dead in cl.state.dead_peers(self.cluster_since) {
            promote_dead_peer(&self.shared, &dead);
        }
        if cl.state.left.load(Ordering::Relaxed) {
            // A departed node replicates nothing and pings nobody; it only
            // answers redirects until the operator stops it.
            self.teardown_all_peers();
            return;
        }
        // One ring read decides the link plan: every alive peer gets a
        // heartbeat link (full-mesh silence detection — in a ring of
        // successor-only pings a node whose follower died would never
        // re-learn the topology), and the R−1 distinct alive successors
        // additionally receive this node's WAL.
        let (alive, followers) = {
            let ring = cl.state.ring.read().unwrap_or_else(|e| e.into_inner());
            let me = cl.state.node_id();
            let alive: HashMap<String, String> = ring
                .nodes()
                .filter(|&(id, e)| id != me && e.alive)
                .map(|(id, e)| (id.to_owned(), e.addr.clone()))
                .collect();
            let followers: std::collections::HashSet<String> = ring
                .successors(me, cl.state.config.replication.saturating_sub(1))
                .into_iter()
                .map(str::to_owned)
                .collect();
            (alive, followers)
        };
        // Tear down links that no longer fit the plan: target dead or
        // departed, or its follower role flipped (the link reconnects this
        // same tick with the right role).
        let stale: Vec<u64> = self
            .peers
            .iter()
            .filter(|(_, l)| {
                !alive.contains_key(&l.target) || l.shipping != followers.contains(&l.target)
            })
            .map(|(&t, _)| t)
            .collect();
        for tok in stale {
            let target = self.peers[&tok].target.clone();
            self.teardown_peer(tok);
            if !alive.contains_key(&target) {
                cl.state.retire_repl_peer(&target);
            }
        }
        for (node, addr) in &alive {
            if !self.peers.values().any(|l| &l.target == node) {
                self.connect_peer(cl, node, addr, followers.contains(node));
            }
        }
        let ping = wire::encode_request(&Request::Ping {
            node: cl.state.node_id().to_owned(),
        });
        if let Ok(bytes) = ping {
            let toks: Vec<u64> = self.peers.keys().copied().collect();
            for tok in toks {
                if let Some(link) = self.peers.get_mut(&tok) {
                    if link.ready {
                        link.wbuf.queue(&bytes);
                        link.awaiting.push_back(Awaiting::Ping);
                    }
                }
                self.flush_peer(tok);
            }
        }
        self.anti_entropy();
    }

    /// Compare each follower's pong-reported standby watermarks against
    /// the local WAL heads. A follower that is behind while its link is
    /// *idle* (nothing queued, everything sent acknowledged) lost frames —
    /// an injected `PeerSend` drop, a partition that healed under the
    /// failover timeout — and would stay behind forever without a
    /// reconnect. Re-ship the retained log from disk instead; the
    /// follower's watermarks deduplicate the overlap.
    fn anti_entropy(&mut self) {
        let mut heads: Option<Vec<u64>> = None; // read lazily, at most once
        let toks: Vec<u64> = self.peers.keys().copied().collect();
        for tok in toks {
            let repl = {
                let Some(link) = self.peers.get_mut(&tok) else {
                    continue;
                };
                if !link.ready || !link.shipping {
                    continue;
                }
                let Some(repl) = link.repl.clone() else {
                    continue;
                };
                // Only an idle link is evidence of loss: queued or
                // in-flight frames may still cover the hole.
                if repl.queued() > 0
                    || repl.sent.load(Ordering::Relaxed) != repl.acked.load(Ordering::Relaxed)
                {
                    continue;
                }
                let Some(wm) = &link.standby_wm else {
                    continue;
                };
                let heads =
                    heads.get_or_insert_with(|| crate::server::shard_last_lsns(&self.shared));
                let behind = heads
                    .iter()
                    .enumerate()
                    .any(|(i, &l)| l > 0 && wm.get(&(i as u32)).copied().unwrap_or(0) < l);
                if !behind {
                    continue;
                }
                // Wait for a fresh pong before judging again — the
                // catch-up needs a round trip to move the watermarks, and
                // re-shipping every heartbeat until then would thrash.
                link.standby_wm = None;
                repl
            };
            repl.catch_up_with(|| repl_catchup_frames(&self.shared));
            self.peer_ship_link(tok);
        }
    }

    /// Dial a peer. Blocking, but bounded well under the heartbeat
    /// interval — an unreachable peer costs the loop 50ms once per tick,
    /// not a stall.
    fn connect_peer(
        &mut self,
        cl: &crate::server::ClusterRt,
        node: &str,
        addr: &str,
        shipping: bool,
    ) {
        use std::net::ToSocketAddrs;
        let Some(tok) = (1..FIRST_CONN).find(|t| !self.peers.contains_key(t)) else {
            return;
        };
        let Some(sa) = addr.to_socket_addrs().ok().and_then(|mut a| a.next()) else {
            return;
        };
        let Ok(stream) = TcpStream::connect_timeout(&sa, Duration::from_millis(50)) else {
            return;
        };
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        if self
            .poller
            .register(stream.as_raw_fd(), Token(tok), Interest::READ)
            .is_err()
        {
            return;
        }
        let mut link = PeerLink {
            stream,
            target: node.to_owned(),
            rbuf: ByteQueue::new(),
            wbuf: WriteBuf::new(),
            frames: FrameDecoder::new(wire::MAX_FRAME_BYTES),
            ready: false,
            shipping,
            repl: shipping.then(|| cl.state.repl_peer(node)),
            standby_wm: None,
            awaiting: VecDeque::new(),
            interest: Interest::READ,
        };
        link.wbuf.queue(b"HELLO binary\n");
        self.peers.insert(tok, link);
        self.flush_peer(tok);
    }

    fn peer_event(&mut self, tok: u64, readable: bool, writable: bool) {
        if catch_unwind(AssertUnwindSafe(|| {
            if writable {
                self.flush_peer(tok);
            }
            if readable {
                self.peer_readable(tok);
            }
            self.peer_ship_link(tok);
        }))
        .is_err()
        {
            self.teardown_peer(tok);
        }
    }

    fn peer_readable(&mut self, tok: u64) {
        loop {
            // Injected receive faults mirror `ConnRead`: transient kinds
            // retry (a real EINTR), hard kinds drop the link (a reset) —
            // the reconnect's disk catch-up makes the loss invisible.
            match self
                .shared
                .faults
                .as_ref()
                .and_then(|p| p.fire(FaultPoint::PeerRecv))
            {
                Some(FaultKind::Error(
                    ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut,
                )) => continue,
                Some(FaultKind::Error(_)) | Some(FaultKind::ShortWrite) => {
                    self.teardown_peer(tok);
                    return;
                }
                _ => {}
            }
            let outcome = {
                let Some(link) = self.peers.get_mut(&tok) else {
                    return;
                };
                let (rbuf, stream) = (&mut link.rbuf, &link.stream);
                read_once(&mut { stream }, rbuf, 64 * 1024)
            };
            match outcome {
                Ok(ReadOutcome::Data(_)) => {
                    if !self.peer_parse(tok) {
                        return;
                    }
                }
                Ok(ReadOutcome::WouldBlock) => return,
                Ok(ReadOutcome::Closed) | Err(_) => {
                    self.teardown_peer(tok);
                    return;
                }
            }
        }
    }

    /// Consume buffered peer bytes: the text `HELLO` reply first, then
    /// binary response frames, each acknowledging the oldest outstanding
    /// send. Returns false when the link was torn down.
    fn peer_parse(&mut self, tok: u64) -> bool {
        let Some(mut link) = self.peers.remove(&tok) else {
            return false;
        };
        let shared = Arc::clone(&self.shared);
        let Some(cl) = shared.cluster.as_ref() else {
            return false;
        };
        let mut just_ready = false;
        let alive = loop {
            if !link.ready {
                let Some(i) = link.rbuf.as_slice().iter().position(|&b| b == b'\n') else {
                    break true;
                };
                let raw = link.rbuf.as_slice()[..i].to_vec();
                link.rbuf.consume(i + 1);
                let line = String::from_utf8_lossy(&raw);
                let line = line.trim_end_matches('\r');
                if line.starts_with("ERR") {
                    break false;
                }
                if line.trim() == "." {
                    link.ready = true;
                    just_ready = true;
                }
                continue;
            }
            match link.frames.decode(&mut link.rbuf) {
                None => break true,
                Some(FrameEvent::Oversized { .. }) => break false,
                Some(FrameEvent::Frame { opcode, payload }) => {
                    let Ok((ok, head, lines)) = wire::decode_response(opcode, &payload) else {
                        break false;
                    };
                    match link.awaiting.pop_front() {
                        Some(Awaiting::Repl) if ok => {
                            if let Some(repl) = &link.repl {
                                repl.acked.fetch_add(1, Ordering::Relaxed);
                            }
                            cl.state.note_peer(&link.target);
                        }
                        Some(Awaiting::Ping) if ok => {
                            cl.state.note_peer(&link.target);
                            // The pong carries the peer's per-shard standby
                            // watermarks for this origin (`wm <shard>
                            // <lsn>` lines) — the anti-entropy evidence. A
                            // pong with no `wm` lines is meaningful too: it
                            // says the peer holds nothing of ours.
                            let mut wm = HashMap::new();
                            for line in &lines {
                                let mut it = line.split_whitespace();
                                if it.next() != Some("wm") {
                                    continue;
                                }
                                if let (Some(Ok(shard)), Some(Ok(lsn))) =
                                    (it.next().map(str::parse), it.next().map(str::parse))
                                {
                                    wm.insert(shard, lsn);
                                }
                            }
                            link.standby_wm = Some(wm);
                        }
                        Some(_) => {
                            eprintln!(
                                "sedex-service: follower {} refused a frame: {head}",
                                link.target
                            );
                            break false;
                        }
                        None => break false,
                    }
                }
            }
        };
        let target = link.target.clone();
        let repl = link.repl.clone();
        let shipping = link.shipping;
        self.peers.insert(tok, link);
        if !alive {
            self.teardown_peer(tok);
            return false;
        }
        if just_ready && shipping {
            // Order matters: gate appends into the queue *before* the disk
            // catch-up. `catch_up_with` holds the queue lock across the
            // read, so an append racing this either lands after the
            // catch-up (kept) or reached disk before it (re-read); the
            // standby's watermark swallows the overlap.
            cl.state.set_shipping(&target, true);
            if let Some(repl) = repl {
                repl.acked
                    .store(repl.sent.load(Ordering::Relaxed), Ordering::Relaxed);
                repl.catch_up_with(|| repl_catchup_frames(&self.shared));
            }
            self.peer_ship_link(tok);
        }
        true
    }

    /// Ship queued records on every follower link — the per-loop-turn hook
    /// (workers wake the reactor after each completion, so appends ship
    /// within one turn).
    fn peer_ship(&mut self) {
        let toks: Vec<u64> = self
            .peers
            .iter()
            .filter(|(_, l)| l.shipping && l.ready)
            .map(|(&t, _)| t)
            .collect();
        for tok in toks {
            self.peer_ship_link(tok);
        }
    }

    /// Move one follower's queued records onto its link, bounding the
    /// bytes buffered in userspace — a slow follower backpressures into
    /// its queue, whose length the lag gauge reports honestly. Each frame
    /// fires [`FaultPoint::PeerSend`]: an injected hard error swallows the
    /// frame (the network ate it — the follower sees an LSN gap for
    /// anti-entropy to repair), a short write truncates it and drops the
    /// link (a torn frame at the follower).
    fn peer_ship_link(&mut self, tok: u64) {
        let shared = Arc::clone(&self.shared);
        let Some(cl) = shared.cluster.as_ref() else {
            return;
        };
        let mut torn = false;
        {
            let Some(link) = self.peers.get_mut(&tok) else {
                return;
            };
            if !link.ready || !link.shipping {
                return;
            }
            let Some(repl) = link.repl.clone() else {
                return;
            };
            'fill: while link.wbuf.len() < (1 << 20) {
                let frames = repl.drain(64);
                if frames.is_empty() {
                    break;
                }
                for f in frames {
                    let Ok(bytes) = wire::encode_request(&Request::Repl {
                        origin: cl.state.node_id().to_owned(),
                        shard: f.shard,
                        payload: f.payload,
                    }) else {
                        continue;
                    };
                    match shared
                        .faults
                        .as_ref()
                        .and_then(|p| p.fire(FaultPoint::PeerSend))
                    {
                        Some(FaultKind::Error(_)) => continue,
                        Some(FaultKind::ShortWrite) => {
                            link.wbuf.queue(&bytes[..bytes.len() / 2]);
                            torn = true;
                            break 'fill;
                        }
                        _ => {}
                    }
                    link.wbuf.queue(&bytes);
                    link.awaiting.push_back(Awaiting::Repl);
                    repl.sent.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if torn {
            self.flush_peer(tok);
            self.teardown_peer(tok);
            return;
        }
        self.flush_peer(tok);
    }

    fn flush_peer(&mut self, tok: u64) {
        let flushed = {
            let Some(link) = self.peers.get_mut(&tok) else {
                return;
            };
            if link.wbuf.is_empty() {
                Ok(true)
            } else {
                let (wbuf, stream) = (&mut link.wbuf, &link.stream);
                wbuf.flush(&mut { stream })
            }
        };
        if flushed.is_err() {
            self.teardown_peer(tok);
        } else {
            self.update_peer_interest(tok);
        }
    }

    fn update_peer_interest(&mut self, tok: u64) {
        let Some(link) = self.peers.get_mut(&tok) else {
            return;
        };
        let want = Interest {
            readable: true,
            writable: !link.wbuf.is_empty(),
        };
        if want != link.interest
            && self
                .poller
                .modify(link.stream.as_raw_fd(), Token(tok), want)
                .is_ok()
        {
            link.interest = want;
        }
    }

    /// Drop one peer link. For a follower link this un-gates WAL appends
    /// into its queue (nothing enqueues while down — the reconnect's disk
    /// catch-up supersedes the queue) and zeroes its visible lag:
    /// in-flight unacked frames will simply be re-read from disk next
    /// time. The follower's `ReplPeer` entry survives (counters persist);
    /// it is retired only when the peer dies or leaves the follower set.
    fn teardown_peer(&mut self, tok: u64) {
        let Some(link) = self.peers.remove(&tok) else {
            return;
        };
        let _ = self.poller.deregister(link.stream.as_raw_fd());
        if !link.shipping {
            return;
        }
        if let Some(cl) = &self.shared.cluster {
            cl.state.set_shipping(&link.target, false);
        }
        if let Some(repl) = &link.repl {
            repl.acked
                .store(repl.sent.load(Ordering::Relaxed), Ordering::Relaxed);
            repl.catch_up_with(Vec::new);
        }
    }

    fn teardown_all_peers(&mut self) {
        let toks: Vec<u64> = self.peers.keys().copied().collect();
        for tok in toks {
            self.teardown_peer(tok);
        }
    }

    // --- timers and shutdown ------------------------------------------

    /// Answer `ERR DEADLINE` for requests whose worker blew through the
    /// deadline *and* the reply grace — the worker is stuck; the client is
    /// answered here and the connection closed, abandoning the job (its
    /// eventual completion is discarded as stale).
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        loop {
            let Some((&(at, token), &seq)) = self.expiries.iter().next() else {
                return;
            };
            if at > now {
                return;
            }
            self.expiries.remove(&(at, token));
            // Take the inflight: the reactor answers this request itself,
            // so the worker's eventual completion must be seen as stale by
            // `on_done` — otherwise a worker finishing during the flush
            // would queue a second response for the same request.
            let fired = {
                match self.conns.get_mut(&token) {
                    Some(c) if c.inflight.as_ref().is_some_and(|i| i.seq == seq) => {
                        c.inflight.take().map(|i| i.proto)
                    }
                    _ => None,
                }
            };
            if let Some(proto) = fired {
                self.shared.stats.deadlines.inc();
                let resp = deadline_response(&self.shared);
                self.guarded(token, |r| {
                    if r.write_response(token, &resp, proto, true) && r.flush_conn(token) {
                        // Partial flush: make sure writable readiness is
                        // armed so the error actually drains.
                        r.update_interest(token);
                    }
                });
            }
        }
    }

    /// Shutdown requested: stop accepting, take one final read sweep per
    /// connection (whatever the client already sent gets served), then let
    /// every connection finish its queue and flush.
    fn enter_drain(&mut self) {
        self.draining = true;
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.guarded(token, |r| {
                r.conn_readable(token);
                let alive = match r.conns.get_mut(&token) {
                    Some(c) => {
                        c.read_closed = true;
                        true
                    }
                    None => false,
                };
                if alive {
                    r.pump(token);
                }
            });
        }
    }
}
