//! Multi-tenant session management: a sharded map from session name to a
//! live [`SedexSession`].
//!
//! Each tenant owns one pay-as-you-go session — its script repository and
//! seen-set persist across requests, so a tenant that pushes a thousand
//! same-shape tuples pays script generation once and reuse ever after
//! (observable over the wire: the `PUSH` response carries the cumulative
//! generated/reused counters).
//!
//! The map is sharded `name → shard(hash(name))` so tenants on different
//! shards never contend on a lock; within a shard, the map lock is held
//! only to clone an `Arc`, and the per-tenant mutex serializes that
//! tenant's *mutating* requests (a session is inherently sequential — its
//! seen-set and repository mutate on every push).
//!
//! **MVCC read path.** Next to the mutex, every [`TenantSlot`] carries a
//! *published* [`SessionReadSnapshot`] behind a short-critical-section
//! `RwLock<Arc<…>>`. Writers republish it at the end of every mutating
//! request, while still holding the tenant mutex — so the published state
//! always sits exactly on a batch boundary. Read-only verbs go through
//! [`SessionManager::read_view`], which clones the `Arc` and **never
//! touches the tenant mutex**: a reader can never block behind (or block!)
//! a slow exchange, and always sees pre- or post-batch state, never a torn
//! batch.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, TryLockError};
use std::time::Instant;

use sedex_core::{
    ExchangeReport, Observer, SedexConfig, SedexSession, SessionReadSnapshot, SessionState,
};
use sedex_observe::Counter;
use sedex_scenarios::textfmt;
use sedex_storage::Instance;

/// Consecutive `WouldBlock` sweeps after which the sweeper warns that a
/// tenant may be wedged. With snapshot reads landed, only a *mutating*
/// request can hold the tenant mutex — a tenant busy this long is either
/// under sustained write load or has a stuck writer, and an operator
/// should know which.
const BUSY_SWEEP_WARN: u32 = 8;

/// One tenant: a live session plus bookkeeping.
pub struct Tenant {
    /// The live pay-as-you-go session.
    pub session: SedexSession,
    /// The `.sdx` scenario body the session was opened with — persisted in
    /// durability snapshots so recovery can rebuild the engine machinery.
    pub scenario: String,
    /// Time of the last request that touched this tenant (drives TTL
    /// eviction).
    pub last_access: Instant,
    /// Requests served for this tenant (any verb).
    pub requests: u64,
    /// Tuples pushed or fed.
    pub tuples_in: u64,
}

impl Tenant {
    fn new(session: SedexSession, scenario: String) -> Self {
        Tenant {
            session,
            scenario,
            last_access: Instant::now(),
            requests: 0,
            tuples_in: 0,
        }
    }

    /// Record a request touching this tenant.
    pub fn touch(&mut self) {
        self.last_access = Instant::now();
        self.requests += 1;
    }
}

/// The session state a writer last published, always captured at a batch
/// boundary (end of a mutating request, under the tenant mutex). Shared
/// out to readers as one `Arc` clone.
pub struct PublishedState {
    /// The session view at the boundary.
    pub snapshot: SessionReadSnapshot,
    /// Mutating requests served when the state was published.
    pub requests: u64,
    /// Tuples pushed or fed when the state was published.
    pub tuples_in: u64,
}

/// One map entry: the mutex-serialized live tenant plus the lock-free read
/// side (published snapshot and read bookkeeping).
pub struct TenantSlot {
    tenant: Mutex<Tenant>,
    published: RwLock<Arc<PublishedState>>,
    /// Read-only requests served off the published snapshot.
    reads: AtomicU64,
    /// Milliseconds (since manager start) of the last snapshot read —
    /// keeps read-hammered sessions out of the TTL sweep without readers
    /// ever locking the tenant.
    last_read_ms: AtomicU64,
    /// Consecutive sweeps that found the tenant mutex held (resets when a
    /// sweep gets the lock) — the aging signal for wedged tenants.
    busy_sweeps: AtomicU32,
}

impl TenantSlot {
    fn new(tenant: Tenant, now_ms: u64) -> Arc<Self> {
        let state = Arc::new(PublishedState {
            snapshot: tenant.session.read_snapshot(),
            requests: tenant.requests,
            tuples_in: tenant.tuples_in,
        });
        Arc::new(TenantSlot {
            tenant: Mutex::new(tenant),
            published: RwLock::new(state),
            reads: AtomicU64::new(0),
            last_read_ms: AtomicU64::new(now_ms),
            busy_sweeps: AtomicU32::new(0),
        })
    }

    /// The tenant mutex — writers only. Readers use
    /// [`SessionManager::read_view`].
    pub fn tenant(&self) -> &Mutex<Tenant> {
        &self.tenant
    }

    /// The currently published batch-boundary state (one `Arc` clone; the
    /// inner `RwLock` is held only for the clone).
    pub fn published(&self) -> Arc<PublishedState> {
        Arc::clone(&self.published.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Publish the tenant's current state. Called with the tenant mutex
    /// held, so the capture sits exactly on a request (batch) boundary.
    fn publish(&self, t: &Tenant) {
        let state = Arc::new(PublishedState {
            snapshot: t.session.read_snapshot(),
            requests: t.requests,
            tuples_in: t.tuples_in,
        });
        *self.published.write().unwrap_or_else(|p| p.into_inner()) = state;
    }
}

/// What [`SessionManager::read_view`] hands a reader: the published state
/// plus the slot's read counter (so `STATS` can report reads + writes).
pub struct ReadView {
    /// The published batch-boundary state.
    pub state: Arc<PublishedState>,
    /// Snapshot reads served for this session, this one included.
    pub reads: u64,
}

impl std::fmt::Debug for ReadView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadView")
            .field("epoch", &self.state.snapshot.target.epoch())
            .field("reads", &self.reads)
            .finish_non_exhaustive()
    }
}

/// A durability export of one manager shard (see
/// [`SessionManager::export_shard`]).
pub struct ShardExport {
    /// `(name, scenario, requests, tuples_in, state)` per tenant, sorted
    /// by name.
    pub sessions: Vec<(String, String, u64, u64, SessionState)>,
    /// Quarantined (poisoned) tenants left out of the export — a non-zero
    /// count means the snapshot is partial and operators should see a
    /// DEGRADED flag.
    pub skipped_poisoned: usize,
}

/// Sharded `name → tenant` map.
pub struct SessionManager {
    shards: Vec<RwLock<HashMap<String, Arc<TenantSlot>>>>,
    session_config: SedexConfig,
    observer: Option<Arc<dyn Observer>>,
    evictions: Option<Arc<Counter>>,
    sweep_retries: Option<Arc<Counter>>,
    /// Time base for the per-slot `last_read_ms` atomics.
    started: Instant,
}

/// Errors from manager operations, rendered verbatim into `ERR` replies.
pub type ManagerError = String;

impl SessionManager {
    /// Create a manager with `shards` independent map shards (min 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1);
        SessionManager {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            session_config: SedexConfig::default(),
            observer: None,
            evictions: None,
            sweep_retries: None,
            started: Instant::now(),
        }
    }

    /// Milliseconds since this manager was constructed — the time base the
    /// read path stamps into `last_read_ms`.
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Count TTL evictions on this counter (typically
    /// `sedex_sessions_evicted_total` from the server's registry), so the
    /// sweep is observable instead of silent.
    pub fn with_eviction_counter(mut self, counter: Arc<Counter>) -> Self {
        self.evictions = Some(counter);
        self
    }

    /// Count sweep passes that found a tenant mutex held (typically
    /// `sedex_sweep_retries_total`): the aging signal that distinguishes
    /// "busy under write load" from "wedged" — snapshot readers never hold
    /// the tenant mutex, so sustained retries always implicate a writer.
    pub fn with_sweep_retry_counter(mut self, counter: Arc<Counter>) -> Self {
        self.sweep_retries = Some(counter);
        self
    }

    /// Use this configuration (instead of the default) for every session
    /// opened through the manager.
    pub fn with_session_config(mut self, config: SedexConfig) -> Self {
        self.session_config = config;
        self
    }

    /// Attach a trace observer to every session opened through the
    /// manager (phase timings, repository hit/miss, egd outcomes —
    /// typically a [`sedex_core::RegistryObserver`] over the server's
    /// metrics registry).
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    fn shard(&self, name: &str) -> &RwLock<HashMap<String, Arc<TenantSlot>>> {
        &self.shards[self.shard_index(name)]
    }

    /// Open a session from an inline `.sdx` scenario body. Seed tuples from
    /// the `[data]` section are fed (not exchanged) so they are available
    /// as dimension data for later pushes. Fails if the name is taken.
    pub fn open(&self, name: &str, body: &str) -> Result<usize, ManagerError> {
        self.open_with(name, body, || ())
    }

    /// [`open`](Self::open), invoking `on_commit` while the shard map write
    /// lock is still held, after the session became visible. Used by the
    /// durability layer to append the `Open` WAL record *before* any other
    /// request can reach the new tenant (a lookup needs the shard read
    /// lock), so the log order matches the application order.
    pub fn open_with(
        &self,
        name: &str,
        body: &str,
        on_commit: impl FnOnce(),
    ) -> Result<usize, ManagerError> {
        let file = textfmt::parse_scenario(body).map_err(|e| format!("scenario {e}"))?;
        let s = file.scenario;
        let mut session =
            SedexSession::new(self.session_config.clone(), s.source, s.target, s.sigma)
                .map_err(|e| format!("session: {e}"))?
                .with_cfds(file.cfds)
                .with_label(name);
        if let Some(obs) = &self.observer {
            session = session.with_observer(Arc::clone(obs));
        }
        let mut seeded = 0usize;
        for (rel, inst) in file.instance.relations() {
            for t in inst.iter() {
                session
                    .feed(rel, t.clone())
                    .map_err(|e| format!("seed data: {e}"))?;
                seeded += 1;
            }
        }
        let shard = self.shard(name);
        let mut map = shard.write().expect("shard lock poisoned");
        if map.contains_key(name) {
            return Err(format!("session `{name}` already exists"));
        }
        map.insert(
            name.to_owned(),
            TenantSlot::new(Tenant::new(session, body.to_owned()), self.now_ms()),
        );
        on_commit();
        Ok(seeded)
    }

    /// Install an already-built session (the recovery path): unlike
    /// [`open`](Self::open) the session arrives fully restored — no scenario
    /// parsing, no seed feeding — and the request/tuple counters carry over.
    /// Fails if the name is taken.
    pub fn install(
        &self,
        name: &str,
        scenario: String,
        session: SedexSession,
        requests: u64,
        tuples_in: u64,
    ) -> Result<(), ManagerError> {
        let shard = self.shard(name);
        let mut map = shard.write().expect("shard lock poisoned");
        if map.contains_key(name) {
            return Err(format!("session `{name}` already exists"));
        }
        // Recovered sessions arrive label-less (the label is not part of
        // persisted state); re-attach it so slow-record attribution
        // survives a restart.
        let mut tenant = Tenant::new(session.with_label(name), scenario);
        tenant.requests = requests;
        tenant.tuples_in = tuples_in;
        map.insert(name.to_owned(), TenantSlot::new(tenant, self.now_ms()));
        Ok(())
    }

    /// Number of map shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a session name hashes to — the durability layer keys
    /// its per-shard WAL/snapshot directories off the same mapping.
    pub fn shard_index(&self, name: &str) -> usize {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Export every session on shard `idx` for a durability snapshot.
    /// Tenant handles are collected under the shard read lock, then each
    /// tenant is locked individually — a tenant mid-request delays only
    /// its own export, and no shard lock is held while session state is
    /// cloned.
    ///
    /// Quarantined (poisoned) tenants are left out — they are possibly
    /// half-mutated, and the panic handler already appended their durable
    /// Close — but they are *counted*: `skipped_poisoned` lets the caller
    /// surface a partial snapshot instead of silently shrinking it.
    pub fn export_shard(&self, idx: usize) -> ShardExport {
        let handles: Vec<(String, Arc<TenantSlot>)> = self.shards[idx]
            .read()
            .expect("shard lock poisoned")
            .iter()
            .map(|(name, slot)| (name.clone(), Arc::clone(slot)))
            .collect();
        let mut skipped_poisoned = 0usize;
        let mut sessions: Vec<(String, String, u64, u64, SessionState)> = handles
            .into_iter()
            .filter_map(|(name, slot)| match slot.tenant.lock() {
                Ok(t) => {
                    let state = t.session.export_state();
                    Some((name, t.scenario.clone(), t.requests, t.tuples_in, state))
                }
                Err(_) => {
                    skipped_poisoned += 1;
                    None
                }
            })
            .collect();
        sessions.sort_by(|a, b| a.0.cmp(&b.0));
        ShardExport {
            sessions,
            skipped_poisoned,
        }
    }

    /// Look a tenant slot up, returning a clone of its handle (the shard
    /// lock is released before the caller touches the slot).
    pub fn get(&self, name: &str) -> Option<Arc<TenantSlot>> {
        self.shard(name)
            .read()
            .expect("shard lock poisoned")
            .get(name)
            .cloned()
    }

    /// Run `f` with exclusive access to the tenant, bumping its
    /// access-tracking counters first — the *writer* path. After `f`
    /// returns, the tenant's state is republished while the mutex is still
    /// held, so readers always observe a request/batch boundary.
    ///
    /// A tenant whose mutex is poisoned — a previous request panicked while
    /// holding it, leaving the session possibly half-mutated — is
    /// *quarantined*: every request is refused with a `POISONED` error
    /// until `CLOSE` or the TTL sweeper removes it. The error is rendered
    /// verbatim into the `ERR` reply, so clients can distinguish it.
    pub fn with_tenant<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut Tenant) -> R,
    ) -> Result<R, ManagerError> {
        let slot = self
            .get(name)
            .ok_or_else(|| format!("no such session `{name}`"))?;
        let mut guard = slot
            .tenant
            .lock()
            .map_err(|_| format!("POISONED session `{name}` is quarantined after a panic"))?;
        guard.touch();
        let out = f(&mut guard);
        // Publish the post-request state before releasing the mutex. Note
        // this runs even when `f` reported a request-level error: partial
        // effects (e.g. rows applied before a mid-batch parse failure) are
        // already the session's real state, and the WAL saw them too.
        slot.publish(&guard);
        Ok(out)
    }

    /// The *reader* path: hand out the published batch-boundary state
    /// without touching the tenant mutex. One shard-map read lock to clone
    /// the slot handle, a poison check (lock-free), one `RwLock` read to
    /// clone the `Arc` — a reader can neither block behind a slow exchange
    /// nor wedge the sweeper.
    pub fn read_view(&self, name: &str) -> Result<ReadView, ManagerError> {
        let slot = self
            .get(name)
            .ok_or_else(|| format!("no such session `{name}`"))?;
        if slot.tenant.is_poisoned() {
            return Err(format!(
                "POISONED session `{name}` is quarantined after a panic"
            ));
        }
        let reads = slot.reads.fetch_add(1, Ordering::Relaxed) + 1;
        slot.last_read_ms.store(self.now_ms(), Ordering::Relaxed);
        Ok(ReadView {
            state: slot.published(),
            reads,
        })
    }

    /// Remove the tenant and finish its session, returning the final
    /// target and report.
    pub fn close(&self, name: &str) -> Result<(Instance, ExchangeReport), ManagerError> {
        self.close_with(name, || ())
    }

    /// [`close`](Self::close), invoking `on_remove` while the shard map
    /// write lock is still held, right after the removal. The durability
    /// layer appends the `Close` WAL record there: a later re-`OPEN` of the
    /// same name must first take this write lock, so its `Open` record can
    /// only land after the `Close` — the log order a replay depends on.
    pub fn close_with(
        &self,
        name: &str,
        on_remove: impl FnOnce(),
    ) -> Result<(Instance, ExchangeReport), ManagerError> {
        let tenant = {
            let mut map = self.shard(name).write().expect("shard lock poisoned");
            let tenant = map
                .remove(name)
                .ok_or_else(|| format!("no such session `{name}`"))?;
            on_remove();
            tenant
        };
        // Any request already holding the tenant finishes first; unwrapping
        // the Arc then succeeds because the map entry was the other owner.
        // (Readers hold slot handles only for the duration of an Arc clone,
        // never across rendering — they render off their own PublishedState
        // Arc — so the spin still converges immediately.)
        // Poisoning is deliberately forgiven here: CLOSE must be able to
        // remove a quarantined session, and `finish` only reads.
        let tenant = Self::unwrap_slot(tenant);
        Ok(tenant.session.finish())
    }

    /// Spin until we are the sole owner of the slot, then take the tenant
    /// out, forgiving mutex poisoning.
    fn unwrap_slot(slot: Arc<TenantSlot>) -> Tenant {
        let mut arc = slot;
        loop {
            match Arc::try_unwrap(arc) {
                Ok(s) => break s.tenant.into_inner().unwrap_or_else(|p| p.into_inner()),
                Err(a) => {
                    std::thread::yield_now();
                    arc = a;
                }
            }
        }
    }

    /// Rebuild a session from its scenario body and exported state, then
    /// install it — the live-migration receive path. The scenario is parsed
    /// for the engine machinery (schemas, correspondences, cfds) exactly
    /// like [`open`](Self::open), but no seed data is fed: `state` carries
    /// the source and target instances wholesale. `on_commit` runs under
    /// the shard map write lock, after the session became visible.
    pub fn install_restored(
        &self,
        name: &str,
        scenario: &str,
        state: SessionState,
        requests: u64,
        tuples_in: u64,
        on_commit: impl FnOnce(),
    ) -> Result<(), ManagerError> {
        let file = textfmt::parse_scenario(scenario).map_err(|e| format!("scenario {e}"))?;
        let s = file.scenario;
        let mut session =
            SedexSession::new(self.session_config.clone(), s.source, s.target, s.sigma)
                .map_err(|e| format!("session: {e}"))?
                .with_cfds(file.cfds)
                .with_label(name);
        if let Some(obs) = &self.observer {
            session = session.with_observer(Arc::clone(obs));
        }
        session.restore_state(state);
        let shard = self.shard(name);
        let mut map = shard.write().expect("shard lock poisoned");
        if map.contains_key(name) {
            return Err(format!("session `{name}` already exists"));
        }
        let mut tenant = Tenant::new(session, scenario.to_owned());
        tenant.requests = requests;
        tenant.tuples_in = tuples_in;
        map.insert(name.to_owned(), TenantSlot::new(tenant, self.now_ms()));
        on_commit();
        Ok(())
    }

    /// Remove the tenant and hand its pieces back **without** finishing
    /// the session — the live-migration path: the caller exports the
    /// session's state and ships it to another node. `on_remove` runs while
    /// the shard map write lock is still held (the durability layer appends
    /// the `Close` WAL record there, same contract as
    /// [`close_with`](Self::close_with)). Returns
    /// `(scenario, requests, tuples_in, session)`.
    pub fn take(
        &self,
        name: &str,
        on_remove: impl FnOnce(),
    ) -> Result<(String, u64, u64, SedexSession), ManagerError> {
        let tenant = {
            let mut map = self.shard(name).write().expect("shard lock poisoned");
            let tenant = map
                .remove(name)
                .ok_or_else(|| format!("no such session `{name}`"))?;
            on_remove();
            tenant
        };
        // Same sole-ownership spin as `close_with`: a request already
        // holding the tenant finishes first, then the Arc unwraps.
        let tenant = Self::unwrap_slot(tenant);
        Ok((
            tenant.scenario,
            tenant.requests,
            tenant.tuples_in,
            tenant.session,
        ))
    }

    /// Number of live sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").len())
            .sum()
    }

    /// True when no session is open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live-session count per shard, in shard order — the `STATS` load
    /// signal for spotting hot shards.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").len())
            .collect()
    }

    /// Names of all live sessions (sorted, for stable `STATS` output).
    pub fn names(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("shard lock poisoned")
                    .keys()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort();
        out
    }

    /// Drop every session idle for longer than `ttl`; returns the evicted
    /// names. Tenants currently locked by a request are by definition not
    /// idle and are skipped (their `last_access` was just bumped).
    pub fn evict_idle(&self, ttl: std::time::Duration) -> Vec<String> {
        self.evict_idle_with(ttl, |_| ())
    }

    /// [`evict_idle`](Self::evict_idle), invoking `on_evict(name)` for each
    /// dropped tenant while its shard map write lock is still held — the
    /// durability layer appends a `Close` WAL record there, so an eviction
    /// is as durable as a wire `CLOSE` and crash recovery does not
    /// resurrect sessions the TTL policy already dropped.
    ///
    /// Quarantined (poisoned) tenants are evicted on sight regardless of
    /// idle time: they can never serve another request, and their
    /// `last_access` stopped moving at the panic. Every eviction is logged
    /// to stderr and counted on the configured eviction counter.
    ///
    /// A tenant whose mutex is held when the sweep arrives is skipped but
    /// *aged*: its slot's `busy_sweeps` counter grows (and the sweep-retry
    /// counter ticks) until a sweep finally gets the lock. Snapshot
    /// readers never hold the tenant mutex — see
    /// [`SessionManager::read_view`] — so consecutive busy sweeps always
    /// implicate a writer; past [`BUSY_SWEEP_WARN`] the sweeper warns that
    /// a request may be stuck. Sessions kept warm only by snapshot reads
    /// are not evicted: idleness requires both the write clock
    /// (`last_access`) *and* the read clock (`last_read_ms`) to be past
    /// the TTL.
    pub fn evict_idle_with(
        &self,
        ttl: std::time::Duration,
        mut on_evict: impl FnMut(&str),
    ) -> Vec<String> {
        let mut evicted = Vec::new();
        let now_ms = self.now_ms();
        let ttl_ms = ttl.as_millis() as u64;
        for shard in &self.shards {
            let mut map = shard.write().expect("shard lock poisoned");
            map.retain(|name, slot| {
                let (keep, why) = match slot.tenant.try_lock() {
                    Ok(t) => {
                        slot.busy_sweeps.store(0, Ordering::Relaxed);
                        let write_idle = t.last_access.elapsed() >= ttl;
                        // Snapshot reads keep a session warm too — but only
                        // actual reads: a never-read session ages purely on
                        // its write clock.
                        let read_recent = slot.reads.load(Ordering::Relaxed) > 0
                            && now_ms.saturating_sub(slot.last_read_ms.load(Ordering::Relaxed))
                                < ttl_ms;
                        (!write_idle || read_recent, "idle past TTL")
                    }
                    Err(TryLockError::Poisoned(_)) => (false, "quarantined after a panic"),
                    Err(TryLockError::WouldBlock) => {
                        // In use right now — not idle, but count the retry
                        // so a wedged writer ages visibly instead of
                        // hiding behind "busy" forever.
                        let n = slot.busy_sweeps.fetch_add(1, Ordering::Relaxed) + 1;
                        if let Some(c) = &self.sweep_retries {
                            c.inc();
                        }
                        if n == BUSY_SWEEP_WARN {
                            eprintln!(
                                "sedex-service: session `{name}` has been busy for {n} \
                                 consecutive sweeps — a writer may be stuck (snapshot \
                                 readers never hold the tenant mutex)"
                            );
                        }
                        (true, "")
                    }
                };
                if !keep {
                    eprintln!("sedex-service: evicting session `{name}` ({why})");
                    if let Some(c) = &self.evictions {
                        c.inc();
                    }
                    on_evict(name);
                    evicted.push(name.clone());
                }
                keep
            });
        }
        evicted.sort();
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const SCENARIO: &str = "\
[source]
Dep(dname*, building)
Student(sname*, program, dep->Dep)

[target]
Stu(student*, prog, dpt)

[correspondences]
sname <-> student
program <-> prog
dep <-> dpt

[data]
Dep: d1, b1
";

    #[test]
    fn open_push_close_roundtrip() {
        let m = SessionManager::new(4);
        let seeded = m.open("t1", SCENARIO).unwrap();
        assert_eq!(seeded, 1);
        assert_eq!(m.len(), 1);
        m.with_tenant("t1", |t| {
            let (rel, tuple) = textfmt::parse_data_line("Student: s1, p1, d1", 1).unwrap();
            t.session.exchange_tuple(&rel, tuple).unwrap();
            t.tuples_in += 1;
        })
        .unwrap();
        let (target, report) = m.close("t1").unwrap();
        assert_eq!(target.relation("Stu").unwrap().len(), 1);
        assert_eq!(report.scripts_generated, 1);
        assert!(m.is_empty());
    }

    #[test]
    fn duplicate_open_and_missing_session_fail() {
        let m = SessionManager::new(2);
        m.open("a", SCENARIO).unwrap();
        assert!(m
            .open("a", SCENARIO)
            .unwrap_err()
            .contains("already exists"));
        assert!(m.with_tenant("ghost", |_| ()).is_err());
        assert!(m.close("ghost").is_err());
    }

    #[test]
    fn bad_scenario_is_rejected() {
        let m = SessionManager::new(1);
        let e = m.open("bad", "Student(sname*)\n").unwrap_err();
        assert!(e.contains("scenario"), "{e}");
        assert!(m.is_empty());
    }

    #[test]
    fn eviction_drops_only_idle_sessions() {
        let m = SessionManager::new(4);
        m.open("old", SCENARIO).unwrap();
        m.open("fresh", SCENARIO).unwrap();
        // Make `old` look idle by back-dating its last access.
        {
            let slot = m.get("old").unwrap();
            let mut t = slot.tenant().lock().unwrap();
            t.last_access = Instant::now() - Duration::from_secs(3600);
        }
        let evicted = m.evict_idle(Duration::from_secs(60));
        assert_eq!(evicted, vec!["old".to_string()]);
        assert_eq!(m.names(), vec!["fresh".to_string()]);
    }

    #[test]
    fn read_view_succeeds_while_tenant_mutex_is_held() {
        // The satellite assertion for the sweeper fix: readers can NEVER
        // hold the tenant mutex, because the read path does not take it —
        // even with a writer wedged mid-request, snapshot reads answer.
        let m = Arc::new(SessionManager::new(2));
        m.open("busy", SCENARIO).unwrap();
        let slot = m.get("busy").unwrap();
        let guard = slot.tenant().lock().unwrap(); // simulate a stuck writer
        let m2 = Arc::clone(&m);
        let reader = std::thread::spawn(move || {
            let view = m2.read_view("busy").expect("read under held mutex");
            view.state.snapshot.target.total_tuples()
        });
        let tuples = reader.join().expect("reader must not block or panic");
        assert_eq!(tuples, 0);
        drop(guard);
    }

    #[test]
    fn read_view_sees_only_published_batch_boundaries() {
        let m = SessionManager::new(2);
        m.open("t", SCENARIO).unwrap();
        // Initial publish: the seeded-but-unexchanged state.
        let v0 = m.read_view("t").unwrap();
        assert_eq!(v0.state.snapshot.target.total_tuples(), 0);
        // A view captured *before* a write never changes...
        m.with_tenant("t", |t| {
            let (rel, tuple) = textfmt::parse_data_line("Student: s1, p1, d1", 1).unwrap();
            t.session.exchange_tuple(&rel, tuple).unwrap();
            t.tuples_in += 1;
        })
        .unwrap();
        assert_eq!(v0.state.snapshot.target.total_tuples(), 0);
        // ...and a fresh view sees exactly the post-request state.
        let v1 = m.read_view("t").unwrap();
        assert_eq!(v1.state.snapshot.target.total_tuples(), 1);
        assert_eq!(v1.state.requests, 1);
        assert_eq!(v1.state.tuples_in, 1);
        assert_eq!(v1.reads, 2);
    }

    #[test]
    fn read_view_refuses_poisoned_tenants() {
        let m = SessionManager::new(1);
        m.open("p", SCENARIO).unwrap();
        let slot = m.get("p").unwrap();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = slot.tenant().lock().unwrap();
            panic!("boom");
        }));
        assert!(slot.tenant().is_poisoned());
        let err = m.read_view("p").unwrap_err();
        assert!(err.contains("POISONED"), "{err}");
    }

    #[test]
    fn export_shard_counts_skipped_poisoned_tenants() {
        let m = SessionManager::new(1);
        m.open("ok", SCENARIO).unwrap();
        m.open("poisoned", SCENARIO).unwrap();
        let slot = m.get("poisoned").unwrap();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = slot.tenant().lock().unwrap();
            panic!("boom");
        }));
        drop(slot);
        let export = m.export_shard(0);
        assert_eq!(export.skipped_poisoned, 1);
        assert_eq!(export.sessions.len(), 1);
        assert_eq!(export.sessions[0].0, "ok");
    }

    #[test]
    fn sweeper_ages_busy_tenants_on_a_retry_counter() {
        let registry = sedex_observe::MetricsRegistry::new();
        let retries = registry.counter("sedex_sweep_retries_total", "sweep retries");
        let m = SessionManager::new(1).with_sweep_retry_counter(Arc::clone(&retries));
        m.open("held", SCENARIO).unwrap();
        let slot = m.get("held").unwrap();
        let guard = slot.tenant().lock().unwrap();
        // Several sweeps while a writer holds the mutex: the session is
        // never evicted, but every pass ticks the retry counter.
        for _ in 0..3 {
            assert!(m.evict_idle(Duration::from_millis(0)).is_empty());
        }
        assert_eq!(retries.get(), 3);
        drop(guard);
        // With the mutex free and a zero TTL the next sweep evicts (no
        // reads ever happened, so the read clock does not hold it back).
        assert_eq!(m.evict_idle(Duration::from_millis(0)), vec!["held"]);
    }

    #[test]
    fn snapshot_reads_keep_a_session_warm() {
        let m = SessionManager::new(1);
        m.open("readonly", SCENARIO).unwrap();
        // Back-date the write clock far past any TTL.
        {
            let slot = m.get("readonly").unwrap();
            let mut t = slot.tenant().lock().unwrap();
            t.last_access = Instant::now() - Duration::from_secs(3600);
        }
        // A recent snapshot read holds the session in the map...
        m.read_view("readonly").unwrap();
        assert!(m.evict_idle(Duration::from_secs(60)).is_empty());
        // ...but cannot do so forever: with a zero TTL even the fresh
        // read is stale, and the sweep reclaims the session.
        assert_eq!(m.evict_idle(Duration::from_millis(0)), vec!["readonly"]);
    }

    #[test]
    fn names_are_sorted_across_shards() {
        let m = SessionManager::new(8);
        for n in ["zeta", "alpha", "mid"] {
            m.open(n, SCENARIO).unwrap();
        }
        assert_eq!(m.names(), vec!["alpha", "mid", "zeta"]);
    }
}
