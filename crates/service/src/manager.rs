//! Multi-tenant session management: a sharded map from session name to a
//! live [`SedexSession`].
//!
//! Each tenant owns one pay-as-you-go session — its script repository and
//! seen-set persist across requests, so a tenant that pushes a thousand
//! same-shape tuples pays script generation once and reuse ever after
//! (observable over the wire: the `PUSH` response carries the cumulative
//! generated/reused counters).
//!
//! The map is sharded `name → shard(hash(name))` so tenants on different
//! shards never contend on a lock; within a shard, the map lock is held
//! only to clone an `Arc`, and the per-tenant mutex serializes that
//! tenant's requests (a session is inherently sequential — its seen-set
//! and repository mutate on every push).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, RwLock, TryLockError};
use std::time::Instant;

use sedex_core::{ExchangeReport, Observer, SedexConfig, SedexSession, SessionState};
use sedex_observe::Counter;
use sedex_scenarios::textfmt;
use sedex_storage::Instance;

/// One tenant: a live session plus bookkeeping.
pub struct Tenant {
    /// The live pay-as-you-go session.
    pub session: SedexSession,
    /// The `.sdx` scenario body the session was opened with — persisted in
    /// durability snapshots so recovery can rebuild the engine machinery.
    pub scenario: String,
    /// Time of the last request that touched this tenant (drives TTL
    /// eviction).
    pub last_access: Instant,
    /// Requests served for this tenant (any verb).
    pub requests: u64,
    /// Tuples pushed or fed.
    pub tuples_in: u64,
}

impl Tenant {
    fn new(session: SedexSession, scenario: String) -> Self {
        Tenant {
            session,
            scenario,
            last_access: Instant::now(),
            requests: 0,
            tuples_in: 0,
        }
    }

    /// Record a request touching this tenant.
    pub fn touch(&mut self) {
        self.last_access = Instant::now();
        self.requests += 1;
    }
}

/// Sharded `name → tenant` map.
pub struct SessionManager {
    shards: Vec<RwLock<HashMap<String, Arc<Mutex<Tenant>>>>>,
    session_config: SedexConfig,
    observer: Option<Arc<dyn Observer>>,
    evictions: Option<Arc<Counter>>,
}

/// Errors from manager operations, rendered verbatim into `ERR` replies.
pub type ManagerError = String;

impl SessionManager {
    /// Create a manager with `shards` independent map shards (min 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1);
        SessionManager {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            session_config: SedexConfig::default(),
            observer: None,
            evictions: None,
        }
    }

    /// Count TTL evictions on this counter (typically
    /// `sedex_sessions_evicted_total` from the server's registry), so the
    /// sweep is observable instead of silent.
    pub fn with_eviction_counter(mut self, counter: Arc<Counter>) -> Self {
        self.evictions = Some(counter);
        self
    }

    /// Use this configuration (instead of the default) for every session
    /// opened through the manager.
    pub fn with_session_config(mut self, config: SedexConfig) -> Self {
        self.session_config = config;
        self
    }

    /// Attach a trace observer to every session opened through the
    /// manager (phase timings, repository hit/miss, egd outcomes —
    /// typically a [`sedex_core::RegistryObserver`] over the server's
    /// metrics registry).
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    fn shard(&self, name: &str) -> &RwLock<HashMap<String, Arc<Mutex<Tenant>>>> {
        &self.shards[self.shard_index(name)]
    }

    /// Open a session from an inline `.sdx` scenario body. Seed tuples from
    /// the `[data]` section are fed (not exchanged) so they are available
    /// as dimension data for later pushes. Fails if the name is taken.
    pub fn open(&self, name: &str, body: &str) -> Result<usize, ManagerError> {
        self.open_with(name, body, || ())
    }

    /// [`open`](Self::open), invoking `on_commit` while the shard map write
    /// lock is still held, after the session became visible. Used by the
    /// durability layer to append the `Open` WAL record *before* any other
    /// request can reach the new tenant (a lookup needs the shard read
    /// lock), so the log order matches the application order.
    pub fn open_with(
        &self,
        name: &str,
        body: &str,
        on_commit: impl FnOnce(),
    ) -> Result<usize, ManagerError> {
        let file = textfmt::parse_scenario(body).map_err(|e| format!("scenario {e}"))?;
        let s = file.scenario;
        let mut session =
            SedexSession::new(self.session_config.clone(), s.source, s.target, s.sigma)
                .map_err(|e| format!("session: {e}"))?
                .with_cfds(file.cfds)
                .with_label(name);
        if let Some(obs) = &self.observer {
            session = session.with_observer(Arc::clone(obs));
        }
        let mut seeded = 0usize;
        for (rel, inst) in file.instance.relations() {
            for t in inst.iter() {
                session
                    .feed(rel, t.clone())
                    .map_err(|e| format!("seed data: {e}"))?;
                seeded += 1;
            }
        }
        let shard = self.shard(name);
        let mut map = shard.write().expect("shard lock poisoned");
        if map.contains_key(name) {
            return Err(format!("session `{name}` already exists"));
        }
        map.insert(
            name.to_owned(),
            Arc::new(Mutex::new(Tenant::new(session, body.to_owned()))),
        );
        on_commit();
        Ok(seeded)
    }

    /// Install an already-built session (the recovery path): unlike
    /// [`open`](Self::open) the session arrives fully restored — no scenario
    /// parsing, no seed feeding — and the request/tuple counters carry over.
    /// Fails if the name is taken.
    pub fn install(
        &self,
        name: &str,
        scenario: String,
        session: SedexSession,
        requests: u64,
        tuples_in: u64,
    ) -> Result<(), ManagerError> {
        let shard = self.shard(name);
        let mut map = shard.write().expect("shard lock poisoned");
        if map.contains_key(name) {
            return Err(format!("session `{name}` already exists"));
        }
        // Recovered sessions arrive label-less (the label is not part of
        // persisted state); re-attach it so slow-record attribution
        // survives a restart.
        let mut tenant = Tenant::new(session.with_label(name), scenario);
        tenant.requests = requests;
        tenant.tuples_in = tuples_in;
        map.insert(name.to_owned(), Arc::new(Mutex::new(tenant)));
        Ok(())
    }

    /// Number of map shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a session name hashes to — the durability layer keys
    /// its per-shard WAL/snapshot directories off the same mapping.
    pub fn shard_index(&self, name: &str) -> usize {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Export every session on shard `idx` for a durability snapshot:
    /// `(name, scenario, requests, tuples_in, state)` per tenant, sorted by
    /// name. Tenant handles are collected under the shard read lock, then
    /// each tenant is locked individually — a tenant mid-request delays only
    /// its own export, and no shard lock is held while session state is
    /// cloned.
    pub fn export_shard(&self, idx: usize) -> Vec<(String, String, u64, u64, SessionState)> {
        let handles: Vec<(String, Arc<Mutex<Tenant>>)> = self.shards[idx]
            .read()
            .expect("shard lock poisoned")
            .iter()
            .map(|(name, tenant)| (name.clone(), Arc::clone(tenant)))
            .collect();
        let mut out: Vec<(String, String, u64, u64, SessionState)> = handles
            .into_iter()
            .filter_map(|(name, tenant)| {
                // A poisoned tenant is quarantined and possibly
                // half-mutated: leave it out of the snapshot, consistent
                // with the durable Close the panic handler appended.
                let t = tenant.lock().ok()?;
                let state = t.session.export_state();
                Some((name, t.scenario.clone(), t.requests, t.tuples_in, state))
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Look a tenant up, returning a clone of its handle (the shard lock is
    /// released before the caller locks the tenant).
    pub fn get(&self, name: &str) -> Option<Arc<Mutex<Tenant>>> {
        self.shard(name)
            .read()
            .expect("shard lock poisoned")
            .get(name)
            .cloned()
    }

    /// Run `f` with exclusive access to the tenant, bumping its
    /// access-tracking counters first.
    ///
    /// A tenant whose mutex is poisoned — a previous request panicked while
    /// holding it, leaving the session possibly half-mutated — is
    /// *quarantined*: every request is refused with a `POISONED` error
    /// until `CLOSE` or the TTL sweeper removes it. The error is rendered
    /// verbatim into the `ERR` reply, so clients can distinguish it.
    pub fn with_tenant<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut Tenant) -> R,
    ) -> Result<R, ManagerError> {
        let tenant = self
            .get(name)
            .ok_or_else(|| format!("no such session `{name}`"))?;
        let mut guard = tenant
            .lock()
            .map_err(|_| format!("POISONED session `{name}` is quarantined after a panic"))?;
        guard.touch();
        Ok(f(&mut guard))
    }

    /// Remove the tenant and finish its session, returning the final
    /// target and report.
    pub fn close(&self, name: &str) -> Result<(Instance, ExchangeReport), ManagerError> {
        self.close_with(name, || ())
    }

    /// [`close`](Self::close), invoking `on_remove` while the shard map
    /// write lock is still held, right after the removal. The durability
    /// layer appends the `Close` WAL record there: a later re-`OPEN` of the
    /// same name must first take this write lock, so its `Open` record can
    /// only land after the `Close` — the log order a replay depends on.
    pub fn close_with(
        &self,
        name: &str,
        on_remove: impl FnOnce(),
    ) -> Result<(Instance, ExchangeReport), ManagerError> {
        let tenant = {
            let mut map = self.shard(name).write().expect("shard lock poisoned");
            let tenant = map
                .remove(name)
                .ok_or_else(|| format!("no such session `{name}`"))?;
            on_remove();
            tenant
        };
        // Any request already holding the tenant finishes first; unwrapping
        // the Arc then succeeds because the map entry was the other owner.
        // Poisoning is deliberately forgiven here: CLOSE must be able to
        // remove a quarantined session, and `finish` only reads.
        let tenant = match Arc::try_unwrap(tenant) {
            Ok(m) => m.into_inner().unwrap_or_else(|p| p.into_inner()),
            Err(arc) => {
                // A concurrent request still holds a handle: wait for it by
                // locking, then clone out what we need? SedexSession is not
                // Clone — instead spin until we are the sole owner. Requests
                // are short; this converges immediately in practice.
                let mut arc = arc;
                loop {
                    std::thread::yield_now();
                    match Arc::try_unwrap(arc) {
                        Ok(m) => break m.into_inner().unwrap_or_else(|p| p.into_inner()),
                        Err(a) => arc = a,
                    }
                }
            }
        };
        Ok(tenant.session.finish())
    }

    /// Rebuild a session from its scenario body and exported state, then
    /// install it — the live-migration receive path. The scenario is parsed
    /// for the engine machinery (schemas, correspondences, cfds) exactly
    /// like [`open`](Self::open), but no seed data is fed: `state` carries
    /// the source and target instances wholesale. `on_commit` runs under
    /// the shard map write lock, after the session became visible.
    pub fn install_restored(
        &self,
        name: &str,
        scenario: &str,
        state: SessionState,
        requests: u64,
        tuples_in: u64,
        on_commit: impl FnOnce(),
    ) -> Result<(), ManagerError> {
        let file = textfmt::parse_scenario(scenario).map_err(|e| format!("scenario {e}"))?;
        let s = file.scenario;
        let mut session =
            SedexSession::new(self.session_config.clone(), s.source, s.target, s.sigma)
                .map_err(|e| format!("session: {e}"))?
                .with_cfds(file.cfds)
                .with_label(name);
        if let Some(obs) = &self.observer {
            session = session.with_observer(Arc::clone(obs));
        }
        session.restore_state(state);
        let shard = self.shard(name);
        let mut map = shard.write().expect("shard lock poisoned");
        if map.contains_key(name) {
            return Err(format!("session `{name}` already exists"));
        }
        let mut tenant = Tenant::new(session, scenario.to_owned());
        tenant.requests = requests;
        tenant.tuples_in = tuples_in;
        map.insert(name.to_owned(), Arc::new(Mutex::new(tenant)));
        on_commit();
        Ok(())
    }

    /// Remove the tenant and hand its pieces back **without** finishing
    /// the session — the live-migration path: the caller exports the
    /// session's state and ships it to another node. `on_remove` runs while
    /// the shard map write lock is still held (the durability layer appends
    /// the `Close` WAL record there, same contract as
    /// [`close_with`](Self::close_with)). Returns
    /// `(scenario, requests, tuples_in, session)`.
    pub fn take(
        &self,
        name: &str,
        on_remove: impl FnOnce(),
    ) -> Result<(String, u64, u64, SedexSession), ManagerError> {
        let tenant = {
            let mut map = self.shard(name).write().expect("shard lock poisoned");
            let tenant = map
                .remove(name)
                .ok_or_else(|| format!("no such session `{name}`"))?;
            on_remove();
            tenant
        };
        // Same sole-ownership spin as `close_with`: a request already
        // holding the tenant finishes first, then the Arc unwraps.
        let tenant = match Arc::try_unwrap(tenant) {
            Ok(m) => m.into_inner().unwrap_or_else(|p| p.into_inner()),
            Err(arc) => {
                let mut arc = arc;
                loop {
                    std::thread::yield_now();
                    match Arc::try_unwrap(arc) {
                        Ok(m) => break m.into_inner().unwrap_or_else(|p| p.into_inner()),
                        Err(a) => arc = a,
                    }
                }
            }
        };
        Ok((
            tenant.scenario,
            tenant.requests,
            tenant.tuples_in,
            tenant.session,
        ))
    }

    /// Number of live sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").len())
            .sum()
    }

    /// True when no session is open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live-session count per shard, in shard order — the `STATS` load
    /// signal for spotting hot shards.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").len())
            .collect()
    }

    /// Names of all live sessions (sorted, for stable `STATS` output).
    pub fn names(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("shard lock poisoned")
                    .keys()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort();
        out
    }

    /// Drop every session idle for longer than `ttl`; returns the evicted
    /// names. Tenants currently locked by a request are by definition not
    /// idle and are skipped (their `last_access` was just bumped).
    pub fn evict_idle(&self, ttl: std::time::Duration) -> Vec<String> {
        self.evict_idle_with(ttl, |_| ())
    }

    /// [`evict_idle`](Self::evict_idle), invoking `on_evict(name)` for each
    /// dropped tenant while its shard map write lock is still held — the
    /// durability layer appends a `Close` WAL record there, so an eviction
    /// is as durable as a wire `CLOSE` and crash recovery does not
    /// resurrect sessions the TTL policy already dropped.
    ///
    /// Quarantined (poisoned) tenants are evicted on sight regardless of
    /// idle time: they can never serve another request, and their
    /// `last_access` stopped moving at the panic. Every eviction is logged
    /// to stderr and counted on the configured eviction counter.
    pub fn evict_idle_with(
        &self,
        ttl: std::time::Duration,
        mut on_evict: impl FnMut(&str),
    ) -> Vec<String> {
        let mut evicted = Vec::new();
        for shard in &self.shards {
            let mut map = shard.write().expect("shard lock poisoned");
            map.retain(|name, tenant| {
                let (keep, why) = match tenant.try_lock() {
                    Ok(t) => (t.last_access.elapsed() < ttl, "idle past TTL"),
                    Err(TryLockError::Poisoned(_)) => (false, "quarantined after a panic"),
                    Err(TryLockError::WouldBlock) => (true, ""), // in use right now
                };
                if !keep {
                    eprintln!("sedex-service: evicting session `{name}` ({why})");
                    if let Some(c) = &self.evictions {
                        c.inc();
                    }
                    on_evict(name);
                    evicted.push(name.clone());
                }
                keep
            });
        }
        evicted.sort();
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const SCENARIO: &str = "\
[source]
Dep(dname*, building)
Student(sname*, program, dep->Dep)

[target]
Stu(student*, prog, dpt)

[correspondences]
sname <-> student
program <-> prog
dep <-> dpt

[data]
Dep: d1, b1
";

    #[test]
    fn open_push_close_roundtrip() {
        let m = SessionManager::new(4);
        let seeded = m.open("t1", SCENARIO).unwrap();
        assert_eq!(seeded, 1);
        assert_eq!(m.len(), 1);
        m.with_tenant("t1", |t| {
            let (rel, tuple) = textfmt::parse_data_line("Student: s1, p1, d1", 1).unwrap();
            t.session.exchange_tuple(&rel, tuple).unwrap();
            t.tuples_in += 1;
        })
        .unwrap();
        let (target, report) = m.close("t1").unwrap();
        assert_eq!(target.relation("Stu").unwrap().len(), 1);
        assert_eq!(report.scripts_generated, 1);
        assert!(m.is_empty());
    }

    #[test]
    fn duplicate_open_and_missing_session_fail() {
        let m = SessionManager::new(2);
        m.open("a", SCENARIO).unwrap();
        assert!(m
            .open("a", SCENARIO)
            .unwrap_err()
            .contains("already exists"));
        assert!(m.with_tenant("ghost", |_| ()).is_err());
        assert!(m.close("ghost").is_err());
    }

    #[test]
    fn bad_scenario_is_rejected() {
        let m = SessionManager::new(1);
        let e = m.open("bad", "Student(sname*)\n").unwrap_err();
        assert!(e.contains("scenario"), "{e}");
        assert!(m.is_empty());
    }

    #[test]
    fn eviction_drops_only_idle_sessions() {
        let m = SessionManager::new(4);
        m.open("old", SCENARIO).unwrap();
        m.open("fresh", SCENARIO).unwrap();
        // Make `old` look idle by back-dating its last access.
        {
            let t = m.get("old").unwrap();
            let mut t = t.lock().unwrap();
            t.last_access = Instant::now() - Duration::from_secs(3600);
        }
        let evicted = m.evict_idle(Duration::from_secs(60));
        assert_eq!(evicted, vec!["old".to_string()]);
        assert_eq!(m.names(), vec!["fresh".to_string()]);
    }

    #[test]
    fn names_are_sorted_across_shards() {
        let m = SessionManager::new(8);
        for n in ["zeta", "alpha", "mid"] {
            m.open(n, SCENARIO).unwrap();
        }
        assert_eq!(m.names(), vec!["alpha", "mid", "zeta"]);
    }
}
