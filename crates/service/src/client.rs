//! A small blocking client for the wire protocol — what the integration
//! tests (and any Rust embedder) use instead of hand-rolled `nc` I/O.
//!
//! The client is *resilient by default*: transport errors reconnect and
//! retry, and `ERR BUSY retry-after=<ms>` replies back off and retry,
//! both under a bounded budget ([`ClientConfig::max_attempts`] /
//! [`ClientConfig::retry_deadline`]) with decorrelated-jitter exponential
//! backoff (seeded, so test runs are reproducible). Retrying is safe
//! because the server's mutating verbs are idempotent at-least-once:
//! a re-`PUSH`/`FEED` of a tuple the server already applied is a seen-set
//! no-op, a re-`FLUSH` finds nothing pending, and [`Client::open`] /
//! [`Client::close`] treat "already exists" / "no such session" after a
//! retry as the success they imply. `SHUTDOWN` is never retried.
//!
//! With [`ClientConfig::binary`] (or `SEDEX_CLIENT_PROTO=binary` in the
//! environment) the client negotiates the binary protocol with `HELLO
//! binary` on every (re)connect and speaks [`crate::wire`] frames instead
//! of text lines. Requests are still built from the same text commands —
//! they are parsed client-side with the *same* parser the server uses, so
//! a malformed command gets the identical `ERR` text either way, just
//! without a round-trip. [`Client::pipeline`] sends many requests before
//! reading any reply (both protocols), and [`Client::push_batch`] packs
//! many tuples of one session into a single `PUSH_BATCH` frame (binary;
//! over text it degrades to a pipelined burst of `PUSH` lines).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use sedex_net::FRAME_HEADER_BYTES;
use sedex_scenarios::rng::SmallRng;

use crate::protocol::{parse_request, Proto, Request};
use crate::wire;

/// One parsed response block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// `OK` (true) or `ERR` (false).
    pub ok: bool,
    /// Text after the status word on the head line.
    pub head: String,
    /// Body lines (dot-unstuffed).
    pub lines: Vec<String>,
}

impl Reply {
    /// The whole body as one string.
    pub fn body(&self) -> String {
        self.lines.join("\n")
    }

    /// Convert `ERR` replies into an `io::Error`.
    pub fn into_ok(self) -> std::io::Result<Reply> {
        if self.ok {
            Ok(self)
        } else {
            Err(std::io::Error::other(format!("server: {}", self.head)))
        }
    }

    /// An `ERR` reply the client synthesized locally (binary mode rejects
    /// malformed commands with the server's own parser, saving the trip).
    fn synthetic_err(head: impl Into<String>) -> Reply {
        Reply {
            ok: false,
            head: head.into(),
            lines: Vec::new(),
        }
    }
}

/// Client tunables: socket timeouts, retry budget, backoff shape, and
/// response-size bounds. The defaults suit tests and interactive use.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout; `None` blocks on the OS default.
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout (`None` waits forever).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout (`None` waits forever).
    pub write_timeout: Option<Duration>,
    /// Total tries per request, the first included; `1` disables retries.
    pub max_attempts: u32,
    /// Wall-clock cap across all of one request's attempts and backoff
    /// sleeps; `None` leaves only `max_attempts` bounding.
    pub retry_deadline: Option<Duration>,
    /// Backoff floor (first retry sleeps at least this).
    pub backoff_base: Duration,
    /// Backoff ceiling per sleep.
    pub backoff_cap: Duration,
    /// Seed for the jitter PRNG — same seed, same backoff schedule.
    pub retry_seed: u64,
    /// Longest accepted response line; a longer (or endless, on a stream
    /// gone silent mid-line) one errors instead of buffering unboundedly.
    pub max_response_line: usize,
    /// Most body lines accepted in one response block.
    pub max_response_lines: usize,
    /// Negotiate the binary protocol (`HELLO binary`) on every connect.
    /// Defaults to true when the environment has
    /// `SEDEX_CLIENT_PROTO=binary`, so whole test suites can be flipped
    /// onto the binary transport without touching code.
    pub binary: bool,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_attempts: 3,
            retry_deadline: None,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_secs(1),
            retry_seed: 0x5EDE_C1E4,
            max_response_line: 1 << 20,
            max_response_lines: 1 << 20,
            binary: std::env::var("SEDEX_CLIENT_PROTO")
                .map(|v| v.eq_ignore_ascii_case("binary"))
                .unwrap_or(false),
        }
    }
}

/// Blocking protocol client over one TCP connection, reconnecting and
/// retrying per its [`ClientConfig`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: SocketAddr,
    cfg: ClientConfig,
    rng: SmallRng,
    retries: u64,
    proto: Proto,
}

impl Client {
    /// Connect to a running server with default configuration.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit configuration.
    pub fn connect_with(addr: impl ToSocketAddrs, cfg: ClientConfig) -> std::io::Result<Client> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })?;
        let stream = open_stream(addr, &cfg)?;
        let writer = stream.try_clone()?;
        let rng = SmallRng::seed_from_u64(cfg.retry_seed);
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            addr,
            cfg,
            rng,
            retries: 0,
            proto: Proto::Text,
        })
    }

    /// Retries performed over this client's lifetime (reconnect-and-resend
    /// plus BUSY backoffs) — what chaos tests assert against.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The protocol this client speaks (requests on a fresh connection
    /// negotiate it lazily, but the choice is fixed by configuration).
    pub fn proto(&self) -> Proto {
        self.target_proto()
    }

    /// What the connection should end up speaking. The `proto` field
    /// tracks what the *current stream* has negotiated so far; this is the
    /// configured destination, and what requests are encoded for.
    fn target_proto(&self) -> Proto {
        if self.cfg.binary {
            Proto::Binary
        } else {
            Proto::Text
        }
    }

    fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = open_stream(self.addr, &self.cfg)?;
        self.writer = stream.try_clone()?;
        self.reader = BufReader::new(stream);
        self.proto = Proto::Text;
        Ok(())
    }

    /// `HELLO binary` when configured and not yet negotiated on this
    /// stream. The reply to HELLO itself is always text (the server
    /// switches its parser immediately but answers the negotiation in the
    /// protocol the client is still reading); every frame after it is
    /// binary. Runs lazily at the head of every exchange rather than at
    /// connect time, so a negotiation lost to a dropped connection is
    /// retried by the normal reconnect-and-resend machinery.
    fn negotiate(&mut self) -> std::io::Result<()> {
        if !self.cfg.binary || self.proto == Proto::Binary {
            return Ok(());
        }
        self.writer.write_all(b"HELLO binary\n")?;
        self.writer.flush()?;
        let reply = self.read_text_reply()?;
        if !reply.ok {
            return Err(std::io::Error::other(format!(
                "binary negotiation refused: {}",
                reply.head
            )));
        }
        self.proto = Proto::Binary;
        Ok(())
    }

    /// One attempt: negotiate if needed, send `payload` verbatim, read one
    /// response block.
    fn exchange(&mut self, payload: &[u8]) -> std::io::Result<Reply> {
        self.negotiate()?;
        self.writer.write_all(payload)?;
        self.writer.flush()?;
        self.read_reply()
    }

    /// Decorrelated jitter (the AWS shape): each sleep is uniform in
    /// `[base, prev·3]`, capped. Grows fast, stays spread out — retrying
    /// clients don't stampede in lockstep.
    fn backoff(&mut self, prev: Duration) -> Duration {
        let base = self.cfg.backoff_base.max(Duration::from_millis(1));
        let hi = prev.saturating_mul(3).max(base);
        let span = (hi - base).as_nanos().max(1) as u64;
        (base + Duration::from_nanos(self.rng.next_u64() % span)).min(self.cfg.backoff_cap)
    }

    /// Send `payload` with the retry policy: transport errors reconnect
    /// and resend; `ERR BUSY` replies sleep (at least the server's
    /// `retry-after` hint, at least the jittered backoff) and resend. Any
    /// other reply — `OK` or a non-transient `ERR` — is returned as-is.
    /// Returns the reply and the number of attempts consumed.
    fn request_with_retries(&mut self, payload: &[u8]) -> std::io::Result<(Reply, u32)> {
        let deadline = self.cfg.retry_deadline.map(|d| Instant::now() + d);
        let mut prev_sleep = self.cfg.backoff_base;
        let mut attempt = 1u32;
        loop {
            let outcome = self.exchange(payload);
            let out_of_budget = attempt >= self.cfg.max_attempts.max(1)
                || deadline.is_some_and(|d| Instant::now() >= d);
            let sleep_floor = match &outcome {
                Ok(reply) if !reply.ok => match parse_retry_after(&reply.head) {
                    Some(hint) => hint, // ERR BUSY — transient by contract
                    None => return Ok((reply.clone(), attempt)),
                },
                Ok(reply) => return Ok((reply.clone(), attempt)),
                Err(e) if out_of_budget => return Err(clone_io_error(e)),
                Err(_) => Duration::ZERO,
            };
            if out_of_budget {
                // outcome is necessarily Ok(busy reply) here.
                return Ok((outcome?, attempt));
            }
            let sleep = self.backoff(prev_sleep).max(sleep_floor);
            prev_sleep = sleep;
            std::thread::sleep(sleep);
            // After a transport error the stream may hold half a response;
            // after BUSY it is clean — reconnect in both cases so every
            // attempt starts from a known framing state.
            self.reconnect()?;
            self.retries += 1;
            attempt += 1;
        }
    }

    /// Send one request command (a text-protocol line, e.g. `"PUSH t1
    /// R: a, b"`) and read the response, retrying per the client's
    /// configuration. On a binary connection the command is parsed
    /// client-side (with the server's own parser) and sent as a frame; a
    /// command the server would reject at parse time is rejected here,
    /// with the same `ERR` text and no round-trip.
    pub fn request(&mut self, text: &str) -> std::io::Result<Reply> {
        match self.encode_command(text, None) {
            Err(reply) => Ok(reply),
            Ok(payload) => self.request_with_retries(&payload).map(|(r, _)| r),
        }
    }

    /// Build the on-wire bytes for one command under the current protocol.
    /// `Err` carries a locally synthesized `ERR` reply (binary mode only:
    /// the command failed the same parse the server would run).
    fn encode_command(&self, line: &str, open_body: Option<&str>) -> Result<Vec<u8>, Reply> {
        match self.target_proto() {
            Proto::Text => {
                let mut payload = format!("{line}\n");
                if let Some(body) = open_body {
                    payload.push_str(body);
                    if !body.ends_with('\n') {
                        payload.push('\n');
                    }
                    payload.push_str("END\n");
                }
                Ok(payload.into_bytes())
            }
            Proto::Binary => {
                let request = parse_request(line, open_body.map(str::to_owned))
                    .map_err(|e| Reply::synthetic_err(e.to_string()))?;
                wire::encode_request(&request).map_err(Reply::synthetic_err)
            }
        }
    }

    fn read_reply(&mut self) -> std::io::Result<Reply> {
        match self.proto {
            Proto::Text => self.read_text_reply(),
            Proto::Binary => self.read_frame_reply(),
        }
    }

    /// Read one length-prefixed response frame (binary protocol).
    fn read_frame_reply(&mut self) -> std::io::Result<Reply> {
        let mut header = [0u8; FRAME_HEADER_BYTES];
        self.reader.read_exact(&mut header)?;
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let opcode = header[4];
        if len > wire::MAX_FRAME_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "response frame of {len} bytes exceeds {}",
                    wire::MAX_FRAME_BYTES
                ),
            ));
        }
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        let (ok, head, lines) = wire::decode_response(opcode, &body)
            .map_err(|m| std::io::Error::new(std::io::ErrorKind::InvalidData, m))?;
        Ok(Reply { ok, head, lines })
    }

    fn read_text_reply(&mut self) -> std::io::Result<Reply> {
        let head = self.read_bounded_line()?;
        let (ok, head) = if let Some(rest) = head.strip_prefix("OK") {
            (true, rest.trim_start().to_owned())
        } else if let Some(rest) = head.strip_prefix("ERR") {
            (false, rest.trim_start().to_owned())
        } else {
            return Err(std::io::Error::other(format!(
                "malformed response head: {head}"
            )));
        };
        let mut lines = Vec::new();
        loop {
            if lines.len() >= self.cfg.max_response_lines {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "response block exceeds {} lines",
                        self.cfg.max_response_lines
                    ),
                ));
            }
            let line = self.read_bounded_line()?;
            if line == "." {
                break;
            }
            // Undo dot-stuffing.
            let line = line.strip_prefix('.').map_or(line.as_str(), |r| r);
            lines.push(line.to_owned());
        }
        Ok(Reply { ok, head, lines })
    }

    /// Read one `\n`-terminated line, bounded by `max_response_line`: an
    /// over-long line and a stream that ends (or stalls into a zero-length
    /// read) mid-line both error instead of looping or buffering forever.
    fn read_bounded_line(&mut self) -> std::io::Result<String> {
        let max = self.cfg.max_response_line;
        let mut buf = Vec::new();
        let n = (&mut self.reader)
            .take(max as u64 + 1)
            .read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        if buf.last() != Some(&b'\n') {
            return Err(if buf.len() > max {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("response line exceeds {max} bytes"),
                )
            } else {
                std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "response block not terminated",
                )
            });
        }
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        Ok(String::from_utf8_lossy(&buf).into_owned())
    }

    /// `OPEN <name>` with an inline scenario body. An "already exists"
    /// error on a retried attempt is reported as success: the earlier
    /// attempt's request reached the server, only its reply was lost.
    pub fn open(&mut self, session: &str, scenario: &str) -> std::io::Result<Reply> {
        let payload = match self.encode_command(&format!("OPEN {session}"), Some(scenario)) {
            Ok(p) => p,
            Err(reply) => return Ok(reply),
        };
        let (reply, attempts) = self.request_with_retries(&payload)?;
        if !reply.ok && attempts > 1 && reply.head.contains("already exists") {
            return Ok(Reply {
                ok: true,
                head: format!("opened {session} (on an earlier attempt)"),
                lines: Vec::new(),
            });
        }
        Ok(reply)
    }

    /// `PUSH <session> <data line>` — feed + exchange one tuple. Binary
    /// connections build the request directly from the data line instead
    /// of formatting a command string only to parse it back apart.
    pub fn push(&mut self, session: &str, data_line: &str) -> std::io::Result<Reply> {
        if self.target_proto() == Proto::Binary {
            let (relation, tuple) = match sedex_scenarios::textfmt::parse_data_line(data_line, 1) {
                Ok(parts) => parts,
                Err(e) => return Ok(Reply::synthetic_err(format!("data: {}", e.message))),
            };
            let request = Request::PushTuple {
                session: session.to_owned(),
                relation,
                tuple,
            };
            let payload = match wire::encode_request(&request) {
                Ok(p) => p,
                Err(msg) => return Ok(Reply::synthetic_err(msg)),
            };
            return self.request_with_retries(&payload).map(|(r, _)| r);
        }
        self.request(&format!("PUSH {session} {data_line}"))
    }

    /// `FEED <session> <data line>` — feed without exchanging.
    pub fn feed(&mut self, session: &str, data_line: &str) -> std::io::Result<Reply> {
        self.request(&format!("FEED {session} {data_line}"))
    }

    /// `FLUSH <session>` — exchange everything pending.
    pub fn flush_session(&mut self, session: &str) -> std::io::Result<Reply> {
        self.request(&format!("FLUSH {session}"))
    }

    /// `STATS` (server-wide) or `STATS <session>`.
    pub fn stats(&mut self, session: Option<&str>) -> std::io::Result<Reply> {
        match session {
            Some(s) => self.request(&format!("STATS {s}")),
            None => self.request("STATS"),
        }
    }

    /// `METRICS` — the server's registry as Prometheus text exposition
    /// (the reply body is the scrape payload).
    pub fn metrics(&mut self) -> std::io::Result<Reply> {
        self.request("METRICS")
    }

    /// `TRACE recent K` / `TRACE slow K` — request spans from the
    /// server's flight recorder (requires a server started with
    /// `--trace-buffer`); one span per body line.
    pub fn trace(&mut self, slow: bool, k: u32) -> std::io::Result<Reply> {
        let mode = if slow { "slow" } else { "recent" };
        self.request(&format!("TRACE {mode} {k}"))
    }

    /// `SQL <session>` — the session's target as INSERT statements.
    pub fn sql(&mut self, session: &str) -> std::io::Result<Reply> {
        self.request(&format!("SQL {session}"))
    }

    /// `CLOSE <session>`. A "no such session" error on a retried attempt
    /// is reported as success — the earlier attempt closed it.
    pub fn close(&mut self, session: &str) -> std::io::Result<Reply> {
        let payload = match self.encode_command(&format!("CLOSE {session}"), None) {
            Ok(p) => p,
            Err(reply) => return Ok(reply),
        };
        let (reply, attempts) = self.request_with_retries(&payload)?;
        if !reply.ok && attempts > 1 && reply.head.contains("no such session") {
            return Ok(Reply {
                ok: true,
                head: format!("closed {session} (on an earlier attempt)"),
                lines: Vec::new(),
            });
        }
        Ok(reply)
    }

    /// `CLUSTER` — the node's view of the ring, standby holdings, and
    /// replication progress.
    pub fn cluster(&mut self) -> std::io::Result<Reply> {
        self.request("CLUSTER")
    }

    /// Ship one exported session to another node (`MIGRATE` — binary
    /// protocol only; the frame carries the encoded session state). An
    /// "already exists" refusal on a retried attempt is the success it
    /// implies: the first attempt's frame landed, only its reply was lost.
    pub fn migrate(
        &mut self,
        session: &str,
        scenario: &str,
        requests: u64,
        tuples_in: u64,
        state: &[u8],
    ) -> std::io::Result<Reply> {
        if self.target_proto() != Proto::Binary {
            return Ok(Reply::synthetic_err(
                "MIGRATE requires the binary protocol (ClientConfig::binary)",
            ));
        }
        let request = Request::Migrate {
            session: session.to_owned(),
            scenario: scenario.to_owned(),
            requests,
            tuples_in,
            state: state.to_vec(),
        };
        let payload = match wire::encode_request(&request) {
            Ok(p) => p,
            Err(msg) => return Ok(Reply::synthetic_err(msg)),
        };
        let (reply, attempts) = self.request_with_retries(&payload)?;
        if !reply.ok && attempts > 1 && reply.head.contains("already exists") {
            return Ok(Reply {
                ok: true,
                head: format!("migrated in {session} (on an earlier attempt)"),
                lines: Vec::new(),
            });
        }
        Ok(reply)
    }

    /// `SHUTDOWN` — graceful server stop. Never retried: a lost reply
    /// does not mean a lost shutdown, and a resend could hit the next
    /// server instance.
    pub fn shutdown(&mut self) -> std::io::Result<Reply> {
        let payload = match self.encode_command("SHUTDOWN", None) {
            Ok(p) => p,
            Err(reply) => return Ok(reply),
        };
        self.exchange(&payload)
    }

    /// Send every command before reading any reply, then read them all —
    /// one round-trip for the whole burst instead of one per command. The
    /// server still executes a connection's requests strictly in order, so
    /// `replies[i]` always answers `commands[i]`.
    ///
    /// Commands are single lines (no `OPEN` bodies). Pipelined sends are
    /// **not** retried: a transport error mid-burst leaves it unknown
    /// which requests were applied, and callers batching mutations should
    /// re-send the burst themselves (the verbs are idempotent). In binary
    /// mode a command failing the client-side parse is answered locally
    /// and never sent; its reply still lands at the right index.
    pub fn pipeline(&mut self, commands: &[&str]) -> std::io::Result<Vec<Reply>> {
        self.negotiate()?;
        let mut slots: Vec<Option<Reply>> = vec![None; commands.len()];
        let mut payload = Vec::new();
        let mut wired = 0usize;
        for (i, command) in commands.iter().enumerate() {
            match self.encode_command(command, None) {
                Ok(bytes) => {
                    payload.extend_from_slice(&bytes);
                    wired += 1;
                }
                Err(reply) => slots[i] = Some(reply),
            }
        }
        self.writer.write_all(&payload)?;
        self.writer.flush()?;
        for _ in 0..wired {
            let reply = self.read_reply()?;
            let slot = slots
                .iter_mut()
                .find(|s| s.is_none())
                .expect("one empty slot per wired request");
            *slot = Some(reply);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect())
    }

    /// Push many data lines into one session. Binary connections pack the
    /// whole batch into a single `PUSH_BATCH` frame — one request, one
    /// tenant-lock acquisition, one reply — and retry it like any other
    /// request (safe: re-pushing applied tuples is a seen-set no-op). Text
    /// connections fall back to a pipelined burst of `PUSH` lines and
    /// synthesize a summary reply: the first `ERR` if any push failed,
    /// otherwise the last push's reply.
    pub fn push_batch(&mut self, session: &str, data_lines: &[&str]) -> std::io::Result<Reply> {
        match self.target_proto() {
            Proto::Binary => {
                let mut rows = Vec::with_capacity(data_lines.len());
                for line in data_lines {
                    match sedex_scenarios::textfmt::parse_data_line(line, 1) {
                        Ok(row) => rows.push(row),
                        Err(e) => return Ok(Reply::synthetic_err(format!("data: {}", e.message))),
                    }
                }
                let request = Request::PushBatch {
                    session: session.to_owned(),
                    rows,
                };
                let payload = match wire::encode_request(&request) {
                    Ok(p) => p,
                    Err(msg) => return Ok(Reply::synthetic_err(msg)),
                };
                self.request_with_retries(&payload).map(|(r, _)| r)
            }
            Proto::Text => {
                let commands: Vec<String> = data_lines
                    .iter()
                    .map(|line| format!("PUSH {session} {line}"))
                    .collect();
                let refs: Vec<&str> = commands.iter().map(String::as_str).collect();
                let replies = self.pipeline(&refs)?;
                match replies.iter().find(|r| !r.ok) {
                    Some(err) => Ok(err.clone()),
                    None => Ok(replies.into_iter().last().unwrap_or_else(|| Reply {
                        ok: true,
                        head: "pushed batch of 0".to_owned(),
                        lines: Vec::new(),
                    })),
                }
            }
        }
    }
}

fn open_stream(addr: SocketAddr, cfg: &ClientConfig) -> std::io::Result<TcpStream> {
    let stream = match cfg.connect_timeout {
        Some(t) => TcpStream::connect_timeout(&addr, t)?,
        None => TcpStream::connect(addr)?,
    };
    stream.set_read_timeout(cfg.read_timeout)?;
    stream.set_write_timeout(cfg.write_timeout)?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// Extract the `retry-after=<ms>` hint from an `ERR BUSY …` head line.
fn parse_retry_after(head: &str) -> Option<Duration> {
    if !head.starts_with("BUSY") {
        return None;
    }
    let ms = head
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("retry-after="))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    Some(Duration::from_millis(ms))
}

fn clone_io_error(e: &std::io::Error) -> std::io::Error {
    std::io::Error::new(e.kind(), e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_parses_from_busy_heads_only() {
        assert_eq!(
            parse_retry_after("BUSY retry-after=100"),
            Some(Duration::from_millis(100))
        );
        assert_eq!(parse_retry_after("BUSY"), Some(Duration::ZERO));
        assert_eq!(parse_retry_after("no such session `x`"), None);
        assert_eq!(parse_retry_after("DEADLINE request exceeded"), None);
    }

    #[test]
    fn moved_redirects_are_not_transient_errors() {
        // A `MOVED` redirect means the request reached a healthy node that
        // simply is not the owner. Retrying it against the same node would
        // loop forever (and the at-least-once OPEN/CLOSE leniency must not
        // treat the redirect as a lost reply), so it must not parse as a
        // retryable backoff.
        assert_eq!(parse_retry_after("MOVED n2 127.0.0.1:7171"), None);
    }

    #[test]
    fn backoff_is_bounded_and_reproducible() {
        let cfg = ClientConfig::default();
        let mk = || {
            let mut rng = SmallRng::seed_from_u64(cfg.retry_seed);
            let mut sleeps = Vec::new();
            let mut prev = cfg.backoff_base;
            for _ in 0..8 {
                let base = cfg.backoff_base;
                let hi = prev.saturating_mul(3).max(base);
                let span = (hi - base).as_nanos().max(1) as u64;
                let d = (base + Duration::from_nanos(rng.next_u64() % span)).min(cfg.backoff_cap);
                prev = d;
                sleeps.push(d);
            }
            sleeps
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b, "same seed, same schedule");
        for d in a {
            assert!(d >= cfg.backoff_base && d <= cfg.backoff_cap);
        }
    }
}
