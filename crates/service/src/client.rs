//! A small blocking client for the wire protocol — what the integration
//! tests (and any Rust embedder) use instead of hand-rolled `nc` I/O.
//!
//! The client is *resilient by default*: transport errors reconnect and
//! retry, and `ERR BUSY retry-after=<ms>` replies back off and retry,
//! both under a bounded budget ([`ClientConfig::max_attempts`] /
//! [`ClientConfig::retry_deadline`]) with decorrelated-jitter exponential
//! backoff (seeded, so test runs are reproducible). Retrying is safe
//! because the server's mutating verbs are idempotent at-least-once:
//! a re-`PUSH`/`FEED` of a tuple the server already applied is a seen-set
//! no-op, a re-`FLUSH` finds nothing pending, and [`Client::open`] /
//! [`Client::close`] treat "already exists" / "no such session" after a
//! retry as the success they imply. `SHUTDOWN` is never retried.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use sedex_scenarios::rng::SmallRng;

/// One parsed response block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// `OK` (true) or `ERR` (false).
    pub ok: bool,
    /// Text after the status word on the head line.
    pub head: String,
    /// Body lines (dot-unstuffed).
    pub lines: Vec<String>,
}

impl Reply {
    /// The whole body as one string.
    pub fn body(&self) -> String {
        self.lines.join("\n")
    }

    /// Convert `ERR` replies into an `io::Error`.
    pub fn into_ok(self) -> std::io::Result<Reply> {
        if self.ok {
            Ok(self)
        } else {
            Err(std::io::Error::other(format!("server: {}", self.head)))
        }
    }
}

/// Client tunables: socket timeouts, retry budget, backoff shape, and
/// response-size bounds. The defaults suit tests and interactive use.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout; `None` blocks on the OS default.
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout (`None` waits forever).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout (`None` waits forever).
    pub write_timeout: Option<Duration>,
    /// Total tries per request, the first included; `1` disables retries.
    pub max_attempts: u32,
    /// Wall-clock cap across all of one request's attempts and backoff
    /// sleeps; `None` leaves only `max_attempts` bounding.
    pub retry_deadline: Option<Duration>,
    /// Backoff floor (first retry sleeps at least this).
    pub backoff_base: Duration,
    /// Backoff ceiling per sleep.
    pub backoff_cap: Duration,
    /// Seed for the jitter PRNG — same seed, same backoff schedule.
    pub retry_seed: u64,
    /// Longest accepted response line; a longer (or endless, on a stream
    /// gone silent mid-line) one errors instead of buffering unboundedly.
    pub max_response_line: usize,
    /// Most body lines accepted in one response block.
    pub max_response_lines: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_attempts: 3,
            retry_deadline: None,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_secs(1),
            retry_seed: 0x5EDE_C1E4,
            max_response_line: 1 << 20,
            max_response_lines: 1 << 20,
        }
    }
}

/// Blocking protocol client over one TCP connection, reconnecting and
/// retrying per its [`ClientConfig`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: SocketAddr,
    cfg: ClientConfig,
    rng: SmallRng,
    retries: u64,
}

impl Client {
    /// Connect to a running server with default configuration.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit configuration.
    pub fn connect_with(addr: impl ToSocketAddrs, cfg: ClientConfig) -> std::io::Result<Client> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })?;
        let stream = open_stream(addr, &cfg)?;
        let writer = stream.try_clone()?;
        let rng = SmallRng::seed_from_u64(cfg.retry_seed);
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            addr,
            cfg,
            rng,
            retries: 0,
        })
    }

    /// Retries performed over this client's lifetime (reconnect-and-resend
    /// plus BUSY backoffs) — what chaos tests assert against.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = open_stream(self.addr, &self.cfg)?;
        self.writer = stream.try_clone()?;
        self.reader = BufReader::new(stream);
        Ok(())
    }

    /// One attempt: send `payload` verbatim, read one response block.
    fn exchange(&mut self, payload: &[u8]) -> std::io::Result<Reply> {
        self.writer.write_all(payload)?;
        self.writer.flush()?;
        self.read_reply()
    }

    /// Decorrelated jitter (the AWS shape): each sleep is uniform in
    /// `[base, prev·3]`, capped. Grows fast, stays spread out — retrying
    /// clients don't stampede in lockstep.
    fn backoff(&mut self, prev: Duration) -> Duration {
        let base = self.cfg.backoff_base.max(Duration::from_millis(1));
        let hi = prev.saturating_mul(3).max(base);
        let span = (hi - base).as_nanos().max(1) as u64;
        (base + Duration::from_nanos(self.rng.next_u64() % span)).min(self.cfg.backoff_cap)
    }

    /// Send `payload` with the retry policy: transport errors reconnect
    /// and resend; `ERR BUSY` replies sleep (at least the server's
    /// `retry-after` hint, at least the jittered backoff) and resend. Any
    /// other reply — `OK` or a non-transient `ERR` — is returned as-is.
    /// Returns the reply and the number of attempts consumed.
    fn request_with_retries(&mut self, payload: &[u8]) -> std::io::Result<(Reply, u32)> {
        let deadline = self.cfg.retry_deadline.map(|d| Instant::now() + d);
        let mut prev_sleep = self.cfg.backoff_base;
        let mut attempt = 1u32;
        loop {
            let outcome = self.exchange(payload);
            let out_of_budget = attempt >= self.cfg.max_attempts.max(1)
                || deadline.is_some_and(|d| Instant::now() >= d);
            let sleep_floor = match &outcome {
                Ok(reply) if !reply.ok => match parse_retry_after(&reply.head) {
                    Some(hint) => hint, // ERR BUSY — transient by contract
                    None => return Ok((reply.clone(), attempt)),
                },
                Ok(reply) => return Ok((reply.clone(), attempt)),
                Err(e) if out_of_budget => return Err(clone_io_error(e)),
                Err(_) => Duration::ZERO,
            };
            if out_of_budget {
                // outcome is necessarily Ok(busy reply) here.
                return Ok((outcome?, attempt));
            }
            let sleep = self.backoff(prev_sleep).max(sleep_floor);
            prev_sleep = sleep;
            std::thread::sleep(sleep);
            // After a transport error the stream may hold half a response;
            // after BUSY it is clean — reconnect in both cases so every
            // attempt starts from a known framing state.
            self.reconnect()?;
            self.retries += 1;
            attempt += 1;
        }
    }

    /// Send raw request text (newline appended) and read one response
    /// block, retrying per the client's configuration.
    pub fn request(&mut self, text: &str) -> std::io::Result<Reply> {
        let payload = format!("{text}\n");
        self.request_with_retries(payload.as_bytes())
            .map(|(r, _)| r)
    }

    fn read_reply(&mut self) -> std::io::Result<Reply> {
        let head = self.read_bounded_line()?;
        let (ok, head) = if let Some(rest) = head.strip_prefix("OK") {
            (true, rest.trim_start().to_owned())
        } else if let Some(rest) = head.strip_prefix("ERR") {
            (false, rest.trim_start().to_owned())
        } else {
            return Err(std::io::Error::other(format!(
                "malformed response head: {head}"
            )));
        };
        let mut lines = Vec::new();
        loop {
            if lines.len() >= self.cfg.max_response_lines {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "response block exceeds {} lines",
                        self.cfg.max_response_lines
                    ),
                ));
            }
            let line = self.read_bounded_line()?;
            if line == "." {
                break;
            }
            // Undo dot-stuffing.
            let line = line.strip_prefix('.').map_or(line.as_str(), |r| r);
            lines.push(line.to_owned());
        }
        Ok(Reply { ok, head, lines })
    }

    /// Read one `\n`-terminated line, bounded by `max_response_line`: an
    /// over-long line and a stream that ends (or stalls into a zero-length
    /// read) mid-line both error instead of looping or buffering forever.
    fn read_bounded_line(&mut self) -> std::io::Result<String> {
        let max = self.cfg.max_response_line;
        let mut buf = Vec::new();
        let n = (&mut self.reader)
            .take(max as u64 + 1)
            .read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        if buf.last() != Some(&b'\n') {
            return Err(if buf.len() > max {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("response line exceeds {max} bytes"),
                )
            } else {
                std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "response block not terminated",
                )
            });
        }
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        Ok(String::from_utf8_lossy(&buf).into_owned())
    }

    /// `OPEN <name>` with an inline scenario body. An "already exists"
    /// error on a retried attempt is reported as success: the earlier
    /// attempt's request reached the server, only its reply was lost.
    pub fn open(&mut self, session: &str, scenario: &str) -> std::io::Result<Reply> {
        let mut payload = format!("OPEN {session}\n{scenario}");
        if !scenario.ends_with('\n') {
            payload.push('\n');
        }
        payload.push_str("END\n");
        let (reply, attempts) = self.request_with_retries(payload.as_bytes())?;
        if !reply.ok && attempts > 1 && reply.head.contains("already exists") {
            return Ok(Reply {
                ok: true,
                head: format!("opened {session} (on an earlier attempt)"),
                lines: Vec::new(),
            });
        }
        Ok(reply)
    }

    /// `PUSH <session> <data line>` — feed + exchange one tuple.
    pub fn push(&mut self, session: &str, data_line: &str) -> std::io::Result<Reply> {
        self.request(&format!("PUSH {session} {data_line}"))
    }

    /// `FEED <session> <data line>` — feed without exchanging.
    pub fn feed(&mut self, session: &str, data_line: &str) -> std::io::Result<Reply> {
        self.request(&format!("FEED {session} {data_line}"))
    }

    /// `FLUSH <session>` — exchange everything pending.
    pub fn flush_session(&mut self, session: &str) -> std::io::Result<Reply> {
        self.request(&format!("FLUSH {session}"))
    }

    /// `STATS` (server-wide) or `STATS <session>`.
    pub fn stats(&mut self, session: Option<&str>) -> std::io::Result<Reply> {
        match session {
            Some(s) => self.request(&format!("STATS {s}")),
            None => self.request("STATS"),
        }
    }

    /// `METRICS` — the server's registry as Prometheus text exposition
    /// (the reply body is the scrape payload).
    pub fn metrics(&mut self) -> std::io::Result<Reply> {
        self.request("METRICS")
    }

    /// `SQL <session>` — the session's target as INSERT statements.
    pub fn sql(&mut self, session: &str) -> std::io::Result<Reply> {
        self.request(&format!("SQL {session}"))
    }

    /// `CLOSE <session>`. A "no such session" error on a retried attempt
    /// is reported as success — the earlier attempt closed it.
    pub fn close(&mut self, session: &str) -> std::io::Result<Reply> {
        let payload = format!("CLOSE {session}\n");
        let (reply, attempts) = self.request_with_retries(payload.as_bytes())?;
        if !reply.ok && attempts > 1 && reply.head.contains("no such session") {
            return Ok(Reply {
                ok: true,
                head: format!("closed {session} (on an earlier attempt)"),
                lines: Vec::new(),
            });
        }
        Ok(reply)
    }

    /// `SHUTDOWN` — graceful server stop. Never retried: a lost reply
    /// does not mean a lost shutdown, and a resend could hit the next
    /// server instance.
    pub fn shutdown(&mut self) -> std::io::Result<Reply> {
        self.exchange(b"SHUTDOWN\n")
    }
}

fn open_stream(addr: SocketAddr, cfg: &ClientConfig) -> std::io::Result<TcpStream> {
    let stream = match cfg.connect_timeout {
        Some(t) => TcpStream::connect_timeout(&addr, t)?,
        None => TcpStream::connect(addr)?,
    };
    stream.set_read_timeout(cfg.read_timeout)?;
    stream.set_write_timeout(cfg.write_timeout)?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// Extract the `retry-after=<ms>` hint from an `ERR BUSY …` head line.
fn parse_retry_after(head: &str) -> Option<Duration> {
    if !head.starts_with("BUSY") {
        return None;
    }
    let ms = head
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("retry-after="))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    Some(Duration::from_millis(ms))
}

fn clone_io_error(e: &std::io::Error) -> std::io::Error {
    std::io::Error::new(e.kind(), e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_parses_from_busy_heads_only() {
        assert_eq!(
            parse_retry_after("BUSY retry-after=100"),
            Some(Duration::from_millis(100))
        );
        assert_eq!(parse_retry_after("BUSY"), Some(Duration::ZERO));
        assert_eq!(parse_retry_after("no such session `x`"), None);
        assert_eq!(parse_retry_after("DEADLINE request exceeded"), None);
    }

    #[test]
    fn backoff_is_bounded_and_reproducible() {
        let cfg = ClientConfig::default();
        let mk = || {
            let mut rng = SmallRng::seed_from_u64(cfg.retry_seed);
            let mut sleeps = Vec::new();
            let mut prev = cfg.backoff_base;
            for _ in 0..8 {
                let base = cfg.backoff_base;
                let hi = prev.saturating_mul(3).max(base);
                let span = (hi - base).as_nanos().max(1) as u64;
                let d = (base + Duration::from_nanos(rng.next_u64() % span)).min(cfg.backoff_cap);
                prev = d;
                sleeps.push(d);
            }
            sleeps
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b, "same seed, same schedule");
        for d in a {
            assert!(d >= cfg.backoff_base && d <= cfg.backoff_cap);
        }
    }
}
