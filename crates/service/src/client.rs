//! A small blocking client for the wire protocol — what the integration
//! tests (and any Rust embedder) use instead of hand-rolled `nc` I/O.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One parsed response block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// `OK` (true) or `ERR` (false).
    pub ok: bool,
    /// Text after the status word on the head line.
    pub head: String,
    /// Body lines (dot-unstuffed).
    pub lines: Vec<String>,
}

impl Reply {
    /// The whole body as one string.
    pub fn body(&self) -> String {
        self.lines.join("\n")
    }

    /// Convert `ERR` replies into an `io::Error`.
    pub fn into_ok(self) -> std::io::Result<Reply> {
        if self.ok {
            Ok(self)
        } else {
            Err(std::io::Error::other(format!("server: {}", self.head)))
        }
    }
}

/// Blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send raw request text (newline appended) and read one response
    /// block.
    pub fn request(&mut self, text: &str) -> std::io::Result<Reply> {
        self.writer.write_all(text.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> std::io::Result<Reply> {
        let mut head = String::new();
        if self.reader.read_line(&mut head)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let head = head.trim_end().to_owned();
        let (ok, head) = if let Some(rest) = head.strip_prefix("OK") {
            (true, rest.trim_start().to_owned())
        } else if let Some(rest) = head.strip_prefix("ERR") {
            (false, rest.trim_start().to_owned())
        } else {
            return Err(std::io::Error::other(format!(
                "malformed response head: {head}"
            )));
        };
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "response block not terminated",
                ));
            }
            let line = line.trim_end_matches(['\n', '\r']);
            if line == "." {
                break;
            }
            // Undo dot-stuffing.
            let line = line.strip_prefix('.').map_or(line, |r| r);
            lines.push(line.to_owned());
        }
        Ok(Reply { ok, head, lines })
    }

    /// `OPEN <name>` with an inline scenario body.
    pub fn open(&mut self, session: &str, scenario: &str) -> std::io::Result<Reply> {
        self.writer
            .write_all(format!("OPEN {session}\n").as_bytes())?;
        self.writer.write_all(scenario.as_bytes())?;
        if !scenario.ends_with('\n') {
            self.writer.write_all(b"\n")?;
        }
        self.writer.write_all(b"END\n")?;
        self.writer.flush()?;
        self.read_reply()
    }

    /// `PUSH <session> <data line>` — feed + exchange one tuple.
    pub fn push(&mut self, session: &str, data_line: &str) -> std::io::Result<Reply> {
        self.request(&format!("PUSH {session} {data_line}"))
    }

    /// `FEED <session> <data line>` — feed without exchanging.
    pub fn feed(&mut self, session: &str, data_line: &str) -> std::io::Result<Reply> {
        self.request(&format!("FEED {session} {data_line}"))
    }

    /// `FLUSH <session>` — exchange everything pending.
    pub fn flush_session(&mut self, session: &str) -> std::io::Result<Reply> {
        self.request(&format!("FLUSH {session}"))
    }

    /// `STATS` (server-wide) or `STATS <session>`.
    pub fn stats(&mut self, session: Option<&str>) -> std::io::Result<Reply> {
        match session {
            Some(s) => self.request(&format!("STATS {s}")),
            None => self.request("STATS"),
        }
    }

    /// `METRICS` — the server's registry as Prometheus text exposition
    /// (the reply body is the scrape payload).
    pub fn metrics(&mut self) -> std::io::Result<Reply> {
        self.request("METRICS")
    }

    /// `SQL <session>` — the session's target as INSERT statements.
    pub fn sql(&mut self, session: &str) -> std::io::Result<Reply> {
        self.request(&format!("SQL {session}"))
    }

    /// `CLOSE <session>`.
    pub fn close(&mut self, session: &str) -> std::io::Result<Reply> {
        self.request(&format!("CLOSE {session}"))
    }

    /// `SHUTDOWN` — graceful server stop.
    pub fn shutdown(&mut self) -> std::io::Result<Reply> {
        self.request("SHUTDOWN")
    }
}
