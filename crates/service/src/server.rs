//! The TCP server: nonblocking accept loop, fixed worker pool fed by a
//! bounded job channel, TTL sweeper, graceful shutdown.
//!
//! Concurrency shape:
//!
//! * one **accept** thread polls the listener (nonblocking + short sleep,
//!   so the shutdown flag is observed promptly) and spawns a lightweight
//!   I/O thread per connection;
//! * connection threads only parse lines and frame responses — every
//!   request is executed by one of `workers` **pool threads**, fed through
//!   a *bounded* `sync_channel`: when all workers are busy and the queue is
//!   full, `send` blocks the connection thread, which stops reading its
//!   socket — backpressure propagates to the client's TCP window instead
//!   of growing an unbounded queue;
//! * a **sweeper** thread evicts sessions idle past `idle_ttl`;
//! * `SHUTDOWN` (or [`ServerHandle::shutdown`]) raises a flag: the accept
//!   loop stops, connection threads close after their in-flight request,
//!   the job channel disconnects, workers drain what was queued and exit.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sedex_core::render::sql_literal;
use sedex_core::SedexConfig;
use sedex_observe::{
    render_prometheus, Counter, Gauge, Histogram, MetricsRegistry, RegistryObserver,
};
use sedex_scenarios::textfmt;
use sedex_storage::Instance;

use crate::manager::SessionManager;
use crate::protocol::{parse_request, Request, Response, MAX_LINE_BYTES, MAX_OPEN_BODY_LINES};

/// Server tunables. `Default` gives an ephemeral port on localhost, a
/// worker per core (capped at 8), 16 shards and a 15-minute idle TTL.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878`. Port 0 picks an ephemeral
    /// port; read it back with [`ServerHandle::local_addr`].
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Session-map shards.
    pub shards: usize,
    /// Bounded job-queue depth (the backpressure knob).
    pub queue_depth: usize,
    /// Evict sessions idle longer than this; `None` disables eviction.
    pub idle_ttl: Option<Duration>,
    /// How often the sweeper wakes up.
    pub sweep_interval: Duration,
    /// Attach a [`RegistryObserver`] to every session, so pipeline phase
    /// timings, repository hit/miss counts and egd outcomes land in the
    /// server's metrics registry (the `METRICS` command). Off by default:
    /// the engine hot path then performs no tracing work at all. The
    /// service-level series (requests, latency, queue depth, …) are always
    /// maintained — they are off the per-tuple hot path.
    pub metrics: bool,
    /// Per-tuple slow-exchange threshold passed to every session: pushes
    /// slower than this log a one-line phase breakdown to stderr.
    pub slow_exchange_threshold: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            shards: 16,
            queue_depth: 64,
            idle_ttl: Some(Duration::from_secs(900)),
            sweep_interval: Duration::from_millis(500),
            metrics: false,
            slow_exchange_threshold: None,
        }
    }
}

/// Server-wide metric handles. Every series lives in the server's
/// [`MetricsRegistry`], so `STATS` and `METRICS` render the same numbers
/// — `STATS` as a human summary, `METRICS` as Prometheus exposition.
/// Handles are lock-free atomics (see [`sedex_observe`]).
pub struct ServerStats {
    /// Connections accepted (`sedex_service_connections_total`).
    pub connections: Arc<Counter>,
    /// Requests executed, including failed ones
    /// (`sedex_service_requests_total`).
    pub requests: Arc<Counter>,
    /// `PUSH`/`FEED` tuples taken in (`sedex_service_tuples_in_total`).
    pub tuples_in: Arc<Counter>,
    /// Requests answered with `ERR` (`sedex_service_errors_total`).
    pub errors: Arc<Counter>,
    /// Sessions opened (`sedex_service_sessions_opened_total`).
    pub opened: Arc<Counter>,
    /// Sessions closed by `CLOSE` (`sedex_service_sessions_closed_total`).
    pub closed: Arc<Counter>,
    /// Sessions evicted by the idle sweeper
    /// (`sedex_service_sessions_evicted_total`).
    pub evicted: Arc<Counter>,
    /// Wall-clock latency of request execution, queue wait excluded
    /// (`sedex_request_seconds`).
    pub request_seconds: Arc<Histogram>,
    /// Jobs waiting in (or blocked on) the bounded job queue
    /// (`sedex_queue_depth`).
    pub queue_depth: Arc<Gauge>,
    /// Workers currently executing a request (`sedex_workers_busy`).
    pub workers_busy: Arc<Gauge>,
}

impl ServerStats {
    /// Register every server-wide series in `registry`.
    pub fn new(registry: &MetricsRegistry) -> Self {
        ServerStats {
            connections: registry
                .counter("sedex_service_connections_total", "Connections accepted"),
            requests: registry.counter(
                "sedex_service_requests_total",
                "Requests executed (including failed ones)",
            ),
            tuples_in: registry
                .counter("sedex_service_tuples_in_total", "PUSH/FEED tuples taken in"),
            errors: registry.counter("sedex_service_errors_total", "Requests answered with ERR"),
            opened: registry.counter("sedex_service_sessions_opened_total", "Sessions opened"),
            closed: registry.counter(
                "sedex_service_sessions_closed_total",
                "Sessions closed by CLOSE",
            ),
            evicted: registry.counter(
                "sedex_service_sessions_evicted_total",
                "Sessions evicted by the idle sweeper",
            ),
            request_seconds: registry.histogram(
                "sedex_request_seconds",
                "Request execution latency (queue wait excluded)",
            ),
            queue_depth: registry.gauge(
                "sedex_queue_depth",
                "Jobs waiting in (or blocked on) the bounded job queue",
            ),
            workers_busy: registry.gauge(
                "sedex_workers_busy",
                "Workers currently executing a request",
            ),
        }
    }
}

/// State shared by every thread of one server.
struct Shared {
    manager: SessionManager,
    registry: MetricsRegistry,
    stats: ServerStats,
    shutdown: AtomicBool,
    started: Instant,
    workers: usize,
}

struct Job {
    request: Request,
    reply: SyncSender<Response>,
}

/// A running server. Dropping the handle does **not** stop the server —
/// call [`ServerHandle::shutdown`] (or send `SHUTDOWN` over the wire, then
/// [`ServerHandle::join`]).
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
}

/// Namespace for [`Server::start`].
pub struct Server;

impl Server {
    /// Bind and start serving; returns once the listener is live.
    pub fn start(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let registry = MetricsRegistry::new();
        let stats = ServerStats::new(&registry);
        let session_config = SedexConfig {
            slow_exchange_threshold: cfg.slow_exchange_threshold,
            ..SedexConfig::default()
        };
        let mut manager = SessionManager::new(cfg.shards).with_session_config(session_config);
        if cfg.metrics {
            manager = manager.with_observer(Arc::new(RegistryObserver::new(&registry)));
        }
        let shared = Arc::new(Shared {
            manager,
            registry,
            stats,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            workers: cfg.workers.max(1),
        });

        let (tx, rx) = sync_channel::<Job>(cfg.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..cfg.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sedex-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawn worker")
            })
            .collect();

        let sweeper = cfg.idle_ttl.map(|ttl| {
            let shared = Arc::clone(&shared);
            let interval = cfg.sweep_interval;
            std::thread::Builder::new()
                .name("sedex-sweeper".to_owned())
                .spawn(move || sweeper_loop(&shared, ttl, interval))
                .expect("spawn sweeper")
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sedex-accept".to_owned())
                .spawn(move || accept_loop(listener, tx, &shared))
                .expect("spawn accept loop")
        };

        Ok(ServerHandle {
            shared,
            addr,
            accept: Some(accept),
            workers,
            sweeper,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// True once shutdown has been requested (by flag or by wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Request shutdown and wait for every thread to drain and exit.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.join_threads();
    }

    /// Wait for the server to exit (e.g. after a wire `SHUTDOWN`).
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.sweeper.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // A dropped handle must not leave threads spinning forever.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.join_threads();
    }
}

const ACCEPT_POLL: Duration = Duration::from_millis(10);
const READ_POLL: Duration = Duration::from_millis(50);

fn accept_loop(listener: TcpListener, tx: SyncSender<Job>, shared: &Arc<Shared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.stats.connections.inc();
                let tx = tx.clone();
                let shared = Arc::clone(shared);
                conns.push(
                    std::thread::Builder::new()
                        .name("sedex-conn".to_owned())
                        .spawn(move || connection_loop(stream, &tx, &shared))
                        .expect("spawn connection thread"),
                );
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                // Reap finished connection threads so the vec stays small.
                conns.retain(|h| !h.is_finished());
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    for h in conns {
        let _ = h.join();
    }
    // `tx` drops here: the job channel disconnects and workers exit after
    // draining whatever is still queued.
}

fn sweeper_loop(shared: &Arc<Shared>, ttl: Duration, interval: Duration) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(interval.min(Duration::from_millis(200)));
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let evicted = shared.manager.evict_idle(ttl);
        shared.stats.evicted.add(evicted.len() as u64);
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>, shared: &Arc<Shared>) {
    loop {
        // Hold the receiver lock only while dequeuing, not while executing.
        let job = match rx.lock().expect("job queue lock poisoned").recv() {
            Ok(j) => j,
            Err(_) => return, // all senders gone: server is draining
        };
        shared.stats.queue_depth.dec();
        shared.stats.workers_busy.inc();
        let t0 = Instant::now();
        let response = execute(shared, &job.request);
        shared.stats.request_seconds.observe(t0.elapsed());
        shared.stats.workers_busy.dec();
        shared.stats.requests.inc();
        if !response.ok {
            shared.stats.errors.inc();
        }
        // The connection may have hung up while the job was queued.
        let _ = job.reply.send(response);
    }
}

/// Incremental line reader over a nonblocking-ish socket: read timeouts
/// are used as polling points for the shutdown flag, and partial lines
/// survive across `WouldBlock` boundaries.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LineReader {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_read_timeout(Some(READ_POLL))?;
        Ok(LineReader {
            stream,
            buf: Vec::new(),
        })
    }

    /// Next full line (without the trailing newline), or `None` on EOF,
    /// error, shutdown, or an over-long line.
    fn next_line(&mut self, shared: &Shared) -> Option<String> {
        loop {
            if let Some(i) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=i).collect();
                line.pop(); // \n
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Some(String::from_utf8_lossy(&line).into_owned());
            }
            if self.buf.len() > MAX_LINE_BYTES {
                return None;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return None, // EOF
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return None;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return None,
            }
        }
    }
}

fn connection_loop(stream: TcpStream, tx: &SyncSender<Job>, shared: &Arc<Shared>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = match LineReader::new(stream) {
        Ok(r) => r,
        Err(_) => return,
    };
    while let Some(line) = reader.next_line(shared) {
        if line.trim().is_empty() {
            continue;
        }
        // OPEN carries a body: collect lines up to a lone END before
        // parsing, so a malformed OPEN still consumes its body.
        let open_body = if line.trim_start().len() >= 4
            && line.trim_start()[..4].eq_ignore_ascii_case("OPEN")
        {
            let mut body = String::new();
            let mut terminated = false;
            for _ in 0..MAX_OPEN_BODY_LINES {
                match reader.next_line(shared) {
                    Some(l) if l.trim().eq_ignore_ascii_case("END") => {
                        terminated = true;
                        break;
                    }
                    Some(l) => {
                        body.push_str(&l);
                        body.push('\n');
                    }
                    None => return,
                }
            }
            if !terminated {
                let _ = writer.write_all(
                    Response::err("OPEN body not terminated by END")
                        .render()
                        .as_bytes(),
                );
                continue;
            }
            Some(body)
        } else {
            None
        };
        let request = match parse_request(&line, open_body) {
            Ok(r) => r,
            Err(e) => {
                shared.stats.requests.inc();
                shared.stats.errors.inc();
                if writer
                    .write_all(Response::err(e.to_string()).render().as_bytes())
                    .is_err()
                {
                    return;
                }
                continue;
            }
        };
        let is_shutdown = matches!(request, Request::Shutdown);
        // Bounded send: blocks when the pool is saturated (backpressure).
        // The gauge counts the job from the moment the connection commits
        // to it, so a send blocked on a full queue shows up as depth.
        let (reply_tx, reply_rx) = sync_channel::<Response>(1);
        shared.stats.queue_depth.inc();
        if tx
            .send(Job {
                request,
                reply: reply_tx,
            })
            .is_err()
        {
            shared.stats.queue_depth.dec();
            return; // server draining
        }
        let response = match reply_rx.recv() {
            Ok(r) => r,
            Err(_) => return,
        };
        if writer.write_all(response.render().as_bytes()).is_err() {
            return;
        }
        let _ = writer.flush();
        if is_shutdown {
            return;
        }
    }
}

/// Execute one request against the shared state. Pure request → response;
/// all I/O happens in the connection threads.
fn execute(shared: &Shared, request: &Request) -> Response {
    match request {
        Request::Open { session, body } => match shared.manager.open(session, body) {
            Ok(seeded) => {
                shared.stats.opened.inc();
                Response::ok(format!("opened {session}, seeded {seeded} tuples"))
            }
            Err(e) => Response::err(e),
        },
        Request::Push { session, line } => {
            shared.stats.tuples_in.inc();
            run_on_session(shared, session, |t| {
                let (rel, tuple) = textfmt::parse_data_line(line, 1)
                    .map_err(|e| format!("data: {}", e.message))?;
                t.session
                    .exchange_tuple(&rel, tuple)
                    .map_err(|e| e.to_string())?;
                t.tuples_in += 1;
                let r = t.session.report_snapshot();
                Ok(Response::ok(format!(
                    "pushed {rel} | scripts {} generated / {} reused | target {} tuples",
                    r.scripts_generated, r.scripts_reused, r.stats.tuples
                )))
            })
        }
        Request::Feed { session, line } => {
            shared.stats.tuples_in.inc();
            run_on_session(shared, session, |t| {
                let (rel, tuple) = textfmt::parse_data_line(line, 1)
                    .map_err(|e| format!("data: {}", e.message))?;
                t.session.feed(&rel, tuple).map_err(|e| e.to_string())?;
                t.tuples_in += 1;
                Ok(Response::ok(format!("fed {rel}")))
            })
        }
        Request::Flush { session } => run_on_session(shared, session, |t| {
            t.session.exchange_pending().map_err(|e| e.to_string())?;
            let r = t.session.report_snapshot();
            Ok(Response::ok_with(format!("flushed {session}"), r))
        }),
        Request::Stats { session: None } => server_stats(shared),
        Request::Stats {
            session: Some(name),
        } => run_on_session(shared, name, |t| {
            let r = t.session.report_snapshot();
            let mut resp = Response::ok_with(format!("stats {name}"), r.verbose());
            resp.lines.push(format!(
                "service: {} requests, {} tuples in, {} scripts cached",
                t.requests,
                t.tuples_in,
                t.session.scripts_cached()
            ));
            Ok(resp)
        }),
        Request::Sql { session } => run_on_session(shared, session, |t| {
            let sql = sql_dump(t.session.target());
            Ok(Response::ok_with(format!("sql {session}"), sql.trim_end()))
        }),
        Request::Metrics => {
            refresh_session_gauges(shared);
            Response::ok_with("metrics", render_prometheus(&shared.registry).trim_end())
        }
        Request::Close { session } => match shared.manager.close(session) {
            Ok((_target, report)) => {
                shared.stats.closed.inc();
                Response::ok(format!("closed {session} | {report}"))
            }
            Err(e) => Response::err(e),
        },
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::ok("shutting down")
        }
    }
}

fn run_on_session(
    shared: &Shared,
    name: &str,
    f: impl FnOnce(&mut crate::manager::Tenant) -> Result<Response, String>,
) -> Response {
    match shared.manager.with_tenant(name, f) {
        Ok(Ok(resp)) => resp,
        Ok(Err(e)) | Err(e) => Response::err(e),
    }
}

/// Refresh the point-in-time session gauges (`sedex_sessions_live` per
/// shard) from the manager — done at render time, since live-session
/// counts are derived state, not event streams.
fn refresh_session_gauges(shared: &Shared) {
    for (i, n) in shared.manager.shard_sizes().into_iter().enumerate() {
        let shard = i.to_string();
        shared
            .registry
            .gauge_with(
                "sedex_sessions_live",
                "Live sessions per shard",
                &[("shard", &shard)],
            )
            .set(n as i64);
    }
}

fn server_stats(shared: &Shared) -> Response {
    let s = &shared.stats;
    let shard_sizes = shared.manager.shard_sizes();
    let head = format!(
        "server up {:?} | {} sessions | {} requests, {} tuples in, {} errors",
        shared.started.elapsed(),
        shared.manager.len(),
        s.requests.get(),
        s.tuples_in.get(),
        s.errors.get(),
    );
    let mut lines = vec![format!(
        "sessions: {} opened, {} closed, {} evicted | connections: {}",
        s.opened.get(),
        s.closed.get(),
        s.evicted.get(),
        s.connections.get(),
    )];
    lines.push(format!(
        "load: queue depth {}, busy workers {}/{} | sessions/shard: [{}]",
        s.queue_depth.get().max(0),
        s.workers_busy.get().max(0),
        shared.workers,
        shard_sizes
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(" "),
    ));
    lines.push(format!(
        "latency: p50 {:?}, p90 {:?}, p99 {:?} over {} requests",
        s.request_seconds.quantile(0.5),
        s.request_seconds.quantile(0.9),
        s.request_seconds.quantile(0.99),
        s.request_seconds.count(),
    ));
    for name in shared.manager.names() {
        if let Ok(line) = shared.manager.with_tenant(&name, |t| {
            format!("{name}: {}", t.session.report_snapshot())
        }) {
            lines.push(line);
        }
    }
    Response {
        ok: true,
        head,
        lines,
    }
}

/// Render a target instance as SQL `INSERT` statements (sorted by relation
/// name for stable output).
pub fn sql_dump(instance: &Instance) -> String {
    let mut rels: Vec<(&str, _)> = instance.relations().collect();
    rels.sort_by_key(|(name, _)| name.to_owned());
    let mut out = String::new();
    for (name, rel) in rels {
        let cols: Vec<&str> = rel
            .schema()
            .columns
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        for tuple in rel.iter() {
            let vals: Vec<String> = tuple.values().iter().map(sql_literal).collect();
            out.push_str(&format!(
                "INSERT INTO {} ({}) VALUES ({});\n",
                name,
                cols.join(", "),
                vals.join(", ")
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::{ConflictPolicy, RelationSchema, Schema};

    #[test]
    fn sql_dump_renders_sorted_inserts() {
        let b = RelationSchema::with_any_columns("B", &["x"]);
        let a = RelationSchema::with_any_columns("A", &["y", "z"]);
        let schema = Schema::from_relations(vec![b, a]).unwrap();
        let mut inst = Instance::new(schema);
        inst.insert("B", sedex_storage::tuple!["v"], ConflictPolicy::Reject)
            .unwrap();
        inst.insert("A", sedex_storage::tuple!["p", "q"], ConflictPolicy::Reject)
            .unwrap();
        let sql = sql_dump(&inst);
        assert_eq!(
            sql,
            "INSERT INTO A (y, z) VALUES ('p', 'q');\nINSERT INTO B (x) VALUES ('v');\n"
        );
    }
}
