//! The TCP server: one readiness-reactor thread for all connection I/O,
//! a fixed worker pool fed by a bounded job channel, TTL sweeper,
//! graceful shutdown.
//!
//! Concurrency shape:
//!
//! * one **reactor** thread ([`sedex_net`], see [`crate::reactor`]) owns
//!   the listener and every connection: it accepts, reads and parses both
//!   protocols (text lines and binary frames), frames responses, and
//!   tracks per-request deadlines — all through epoll/poll readiness, so
//!   an idle server (or ten thousand idle connections) does **zero**
//!   periodic wakeups and spawns zero per-connection threads;
//! * every request is executed by one of `workers` **pool threads**, fed
//!   through a *bounded* `sync_channel`: when all workers are busy and the
//!   queue is full, the reactor parks the connection's next request and
//!   stops reading its socket — backpressure propagates to the client's
//!   TCP window instead of growing an unbounded queue;
//! * a **sweeper** thread evicts sessions idle past `idle_ttl`; it blocks
//!   on a condvar while the server has no sessions at all;
//! * `SHUTDOWN` (or [`ServerHandle::shutdown`]) raises a flag and wakes
//!   the reactor: it stops accepting, serves what each connection already
//!   sent, flushes, and exits; the job channel disconnects, workers drain
//!   what was queued and exit.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sedex_cluster::{Applied, ClusterConfig, ClusterState, HashRing, ReplFrame, Route};
use sedex_core::render::sql_literal;
use sedex_core::{Observer, SedexConfig};
use sedex_durable::recover::list_segments;
use sedex_durable::{
    decode_session_state, encode_session_state, read_segment, recover_data_dir, DurableMetrics,
    DurableShard, FaultKind, FaultPlan, FaultPoint, FsyncPolicy, SessionSnapshot, WalRecord,
};
use sedex_net::{Poller, Waker};
use sedex_observe::{
    render_prometheus, Counter, FlightRecorder, Gauge, Histogram, MetricsRegistry,
    RegistryObserver, ReqSpan,
};
use sedex_scenarios::textfmt;
use sedex_storage::codec::{ByteReader, ByteWriter};
use sedex_storage::{Instance, InstanceSnapshot, Tuple};

use crate::client::{Client, ClientConfig};
use crate::manager::SessionManager;
use crate::protocol::{Proto, Request, Response};
use crate::reactor::reactor_loop;

/// Server tunables. `Default` gives an ephemeral port on localhost, a
/// worker per core (capped at 8), 16 shards and a 15-minute idle TTL.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878`. Port 0 picks an ephemeral
    /// port; read it back with [`ServerHandle::local_addr`].
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Session-map shards.
    pub shards: usize,
    /// Bounded job-queue depth (the backpressure knob).
    pub queue_depth: usize,
    /// Evict sessions idle longer than this; `None` disables eviction.
    pub idle_ttl: Option<Duration>,
    /// How often the sweeper wakes up.
    pub sweep_interval: Duration,
    /// Attach a [`RegistryObserver`] to every session, so pipeline phase
    /// timings, repository hit/miss counts and egd outcomes land in the
    /// server's metrics registry (the `METRICS` command). Off by default:
    /// the engine hot path then performs no tracing work at all. The
    /// service-level series (requests, latency, queue depth, …) are always
    /// maintained — they are off the per-tuple hot path.
    pub metrics: bool,
    /// Per-tuple slow-exchange threshold passed to every session: pushes
    /// slower than this log a one-line phase breakdown to stderr.
    pub slow_exchange_threshold: Option<Duration>,
    /// Engine threads per session for the batch pipeline (`RUN`, and any
    /// future bulk command). 1 (the default) keeps sessions serial —
    /// server-level parallelism already comes from the worker pool; raise
    /// it only when single large exchanges dominate the workload.
    pub engine_threads: usize,
    /// Batches smaller than this stay serial even with `engine_threads >
    /// 1` (passed through to [`SedexConfig::parallel_threshold`]).
    pub parallel_threshold: usize,
    /// Durability root. `Some(dir)` turns on write-ahead logging and
    /// snapshots under `dir/shard-<i>/`; at startup the server recovers
    /// every session persisted there. `None` (the default) keeps the server
    /// fully in-memory.
    pub data_dir: Option<PathBuf>,
    /// When durability is on: fsync the WAL after every append (`Always`),
    /// after every Nth (`EveryN`), or never (`Off` — data still reaches the
    /// OS on every append, so it survives process death but not power loss).
    pub fsync: FsyncPolicy,
    /// When durability is on: checkpoint a shard (snapshot + WAL rotation)
    /// after this many appended records. `0` checkpoints only on `FLUSH`
    /// and at clean shutdown.
    pub snapshot_every: u64,
    /// Per-request budget covering queue wait **and** execution. A request
    /// that cannot be answered within it gets `ERR DEADLINE` — the worker
    /// skips jobs that expired while queued, and the connection thread
    /// stops waiting and answers the client even if a worker is stuck on
    /// the job. `None` (the default) never times requests out.
    pub request_timeout: Option<Duration>,
    /// Maximum simultaneous connections; one over the cap is answered
    /// `ERR BUSY retry-after=<ms>` and closed instead of being served.
    /// `0` (the default) is unlimited.
    pub max_conns: usize,
    /// Load shedding: when at least this many jobs are queued or blocked
    /// on the bounded job channel, new requests (except `SHUTDOWN`) are
    /// answered `ERR BUSY retry-after=<ms>` immediately instead of joining
    /// the queue. `0` (the default) disables shedding — connections then
    /// block on the channel (pure backpressure).
    pub shed_queue_depth: usize,
    /// Fault-injection schedule for chaos testing; `None` in production.
    /// The plan is threaded into the WAL appender, fsyncs, snapshot writes,
    /// and the accept/read/write/session-work paths — see
    /// [`sedex_durable::fault`].
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Pipelining window: how many parsed-but-unanswered requests one
    /// connection may have queued in the reactor before it stops reading
    /// that socket. Responses are always delivered in request order and
    /// requests of one connection never execute concurrently — the window
    /// only saves round-trips.
    pub pipeline_window: usize,
    /// Request-lifecycle tracing: keep the last N completed request spans
    /// (`read→parse→queue_wait→exec→flush`) in an in-memory flight
    /// recorder, served by the `TRACE` verb, and feed per-verb × per-proto
    /// stage-latency histograms into the registry. `0` (the default)
    /// disables tracing entirely — the request hot path then performs no
    /// additional clock reads or atomics, per the observability
    /// convention.
    pub trace_buffer: usize,
    /// Cluster membership: `Some` makes this node part of a multi-node
    /// ring — session-addressed requests for sessions another node owns
    /// are answered `ERR MOVED <node> <addr>`, WAL records ship to the
    /// ring successor as a warm standby, and a planned `LEAVE` migrates
    /// every owned session out before departing. `None` (the default) is
    /// plain single-node operation with zero cluster overhead.
    pub cluster: Option<ClusterConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            shards: 16,
            queue_depth: 64,
            idle_ttl: Some(Duration::from_secs(900)),
            sweep_interval: Duration::from_millis(500),
            metrics: false,
            slow_exchange_threshold: None,
            engine_threads: 1,
            parallel_threshold: SedexConfig::default().parallel_threshold,
            data_dir: None,
            fsync: FsyncPolicy::Always,
            snapshot_every: 1024,
            request_timeout: None,
            max_conns: 0,
            shed_queue_depth: 0,
            fault_plan: None,
            pipeline_window: 128,
            trace_buffer: 0,
            cluster: None,
        }
    }
}

/// The `retry-after` hint (milliseconds) carried by `ERR BUSY` replies.
pub const SHED_RETRY_AFTER_MS: u64 = 100;

pub(crate) fn busy_response() -> Response {
    Response::err(format!("BUSY retry-after={SHED_RETRY_AFTER_MS}"))
}

/// Server-wide metric handles. Every series lives in the server's
/// [`MetricsRegistry`], so `STATS` and `METRICS` render the same numbers
/// — `STATS` as a human summary, `METRICS` as Prometheus exposition.
/// Handles are lock-free atomics (see [`sedex_observe`]).
pub struct ServerStats {
    /// Connections accepted (`sedex_service_connections_total`).
    pub connections: Arc<Counter>,
    /// Requests executed, including failed ones
    /// (`sedex_service_requests_total`).
    pub requests: Arc<Counter>,
    /// `PUSH`/`FEED` tuples taken in (`sedex_service_tuples_in_total`).
    pub tuples_in: Arc<Counter>,
    /// Requests answered with `ERR` (`sedex_service_errors_total`).
    pub errors: Arc<Counter>,
    /// Sessions opened (`sedex_service_sessions_opened_total`).
    pub opened: Arc<Counter>,
    /// Sessions closed by `CLOSE` (`sedex_service_sessions_closed_total`).
    pub closed: Arc<Counter>,
    /// Sessions evicted by the idle sweeper
    /// (`sedex_service_sessions_evicted_total`).
    pub evicted: Arc<Counter>,
    /// Requests shed under overload with `ERR BUSY` — queue-depth
    /// shedding plus connections refused over the cap
    /// (`sedex_service_shed_total`).
    pub shed: Arc<Counter>,
    /// Requests answered `ERR DEADLINE` because the request budget ran
    /// out, queued or executing (`sedex_service_deadline_total`).
    pub deadlines: Arc<Counter>,
    /// Request executions that panicked; the session involved is
    /// quarantined (`sedex_service_panics_total`).
    pub panics: Arc<Counter>,
    /// Wall-clock latency of request execution, queue wait excluded
    /// (`sedex_request_seconds`).
    pub request_seconds: Arc<Histogram>,
    /// Jobs waiting in (or blocked on) the bounded job queue
    /// (`sedex_queue_depth`).
    pub queue_depth: Arc<Gauge>,
    /// Workers currently executing a request (`sedex_workers_busy`).
    pub workers_busy: Arc<Gauge>,
    /// Connections currently open (`sedex_service_open_connections`).
    pub open_conns: Arc<Gauge>,
    /// Requests answered on text-protocol connections
    /// (`sedex_service_proto_requests_total{proto="text"}`).
    pub proto_text: Arc<Counter>,
    /// Requests answered on binary-protocol connections
    /// (`sedex_service_proto_requests_total{proto="binary"}`).
    pub proto_binary: Arc<Counter>,
    /// Reactor `Poller::wait` returns (`sedex_reactor_polls_total`).
    pub reactor_polls: Arc<Counter>,
    /// Waits interrupted by the cross-thread waker
    /// (`sedex_reactor_wakeups_total`).
    pub reactor_wakeups: Arc<Counter>,
    /// Readiness events delivered across all waits
    /// (`sedex_reactor_events_total`); divided by polls this is the
    /// events-per-wake average.
    pub reactor_events: Arc<Counter>,
    /// Jobs parked because the bounded worker queue was full — the
    /// connection's reads pause until a completion drains
    /// (`sedex_reactor_backpressure_parks_total`).
    pub reactor_parks: Arc<Counter>,
    /// Largest per-connection read buffer observed, bytes
    /// (`sedex_reactor_rbuf_highwater_bytes`).
    pub reactor_rbuf_hw: Arc<Gauge>,
    /// Largest per-connection write buffer observed, bytes
    /// (`sedex_reactor_wbuf_highwater_bytes`).
    pub reactor_wbuf_hw: Arc<Gauge>,
    /// Deepest parsed-but-unanswered pipeline observed on one connection
    /// (`sedex_reactor_pipeline_depth_highwater`).
    pub reactor_pipeline_hw: Arc<Gauge>,
    /// Reactor loop-iteration latency — wait return to next wait entry
    /// (`sedex_reactor_loop_seconds`). Only fed when tracing is enabled:
    /// timing every iteration needs two clock reads per loop.
    pub reactor_loop_seconds: Arc<Histogram>,
    /// Poisoned sessions left out of durability snapshots
    /// (`sedex_snapshot_skipped_sessions_total`) — non-zero means some
    /// checkpoint was partial, and `STATS` flags durability DEGRADED.
    pub snapshot_skips: Arc<Counter>,
    /// TTL-sweep passes that found a tenant mutex held
    /// (`sedex_sweep_retries_total`) — the aging signal for wedged
    /// writers (snapshot readers never hold the tenant mutex).
    pub sweep_retries: Arc<Counter>,
}

impl ServerStats {
    /// Register every server-wide series in `registry`.
    pub fn new(registry: &MetricsRegistry) -> Self {
        ServerStats {
            connections: registry
                .counter("sedex_service_connections_total", "Connections accepted"),
            requests: registry.counter(
                "sedex_service_requests_total",
                "Requests executed (including failed ones)",
            ),
            tuples_in: registry
                .counter("sedex_service_tuples_in_total", "PUSH/FEED tuples taken in"),
            errors: registry.counter("sedex_service_errors_total", "Requests answered with ERR"),
            opened: registry.counter("sedex_service_sessions_opened_total", "Sessions opened"),
            closed: registry.counter(
                "sedex_service_sessions_closed_total",
                "Sessions closed by CLOSE",
            ),
            evicted: registry.counter(
                "sedex_service_sessions_evicted_total",
                "Sessions evicted by the idle sweeper",
            ),
            shed: registry.counter(
                "sedex_service_shed_total",
                "Requests shed under overload with ERR BUSY",
            ),
            deadlines: registry.counter(
                "sedex_service_deadline_total",
                "Requests answered ERR DEADLINE (request budget exceeded)",
            ),
            panics: registry.counter(
                "sedex_service_panics_total",
                "Request executions that panicked (session quarantined)",
            ),
            request_seconds: registry.histogram(
                "sedex_request_seconds",
                "Request execution latency (queue wait excluded)",
            ),
            queue_depth: registry.gauge(
                "sedex_queue_depth",
                "Jobs waiting in (or blocked on) the bounded job queue",
            ),
            workers_busy: registry.gauge(
                "sedex_workers_busy",
                "Workers currently executing a request",
            ),
            open_conns: registry.gauge(
                "sedex_service_open_connections",
                "Connections currently open",
            ),
            proto_text: registry.counter_with(
                "sedex_service_proto_requests_total",
                "Requests answered, by negotiated protocol",
                &[("proto", "text")],
            ),
            proto_binary: registry.counter_with(
                "sedex_service_proto_requests_total",
                "Requests answered, by negotiated protocol",
                &[("proto", "binary")],
            ),
            reactor_polls: registry.counter(
                "sedex_reactor_polls_total",
                "Reactor poll returns (epoll/poll wait calls completed)",
            ),
            reactor_wakeups: registry.counter(
                "sedex_reactor_wakeups_total",
                "Reactor waits interrupted by the cross-thread waker",
            ),
            reactor_events: registry.counter(
                "sedex_reactor_events_total",
                "Readiness events delivered to the reactor",
            ),
            reactor_parks: registry.counter(
                "sedex_reactor_backpressure_parks_total",
                "Jobs parked because the bounded worker queue was full",
            ),
            reactor_rbuf_hw: registry.gauge(
                "sedex_reactor_rbuf_highwater_bytes",
                "Largest per-connection read buffer observed",
            ),
            reactor_wbuf_hw: registry.gauge(
                "sedex_reactor_wbuf_highwater_bytes",
                "Largest per-connection write buffer observed",
            ),
            reactor_pipeline_hw: registry.gauge(
                "sedex_reactor_pipeline_depth_highwater",
                "Deepest parsed-but-unanswered pipeline on one connection",
            ),
            reactor_loop_seconds: registry.histogram(
                "sedex_reactor_loop_seconds",
                "Reactor loop-iteration latency (fed only with tracing on)",
            ),
            snapshot_skips: registry.counter(
                "sedex_snapshot_skipped_sessions_total",
                "Poisoned sessions left out of durability snapshots",
            ),
            sweep_retries: registry.counter(
                "sedex_sweep_retries_total",
                "TTL-sweep passes that found a tenant mutex held",
            ),
        }
    }

    /// Bump the per-protocol request counter.
    pub(crate) fn count_proto(&self, proto: Proto) {
        match proto {
            Proto::Text => self.proto_text.inc(),
            Proto::Binary => self.proto_binary.inc(),
        }
    }
}

/// Durability state: one [`DurableShard`] per manager shard (same
/// name→shard mapping), plus recovery totals frozen at startup for `STATS`.
///
/// Lock ordering: the durable-shard mutex is the **innermost** lock. A WAL
/// append happens while still holding the lock that serialized the
/// operation — the tenant mutex for `PUSH`/`FEED`/`FLUSH`/script installs,
/// the shard-map write lock for `OPEN`/`CLOSE`/TTL eviction — so the log
/// order of one session's records always matches their application order
/// (an `Open` can never be outrun by the first `Push`, a `Close` never by
/// a re-`Open` of the same name). `checkpoint_shard` never holds the
/// durable mutex while taking tenant or map locks: it captures the
/// snapshot watermark (brief durable lock), exports tenant state (map read
/// lock + tenant locks, no durable lock), then writes the snapshot
/// (durable lock only) — no cycle with the append path. Capturing the
/// watermark *before* the export is load-bearing: a record appended while
/// the export runs gets `lsn > watermark`, so recovery re-replays it onto
/// a snapshot that may already contain its effect — idempotent redo,
/// at-least-once. The reverse order would stamp such a record `≤`
/// watermark and recovery would silently drop the acknowledged write.
struct Durability {
    shards: Vec<Mutex<DurableShard>>,
    metrics: Arc<DurableMetrics>,
    snapshot_every: u64,
    recovered_sessions: u64,
    replayed_records: u64,
    torn_tails: u64,
    finalized: AtomicBool,
    skip_final_checkpoint: AtomicBool,
}

/// Cluster runtime: the shared [`ClusterState`] plus the metric handles
/// the cluster paths feed.
pub(crate) struct ClusterRt {
    /// Ring, migration bookkeeping, failure evidence, standby, repl queue.
    pub(crate) state: Arc<ClusterState>,
    /// `sedex_redirects_total` — `MOVED` replies served.
    pub(crate) redirects: Arc<Counter>,
    /// `sedex_replication_lag_records` — shipped-unacked plus queued.
    pub(crate) repl_lag: Arc<Gauge>,
    /// `sedex_cluster_ring_version` — this node's view of the map version.
    pub(crate) ring_version: Arc<Gauge>,
}

impl ClusterRt {
    /// Count one `MOVED` redirect (registry counter + cluster state).
    pub(crate) fn count_redirect(&self) {
        self.redirects.inc();
        self.state
            .redirects
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// State shared by every thread of one server.
pub(crate) struct Shared {
    pub(crate) manager: SessionManager,
    pub(crate) registry: MetricsRegistry,
    pub(crate) stats: ServerStats,
    pub(crate) shutdown: AtomicBool,
    pub(crate) started: Instant,
    pub(crate) workers: usize,
    durability: Option<Durability>,
    /// Cluster runtime; `None` in single-node operation.
    pub(crate) cluster: Option<ClusterRt>,
    /// Session config and observer, kept for paths that build sessions
    /// outside the manager (standby replay of replicated records).
    pub(crate) session_config: SedexConfig,
    pub(crate) observer: Option<Arc<dyn Observer>>,
    /// Durability root, if any — the replication catch-up reads WAL
    /// segments straight from disk.
    pub(crate) data_dir: Option<PathBuf>,
    pub(crate) request_timeout: Option<Duration>,
    pub(crate) max_conns: usize,
    pub(crate) shed_queue_depth: usize,
    pub(crate) faults: Option<Arc<FaultPlan>>,
    /// Wakes the reactor out of `epoll_wait` — used by workers when a
    /// `Done` is queued and by [`ServerHandle::shutdown`].
    pub(crate) waker: Waker,
    /// Sweeper parking spot: the sweeper blocks here while the server has
    /// no sessions at all (an idle server does zero periodic wakeups) and
    /// is notified on the first `OPEN` and at shutdown.
    pub(crate) sweep_signal: (Mutex<bool>, Condvar),
    /// Request-lifecycle flight recorder; `Some` only when the server was
    /// started with `trace_buffer > 0`. Everything span-related — request
    /// ids, stage clocks, ring writes, stage histograms — is gated on
    /// this being `Some`, keeping the default hot path free of extra
    /// clock reads and atomics.
    pub(crate) recorder: Option<Arc<FlightRecorder>>,
}

impl Shared {
    /// Wake the sweeper (first session opened, or shutting down).
    pub(crate) fn notify_sweeper(&self) {
        let (lock, cvar) = &self.sweep_signal;
        *lock.lock().unwrap_or_else(|p| p.into_inner()) = true;
        cvar.notify_all();
    }
}

/// One parsed request on its way to the worker pool. The reactor tags it
/// with the originating connection token and a per-connection sequence
/// number so the worker's [`Done`] finds its way back.
pub(crate) struct Job {
    pub(crate) request: Request,
    /// Protocol the response must be rendered in.
    pub(crate) proto: Proto,
    /// Reactor token of the originating connection.
    pub(crate) conn: u64,
    /// Per-connection sequence number (guards against answering a
    /// different request after reconnect-reuse of a token).
    pub(crate) seq: u64,
    /// Instant by which the client must have an answer (`None` when the
    /// server runs without `request_timeout`). Shutdown jobs carry none.
    pub(crate) deadline: Option<Instant>,
    /// Span-in-progress carried from the reactor; `None` whenever tracing
    /// is disabled.
    pub(crate) trace: Option<JobTrace>,
}

/// The reactor-side half of a request span: stamped at frame decode,
/// completed by the worker and the reply flush.
pub(crate) struct JobTrace {
    /// Monotonically-assigned request id.
    pub(crate) id: u64,
    /// Socket-read nanoseconds attributed to this request.
    pub(crate) read_nanos: u64,
    /// Frame/line decode nanoseconds.
    pub(crate) parse_nanos: u64,
    /// When parsing finished (queue_wait starts here and covers both the
    /// connection's pipeline queue and the bounded worker queue).
    pub(crate) queued: Instant,
}

/// A finished job, flowing back from a worker to the reactor.
pub(crate) struct Done {
    pub(crate) conn: u64,
    pub(crate) seq: u64,
    pub(crate) response: Response,
    /// Worker-completed span, for the reactor to finish (flush stage) and
    /// commit to the flight recorder. `None` whenever tracing is disabled.
    pub(crate) trace: Option<DoneTrace>,
}

/// The worker-side half of a request span.
pub(crate) struct DoneTrace {
    pub(crate) id: u64,
    pub(crate) verb: &'static str,
    pub(crate) session: String,
    pub(crate) read_nanos: u64,
    pub(crate) parse_nanos: u64,
    pub(crate) queue_nanos: u64,
    pub(crate) exec_nanos: u64,
}

impl DoneTrace {
    /// Attach the reactor-measured flush stage, yielding the finished
    /// span for the flight recorder.
    pub(crate) fn into_span(self, proto: Proto, flush_nanos: u64) -> ReqSpan {
        ReqSpan {
            id: self.id,
            proto: proto.name(),
            verb: self.verb.to_owned(),
            session: self.session,
            read_nanos: self.read_nanos,
            parse_nanos: self.parse_nanos,
            queue_nanos: self.queue_nanos,
            exec_nanos: self.exec_nanos,
            flush_nanos,
            node: String::new(),
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server —
/// call [`ServerHandle::shutdown`] (or send `SHUTDOWN` over the wire, then
/// [`ServerHandle::join`]).
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
}

/// Namespace for [`Server::start`].
pub struct Server;

impl Server {
    /// Bind and start serving; returns once the listener is live.
    pub fn start(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = std::net::TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poller = Poller::new()?;
        let waker = poller.waker();
        let registry = MetricsRegistry::new();
        let stats = ServerStats::new(&registry);
        let session_config = SedexConfig {
            slow_exchange_threshold: cfg.slow_exchange_threshold,
            threads: cfg.engine_threads.max(1),
            parallel_threshold: cfg.parallel_threshold,
            ..SedexConfig::default()
        };
        let observer: Option<Arc<dyn Observer>> = if cfg.metrics {
            Some(Arc::new(RegistryObserver::new(&registry)))
        } else {
            None
        };
        let mut manager = SessionManager::new(cfg.shards)
            .with_session_config(session_config.clone())
            .with_eviction_counter(Arc::clone(&stats.evicted))
            .with_sweep_retry_counter(Arc::clone(&stats.sweep_retries));
        if let Some(obs) = &observer {
            manager = manager.with_observer(Arc::clone(obs));
        }
        let durability = match &cfg.data_dir {
            Some(dir) => Some(init_durability(
                dir,
                &cfg,
                &session_config,
                observer.as_ref(),
                &registry,
                &manager,
            )?),
            None => None,
        };
        let cluster = cfg.cluster.clone().map(|mut c| {
            // A node must be reachable at the address it publishes in the
            // ring; default to the actually-bound address (resolves port 0).
            if c.advertise.is_empty() {
                c.advertise = addr.to_string();
            }
            ClusterRt {
                state: Arc::new(ClusterState::new(c)),
                redirects: registry.counter(
                    "sedex_redirects_total",
                    "Session-addressed requests answered ERR MOVED",
                ),
                repl_lag: registry.gauge(
                    "sedex_replication_lag_records",
                    "WAL records shipped but unacknowledged, plus queued",
                ),
                ring_version: registry.gauge(
                    "sedex_cluster_ring_version",
                    "This node's view of the cluster map version",
                ),
            }
        });
        let shared = Arc::new(Shared {
            manager,
            registry,
            stats,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            workers: cfg.workers.max(1),
            durability,
            cluster,
            session_config: session_config.clone(),
            observer: observer.clone(),
            data_dir: cfg.data_dir.clone(),
            request_timeout: cfg.request_timeout,
            max_conns: cfg.max_conns,
            shed_queue_depth: cfg.shed_queue_depth,
            faults: cfg.fault_plan.clone(),
            waker,
            sweep_signal: (Mutex::new(false), Condvar::new()),
            recorder: (cfg.trace_buffer > 0)
                .then(|| Arc::new(FlightRecorder::new(cfg.trace_buffer))),
        });
        if shared.durability.is_some() {
            // Re-persist recovered state under the current shard mapping
            // right away: the new generation's snapshots then cover
            // everything, so stale shard directories (a smaller `shards`
            // than last run) can be dropped.
            for idx in 0..shared.manager.shard_count() {
                checkpoint_shard(&shared, idx);
            }
            if let Some(dir) = &cfg.data_dir {
                remove_stale_shard_dirs(dir, shared.manager.shard_count());
            }
        }

        let (tx, rx) = sync_channel::<Job>(cfg.queue_depth.max(1));
        let (done_tx, done_rx) = channel::<Done>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..cfg.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let done_tx = done_tx.clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sedex-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &done_tx, &shared))
                    .expect("spawn worker")
            })
            .collect();
        drop(done_tx); // the reactor's done_rx disconnects when workers exit

        let sweeper = cfg.idle_ttl.map(|ttl| {
            let shared = Arc::clone(&shared);
            let interval = cfg.sweep_interval;
            std::thread::Builder::new()
                .name("sedex-sweeper".to_owned())
                .spawn(move || sweeper_loop(&shared, ttl, interval))
                .expect("spawn sweeper")
        });

        let reactor = {
            let shared = Arc::clone(&shared);
            let window = cfg.pipeline_window.max(1);
            std::thread::Builder::new()
                .name("sedex-reactor".to_owned())
                .spawn(move || reactor_loop(listener, poller, tx, done_rx, shared, window))
                .expect("spawn reactor")
        };

        cluster_startup_join(&shared);

        Ok(ServerHandle {
            shared,
            addr,
            reactor: Some(reactor),
            workers,
            sweeper,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// True once shutdown has been requested (by flag or by wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Request shutdown and wait for every thread to drain and exit.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.join_threads();
    }

    /// Wait for the server to exit (e.g. after a wire `SHUTDOWN`).
    pub fn join(mut self) {
        self.join_threads();
    }

    /// Stop the server *without* the final durability checkpoint — the
    /// in-process equivalent of `kill -9` for recovery testing. Worker
    /// threads still drain queued jobs (their WAL appends land), but no
    /// snapshot is taken, so a restart must replay the log tail.
    pub fn abort(mut self) {
        if let Some(d) = &self.shared.durability {
            d.skip_final_checkpoint.store(true, Ordering::SeqCst);
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.join_threads();
    }

    fn join_threads(&mut self) {
        // Make sure a flag set outside the wire protocol is noticed
        // promptly: the reactor blocks in epoll, the sweeper on a condvar.
        self.shared.waker.wake();
        self.shared.notify_sweeper();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.sweeper.take() {
            let _ = h.join();
        }
        // Workers are gone, so nothing mutates sessions anymore: persist the
        // final state. A clean shutdown thus leaves each shard with a full
        // snapshot and an empty live segment — no replayable tail.
        finalize_durability(&self.shared);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // A dropped handle must not leave threads spinning forever.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.join_threads();
    }
}

fn sweeper_loop(shared: &Arc<Shared>, ttl: Duration, interval: Duration) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        // Park without any timeout while there is nothing to sweep: an idle
        // server must not tick. The reactor notifies on the first OPEN (and
        // shutdown notifies unconditionally).
        {
            let (lock, cvar) = &shared.sweep_signal;
            let mut signal = lock.lock().unwrap_or_else(|p| p.into_inner());
            if shared.manager.is_empty() {
                while !*signal {
                    signal = cvar.wait(signal).unwrap_or_else(|p| p.into_inner());
                }
            } else if !*signal {
                // Sessions exist: sweep on the configured cadence, but let a
                // notification (shutdown) cut the sleep short.
                signal = cvar
                    .wait_timeout(signal, interval)
                    .map(|(g, _)| g)
                    .unwrap_or_else(|p| p.into_inner().0);
            }
            *signal = false;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // An eviction is a close the client never sent: log it like one
        // (under the shard-map lock, so a racing re-OPEN of the same name
        // is ordered after it), or crash recovery would resurrect sessions
        // the TTL policy already dropped.
        let evicted = shared.manager.evict_idle_with(ttl, |name| {
            wal_append(
                shared,
                name,
                WalRecord::Close {
                    session: name.to_owned(),
                },
            );
        });
        // The manager bumps `sedex_service_sessions_evicted_total` itself
        // (and logs each eviction); only the checkpoints remain to do here.
        for name in &evicted {
            maybe_checkpoint(shared, name);
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>, done_tx: &Sender<Done>, shared: &Arc<Shared>) {
    loop {
        // Hold the receiver lock only while dequeuing, not while executing.
        let job = match rx.lock().expect("job queue lock poisoned").recv() {
            Ok(j) => j,
            Err(_) => return, // all senders gone: server is draining
        };
        shared.stats.queue_depth.dec();
        // A job whose budget expired while it sat in the queue is answered
        // without being executed — the client has (or is about to) put the
        // request down as timed out; doing the work anyway doubles the
        // damage under overload. SHUTDOWN carries no deadline.
        if job.deadline.is_some_and(|d| Instant::now() > d) {
            shared.stats.deadlines.inc();
            shared.stats.requests.inc();
            shared.stats.errors.inc();
            shared.stats.count_proto(job.proto);
            // An expired job still yields a span (exec stays 0) — the
            // flight recorder should show *where* the budget went.
            let trace = job.trace.map(|t| DoneTrace {
                id: t.id,
                verb: job.request.verb(),
                session: job.request.session().unwrap_or("-").to_owned(),
                read_nanos: t.read_nanos,
                parse_nanos: t.parse_nanos,
                queue_nanos: t.queued.elapsed().as_nanos() as u64,
                exec_nanos: 0,
            });
            let _ = done_tx.send(Done {
                conn: job.conn,
                seq: job.seq,
                response: deadline_response(shared),
                trace,
            });
            shared.waker.wake();
            continue;
        }
        // Queue wait ends here; the clock was only read at enqueue when
        // tracing is on, so this costs nothing by default.
        let queue_nanos = job
            .trace
            .as_ref()
            .map(|t| t.queued.elapsed().as_nanos() as u64);
        shared.stats.workers_busy.inc();
        let t0 = Instant::now();
        // Panic isolation: a panicking execution unwinds through the
        // tenant's mutex guard and poisons it — subsequent requests on that
        // session get `ERR POISONED` from the manager while every other
        // session keeps serving. The worker itself survives to take the
        // next job.
        let response = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(shared, &job.request, job.proto)
        })) {
            Ok(r) => r,
            Err(_) => {
                shared.stats.panics.inc();
                let name = job.request.session().unwrap_or("?");
                // The quarantined session will never serve again; log a
                // durable Close so crash recovery does not resurrect it
                // (replaying a Close for an unknown session is a no-op).
                if let Some(s) = job.request.session() {
                    wal_append(
                        shared,
                        s,
                        WalRecord::Close {
                            session: s.to_owned(),
                        },
                    );
                }
                Response::err(format!(
                    "POISONED session `{name}` is quarantined after a panic"
                ))
            }
        };
        let elapsed = t0.elapsed();
        shared.stats.request_seconds.observe(elapsed);
        shared.stats.workers_busy.dec();
        shared.stats.requests.inc();
        if !response.ok {
            shared.stats.errors.inc();
        }
        shared.stats.count_proto(job.proto);
        // The exec stage reuses the same measurement the worker histogram
        // records, so span exec sums and `sedex_request_seconds` agree by
        // construction.
        let trace = job.trace.map(|t| DoneTrace {
            id: t.id,
            verb: job.request.verb(),
            session: job.request.session().unwrap_or("-").to_owned(),
            read_nanos: t.read_nanos,
            parse_nanos: t.parse_nanos,
            queue_nanos: queue_nanos.unwrap_or(0),
            exec_nanos: elapsed.as_nanos() as u64,
        });
        // The reactor may have dropped the connection while the job was
        // queued; it matches `conn`/`seq` and discards stale answers.
        let _ = done_tx.send(Done {
            conn: job.conn,
            seq: job.seq,
            response,
            trace,
        });
        shared.waker.wake();
    }
}

pub(crate) fn deadline_response(shared: &Shared) -> Response {
    let ms = shared
        .request_timeout
        .map(|t| t.as_millis() as u64)
        .unwrap_or(0);
    Response::err(format!("DEADLINE request exceeded the {ms}ms budget"))
}

/// How long past its deadline the reactor keeps waiting for the worker's
/// own `ERR DEADLINE` before answering the client itself and closing the
/// connection (the worker answers expired-while-queued jobs directly,
/// which is cheaper and counted once; this grace only fires when a worker
/// is genuinely stuck executing the job).
pub(crate) const DEADLINE_REPLY_GRACE: Duration = Duration::from_millis(50);

/// Execute one request against the shared state. Pure request → response;
/// all I/O happens in the reactor thread (the cluster paths are the one
/// exception: `JOIN`/`LEAVE` fan announcements out to peers from the
/// worker). `proto` is the protocol the request arrived on — it only
/// affects the `STATS` rendering.
fn execute(shared: &Shared, request: &Request, proto: Proto) -> Response {
    if let Some(resp) = cluster_gate(shared, request) {
        return resp;
    }
    match request {
        Request::Open { session, body } => {
            // The Open record is appended while the map write lock is still
            // held, so no racing PUSH/FEED on the new session can log ahead
            // of it (their appends need the tenant, which needs the map).
            let committed = shared.manager.open_with(session, body, || {
                wal_append(
                    shared,
                    session,
                    WalRecord::Open {
                        session: session.clone(),
                        scenario: body.clone(),
                    },
                );
            });
            match committed {
                Ok(seeded) => {
                    shared.stats.opened.inc();
                    shared.notify_sweeper();
                    maybe_checkpoint(shared, session);
                    Response::ok(format!("opened {session}, seeded {seeded} tuples"))
                }
                Err(e) => Response::err(e),
            }
        }
        Request::Push { session, line } => {
            shared.stats.tuples_in.inc();
            match textfmt::parse_data_line(line, 1) {
                Err(e) => Response::err(format!("data: {}", e.message)),
                Ok((rel, tuple)) => push_parsed(shared, session, &rel, tuple),
            }
        }
        Request::PushTuple {
            session,
            relation,
            tuple,
        } => {
            shared.stats.tuples_in.inc();
            push_parsed(shared, session, relation, tuple.clone())
        }
        Request::Feed { session, line } => {
            shared.stats.tuples_in.inc();
            match textfmt::parse_data_line(line, 1) {
                Err(e) => Response::err(format!("data: {}", e.message)),
                Ok((rel, tuple)) => feed_parsed(shared, session, &rel, tuple),
            }
        }
        Request::FeedTuple {
            session,
            relation,
            tuple,
        } => {
            shared.stats.tuples_in.inc();
            feed_parsed(shared, session, relation, tuple.clone())
        }
        Request::PushBatch { session, rows } => {
            // One tenant-lock acquisition (and one SessionWork fault
            // window) for the whole batch. Rows apply in order; the first
            // failing row aborts the rest — rows before it stay applied
            // and logged, exactly as if pushed one by one.
            let durable = shared.durability.is_some();
            let total = rows.len();
            let resp = run_on_session(shared, session, "PUSH_BATCH", |t| {
                for (i, (rel, tuple)) in rows.iter().enumerate() {
                    shared.stats.tuples_in.inc();
                    t.session
                        .exchange_tuple(rel, tuple.clone())
                        .map_err(|e| format!("batch row {} of {total}: {e}", i + 1))?;
                    t.tuples_in += 1;
                    wal_append(
                        shared,
                        session,
                        WalRecord::Push {
                            session: session.clone(),
                            relation: rel.clone(),
                            tuple: tuple.clone(),
                        },
                    );
                    if durable {
                        for (key, script) in t.session.take_new_scripts() {
                            wal_append(
                                shared,
                                session,
                                WalRecord::ScriptAdd {
                                    session: session.clone(),
                                    key,
                                    script: (*script).clone(),
                                },
                            );
                        }
                    }
                }
                let r = t.session.report_snapshot();
                Ok(Response::ok(format!(
                    "pushed batch of {total} | scripts {} generated / {} reused | target {} tuples",
                    r.scripts_generated, r.scripts_reused, r.stats.tuples
                )))
            });
            if resp.ok {
                maybe_checkpoint(shared, session);
            }
            resp
        }
        Request::Flush { session } => {
            let durable = shared.durability.is_some();
            let resp = run_on_session(shared, session, "FLUSH", |t| {
                t.session.exchange_pending().map_err(|e| e.to_string())?;
                if durable {
                    for (key, script) in t.session.take_new_scripts() {
                        wal_append(
                            shared,
                            session,
                            WalRecord::ScriptAdd {
                                session: session.clone(),
                                key,
                                script: (*script).clone(),
                            },
                        );
                    }
                }
                wal_append(
                    shared,
                    session,
                    WalRecord::Flush {
                        session: session.clone(),
                    },
                );
                let r = t.session.report_snapshot();
                Ok(Response::ok_with(format!("flushed {session}"), r))
            });
            // FLUSH is the durability boundary: checkpoint the shard
            // unconditionally (snapshot + rotation + compaction). This runs
            // after the tenant lock is released — the checkpoint's export
            // locks every tenant on the shard, this one included.
            if resp.ok && durable {
                checkpoint_shard(shared, shared.manager.shard_index(session));
            }
            resp
        }
        Request::Stats { session: None } => server_stats(shared, proto),
        Request::Stats {
            session: Some(name),
        } => read_on_session(shared, name, |view| {
            // Target stats are recomputed here, on the reader — the
            // capturing writer never pays the O(n) atom walk.
            let r = view.state.snapshot.report_with_stats();
            let mut resp = Response::ok_with(format!("stats {name}"), r.verbose());
            resp.lines.push(format!(
                "service: {} requests ({} reads), {} tuples in, {} scripts cached",
                view.state.requests + view.reads,
                view.reads,
                view.state.tuples_in,
                view.state.snapshot.scripts_cached,
            ));
            resp
        }),
        Request::Sql { session } => read_on_session(shared, session, |view| {
            let sql = sql_dump_snapshot(&view.state.snapshot.target);
            Response::ok_with(format!("sql {session}"), sql.trim_end())
        }),
        Request::Metrics => {
            refresh_session_gauges(shared);
            Response::ok_with("metrics", render_prometheus(&shared.registry).trim_end())
        }
        Request::Trace { slow, k } => match &shared.recorder {
            None => Response::err(
                "tracing disabled (start the server with --trace-buffer N to record request spans)",
            ),
            Some(rec) => {
                let spans = if *slow {
                    rec.slowest(*k as usize)
                } else {
                    rec.recent(*k as usize)
                };
                let mut resp = Response::ok(format!(
                    "trace {} {} spans of {} recorded (capacity {})",
                    if *slow { "slow" } else { "recent" },
                    spans.len(),
                    rec.recorded(),
                    rec.capacity(),
                ));
                resp.lines = spans.iter().map(ReqSpan::render).collect();
                resp
            }
        },
        Request::Close { session } => {
            // The Close record is appended while the map write lock is still
            // held: a re-OPEN of the same name must take that lock first, so
            // its Open record can only land after this Close.
            let closed = shared.manager.close_with(session, || {
                wal_append(
                    shared,
                    session,
                    WalRecord::Close {
                        session: session.clone(),
                    },
                );
            });
            match closed {
                Ok((_target, report)) => {
                    shared.stats.closed.inc();
                    maybe_checkpoint(shared, session);
                    Response::ok(format!("closed {session} | {report}"))
                }
                Err(e) => Response::err(e),
            }
        }
        Request::Cluster => cluster_status(shared),
        Request::Join { node, addr } => cluster_join(shared, node, addr),
        Request::Leave { node: Some(node) } => cluster_leave_announced(shared, node),
        Request::Leave { node: None } => cluster_leave_self(shared),
        Request::Ping { node } => pong_response(shared, node),
        Request::Migrate {
            session,
            scenario,
            requests,
            tuples_in,
            state,
        } => cluster_migrate_in(shared, session, scenario, *requests, *tuples_in, state),
        Request::Repl {
            origin,
            shard,
            payload,
        } => cluster_repl_in(shared, origin, *shard, payload),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::ok("shutting down")
        }
    }
}

// --- cluster ----------------------------------------------------------

/// Ownership gate for session-addressed verbs in cluster mode. A session
/// live on this node is always served here (local wins — the ring may lag
/// a migration or failover, but the bytes are *here*); otherwise migration
/// bookkeeping and the ring decide: mid-handoff sessions answer `BUSY`
/// (clients retry transparently), sessions owned elsewhere answer
/// `ERR MOVED <node> <addr>`.
fn cluster_gate(shared: &Shared, request: &Request) -> Option<Response> {
    let cl = shared.cluster.as_ref()?;
    if !request.is_routed() {
        return None;
    }
    let name = request.session()?;
    if shared.manager.get(name).is_some() {
        return None;
    }
    match cl.state.route(name) {
        Route::Local => None,
        Route::Migrating => Some(busy_response()),
        Route::Moved(node, addr) => {
            cl.count_redirect();
            Some(Response::err(format!("MOVED {node} {addr}")))
        }
    }
}

/// Re-route a `no such session` failure that slipped past the gate (the
/// session was taken by a migration or close between the gate's check and
/// the tenant lookup). Returns the cluster answer, or `None` when the
/// miss is genuine.
fn cluster_recheck(shared: &Shared, name: &str) -> Option<Response> {
    let cl = shared.cluster.as_ref()?;
    match cl.state.route(name) {
        Route::Migrating => Some(busy_response()),
        Route::Moved(node, addr) => {
            cl.count_redirect();
            Some(Response::err(format!("MOVED {node} {addr}")))
        }
        Route::Local => None,
    }
}

/// The `CLUSTER` verb: this node's view of the ring (parseable by
/// [`HashRing::parse`] — unknown lines are ignored), standby holdings, and
/// replication progress.
fn cluster_status(shared: &Shared) -> Response {
    let Some(cl) = &shared.cluster else {
        return Response::err("not in cluster mode");
    };
    let st = &cl.state;
    let ring = st.ring.read().unwrap_or_else(|e| e.into_inner());
    let head = format!(
        "cluster node {} ring-version {} ({} nodes, {} alive)",
        st.node_id(),
        ring.version(),
        ring.len(),
        ring.alive(),
    );
    let mut lines: Vec<String> = ring.render().lines().map(str::to_owned).collect();
    drop(ring);
    {
        let standby = st.standby.lock().unwrap_or_else(|e| e.into_inner());
        let mut origins: Vec<&String> = standby.keys().collect();
        origins.sort();
        for origin in origins {
            let set = &standby[origin];
            let mut marks: Vec<(u32, u64)> = set.watermarks.iter().map(|(&s, &l)| (s, l)).collect();
            marks.sort_unstable();
            let wm = marks
                .iter()
                .map(|(s, l)| format!("{s}:{l}"))
                .collect::<Vec<_>>()
                .join(",");
            lines.push(format!(
                "standby {origin} sessions={} records={} errors={} wm={wm}",
                set.sessions.len(),
                set.records,
                set.errors,
            ));
        }
    }
    lines.push(format!(
        "repl queued={} sent={} acked={} lag={}",
        st.repl_queued(),
        st.repl_sent_total(),
        st.repl_acked_total(),
        st.repl_lag(),
    ));
    for (node, peer) in st.repl_peers_snapshot() {
        lines.push(format!(
            "repl-peer {node} shipping={} queued={} sent={} acked={} lag={}",
            peer.is_shipping(),
            peer.queued(),
            peer.sent.load(Ordering::Relaxed),
            peer.acked.load(Ordering::Relaxed),
            peer.lag(),
        ));
    }
    let heads = shard_last_lsns(shared);
    if !heads.is_empty() {
        let heads = heads
            .iter()
            .enumerate()
            .map(|(i, l)| format!("{i}:{l}"))
            .collect::<Vec<_>>()
            .join(",");
        lines.push(format!("wal-lsn {heads}"));
    }
    lines.push(format!(
        "redirects {}",
        st.redirects.load(Ordering::Relaxed)
    ));
    Response {
        ok: true,
        head,
        lines,
    }
}

/// The `PING <node>` verb. Cheap and lock-bounded by design: the reactor
/// answers pings inline (never through the worker pool), so heartbeat
/// liveness cannot be starved by a saturated or wedged pool — with one
/// worker, a single slow exchange (or two nodes' `JOIN` announcements
/// waiting on each other) would otherwise silence pongs past the failover
/// window and wedge the mesh into mutual false death declarations.
///
/// The ping itself is proof of life: a pinger this ring had declared dead
/// is revived, so a transient stall or healed partition converges back to
/// full membership instead of splitting permanently (links only connect
/// to alive peers, so without revival neither side would ever ping the
/// other again).
///
/// The pong reports this node's per-shard standby watermarks *for the
/// pinger*: the origin compares them against its own WAL heads and
/// re-ships anything missing (anti-entropy). No lines means we hold
/// nothing of its.
pub(crate) fn pong_response(shared: &Shared, node: &str) -> Response {
    let Some(cl) = &shared.cluster else {
        return Response::err("not in cluster mode");
    };
    cl.state.note_peer(node);
    let known_dead = {
        let ring = cl.state.ring.read().unwrap_or_else(|e| e.into_inner());
        ring.addr_of(node).is_some() && !ring.is_alive(node)
    };
    if known_dead {
        let revived = {
            let mut ring = cl.state.ring.write().unwrap_or_else(|e| e.into_inner());
            ring.mark_alive(node)
        };
        if revived {
            eprintln!(
                "sedex-service: node {} revived {node} (pinged after being declared dead)",
                cl.state.node_id(),
            );
        }
    }
    let mut resp = Response::ok(format!("pong {}", cl.state.node_id()));
    let standby = cl.state.standby.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(set) = standby.get(node) {
        let mut marks: Vec<(u32, u64)> = set.watermarks.iter().map(|(&s, &l)| (s, l)).collect();
        marks.sort_unstable();
        resp.lines
            .extend(marks.iter().map(|(s, l)| format!("wm {s} {l}")));
    }
    resp
}

/// A short-timeout, no-retry client for node-to-node announcements.
fn peer_client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Some(Duration::from_millis(500)),
        read_timeout: Some(Duration::from_secs(2)),
        write_timeout: Some(Duration::from_secs(2)),
        max_attempts: 1,
        binary: false,
        ..ClientConfig::default()
    }
}

/// Best-effort fire of one command at a list of peer addresses; failures
/// are logged and skipped (announcements are convergence hints, not
/// transactions — a peer that missed one learns from the next `CLUSTER`
/// fetch or redirect).
fn announce_to_peers(peers: &[(String, String)], command: &str) {
    for (node, addr) in peers {
        let sent = Client::connect_with(addr.as_str(), peer_client_config())
            .and_then(|mut c| c.request(command));
        if let Err(e) = sent {
            eprintln!("sedex-service: announce `{command}` to {node} ({addr}) failed: {e}");
        }
    }
}

/// Alive peers other than this node (and `except`), as `(node, addr)`.
fn alive_peers(state: &ClusterState, except: &str) -> Vec<(String, String)> {
    let ring = state.ring.read().unwrap_or_else(|e| e.into_inner());
    ring.nodes()
        .filter(|(id, e)| *id != state.node_id() && *id != except && e.alive)
        .map(|(id, e)| (id.to_owned(), e.addr.clone()))
        .collect()
}

/// The `JOIN <node> <addr>` verb: add the node to the ring and reply with
/// the full topology (the joiner adopts it). A *fresh* join is announced
/// to the other alive members, so a join through any one node reaches all
/// of them; repeats are idempotent and do not re-propagate. After a fresh
/// join this node also rebalances: every live local session the new ring
/// places on the joiner is handed off over the `MIGRATE` path right away,
/// so the joiner serves its share immediately instead of waiting for
/// clients to churn — and since every member runs this on its own fresh
/// observation, the whole cluster converges without a coordinator. A
/// failed handoff is logged and the session stays local (local wins:
/// the gate serves live sessions here regardless of the ring).
fn cluster_join(shared: &Shared, node: &str, addr: &str) -> Response {
    let Some(cl) = &shared.cluster else {
        return Response::err("not in cluster mode");
    };
    cl.state.note_peer(node);
    let (fresh, rendered) = {
        let mut ring = cl.state.ring.write().unwrap_or_else(|e| e.into_inner());
        let was_known = ring.addr_of(node).is_some();
        let changed = ring.join(node, addr);
        (changed && !was_known, ring.render())
    };
    if fresh {
        for (peer, peer_addr) in alive_peers(&cl.state, node) {
            announce_to_peers(&[(peer, peer_addr)], &format!("JOIN {node} {addr}"));
        }
        if node != cl.state.node_id() {
            let mut clients = std::collections::HashMap::new();
            let mut moved = 0usize;
            for name in shared.manager.names() {
                let owned_by_joiner = {
                    let ring = cl.state.ring.read().unwrap_or_else(|e| e.into_inner());
                    ring.owner(&name) == Some(node)
                };
                if !owned_by_joiner {
                    continue;
                }
                match handoff_session(shared, &cl.state, &mut clients, &name, node, addr) {
                    Ok(true) => moved += 1,
                    Ok(false) => {}
                    Err(e) => eprintln!("sedex-service: join rebalance kept `{name}`: {e}"),
                }
            }
            if moved > 0 {
                eprintln!(
                    "sedex-service: node {} rebalanced {moved} sessions to joiner {node}",
                    cl.state.node_id(),
                );
            }
        }
    }
    let mut resp = Response::ok(format!("joined {node}"));
    resp.lines = rendered.lines().map(str::to_owned).collect();
    resp
}

/// The `LEAVE <node>` announcement: a peer completed a planned leave.
/// Its points come off the ring (planned removal redistributes keys
/// per-point) and any standby state replicated from it is dropped — the
/// sessions were migrated live, the shadow copies are obsolete.
fn cluster_leave_announced(shared: &Shared, node: &str) -> Response {
    let Some(cl) = &shared.cluster else {
        return Response::err("not in cluster mode");
    };
    if node == cl.state.node_id() {
        return Response::err("use LEAVE without a node id to leave yourself");
    }
    let removed = cl
        .state
        .ring
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .remove(node);
    cl.state
        .standby
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(node);
    cl.state
        .forwarded
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .retain(|_, target| target != node);
    if removed {
        Response::ok(format!("removed {node}"))
    } else {
        Response::ok(format!("{node} was not a member"))
    }
}

/// The bare `LEAVE` verb: migrate every owned session to its new ring
/// owner, then remove this node from the ring and announce the departure.
/// The node stays up afterwards, answering `MOVED` for everything — a
/// concurrently pushing client sees `BUSY` during each session's handoff
/// window and redirects after it, never an error.
fn cluster_leave_self(shared: &Shared) -> Response {
    let Some(cl) = &shared.cluster else {
        return Response::err("not in cluster mode");
    };
    let st = &cl.state;
    let self_id = st.node_id().to_owned();
    {
        let ring = st.ring.read().unwrap_or_else(|e| e.into_inner());
        if ring
            .nodes()
            .filter(|(id, e)| **id != *self_id && e.alive)
            .count()
            == 0
        {
            return Response::err("cannot leave: no other alive node to migrate to");
        }
    }
    let mut moved = 0usize;
    let mut clients: std::collections::HashMap<String, Client> = std::collections::HashMap::new();
    for name in shared.manager.names() {
        // Resolve the post-leave owner first; abort before touching the
        // session if the ring cannot place it.
        let target = {
            let ring = st.ring.read().unwrap_or_else(|e| e.into_inner());
            match ring.owner_excluding(&name, &self_id) {
                Some(owner) => {
                    let addr = ring.addr_of(&owner).unwrap_or_default().to_owned();
                    (owner, addr)
                }
                None => return Response::err("cannot leave: ring has no successor"),
            }
        };
        let (target_node, target_addr) = &target;
        match handoff_session(shared, st, &mut clients, &name, target_node, target_addr) {
            Ok(true) => moved += 1,
            Ok(false) => continue,
            Err(e) => return Response::err(format!("leave aborted: {e}")),
        }
    }
    let peers = alive_peers(st, "");
    st.ring
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&self_id);
    st.left.store(true, Ordering::SeqCst);
    for (peer, addr) in &peers {
        announce_to_peers(&[(peer.clone(), addr.clone())], &format!("LEAVE {self_id}"));
    }
    Response::ok(format!("left, migrated {moved} sessions"))
}

/// Hand one live session to another node over the binary `MIGRATE` path:
/// mark it migrating (requests answer `BUSY` meanwhile), take it out of
/// the manager (WAL-logging the local `Close`), export its state and ship
/// it. On success the session is forwarded; on failure it is reinstalled
/// and the error describes why. `Ok(false)` means a racing close or
/// eviction got there first — nothing to move. Clients are cached per
/// target address so a multi-session handoff dials each receiver once.
fn handoff_session(
    shared: &Shared,
    st: &ClusterState,
    clients: &mut std::collections::HashMap<String, Client>,
    name: &str,
    target_node: &str,
    target_addr: &str,
) -> Result<bool, String> {
    st.migrating
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(name.to_owned());
    let taken = shared.manager.take(name, || {
        wal_append(
            shared,
            name,
            WalRecord::Close {
                session: name.to_owned(),
            },
        );
    });
    let (scenario, requests, tuples_in, session) = match taken {
        Ok(parts) => parts,
        Err(e) => {
            // Raced a CLOSE/eviction: nothing to migrate.
            st.migrating
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .remove(name);
            eprintln!("sedex-service: handoff skipped `{name}`: {e}");
            return Ok(false);
        }
    };
    let mut state_writer = ByteWriter::new();
    encode_session_state(&mut state_writer, &session.export_state());
    let state_bytes = state_writer.into_bytes();
    let shipped = match clients.entry(target_addr.to_owned()) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(v) => {
            match Client::connect_with(
                target_addr,
                ClientConfig {
                    binary: true,
                    ..peer_client_config()
                },
            ) {
                Ok(c) => v.insert(c),
                Err(e) => {
                    reinstall_after_failed_handoff(
                        shared, name, scenario, session, requests, tuples_in,
                    );
                    return Err(format!("cannot reach {target_node} ({target_addr}): {e}"));
                }
            }
        }
    };
    match shipped.migrate(name, &scenario, requests, tuples_in, &state_bytes) {
        Ok(reply) if reply.ok => {
            st.forwarded
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(name.to_owned(), target_node.to_owned());
            st.migrating
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(name);
            Ok(true)
        }
        Ok(reply) => {
            reinstall_after_failed_handoff(shared, name, scenario, session, requests, tuples_in);
            Err(format!("{target_node} refused `{name}`: {}", reply.head))
        }
        Err(e) => {
            reinstall_after_failed_handoff(shared, name, scenario, session, requests, tuples_in);
            Err(format!("handoff of `{name}` to {target_node} failed: {e}"))
        }
    }
}

/// Undo a half-done handoff: put the taken session back and clear the
/// migrating mark, so the leave aborts cleanly with the session serving.
fn reinstall_after_failed_handoff(
    shared: &Shared,
    name: &str,
    scenario: String,
    session: sedex_core::SedexSession,
    requests: u64,
    tuples_in: u64,
) {
    if let Err(e) = shared
        .manager
        .install(name, scenario, session, requests, tuples_in)
    {
        eprintln!("sedex-service: failed to reinstall `{name}` after aborted leave: {e}");
    }
    if let Some(cl) = &shared.cluster {
        cl.state
            .migrating
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name);
    }
}

/// The binary-only `MIGRATE` frame: install a session another node
/// exported. The state is decoded and restored wholesale, then the shard
/// is checkpointed *before* the OK goes out — the origin forgets the
/// session on our acknowledgement, so it must be durable here first
/// (when durability is on at all).
fn cluster_migrate_in(
    shared: &Shared,
    session: &str,
    scenario: &str,
    requests: u64,
    tuples_in: u64,
    state: &[u8],
) -> Response {
    if shared.cluster.is_none() {
        return Response::err("not in cluster mode");
    }
    let mut r = ByteReader::new(state);
    let decoded = match decode_session_state(&mut r) {
        Ok(s) => s,
        Err(e) => return Response::err(format!("migrate: bad state payload: {e:?}")),
    };
    if let Err(e) =
        shared
            .manager
            .install_restored(session, scenario, decoded, requests, tuples_in, || ())
    {
        return Response::err(format!("migrate: {e}"));
    }
    // Log the inheritance as a WAL record of its own: crash recovery *and*
    // this node's replication followers must see the session arrive, not
    // just the next snapshot.
    wal_append(
        shared,
        session,
        WalRecord::Install {
            session: session.to_owned(),
            scenario: scenario.to_owned(),
            requests,
            tuples_in,
            state: state.to_vec(),
        },
    );
    shared.stats.opened.inc();
    shared.notify_sweeper();
    checkpoint_shard(shared, shared.manager.shard_index(session));
    Response::ok(format!("migrated in {session}"))
}

/// The binary-only `REPL` frame: apply one replicated WAL record to the
/// origin's standby set. Replication traffic doubles as a life sign.
///
/// A gapped frame (an earlier one was lost in flight) answers `OK` too:
/// tearing the link down would only re-ship the same stream, while the
/// `OK` keeps the origin's ack bookkeeping consistent so its anti-entropy
/// pass — which compares our pong-reported watermarks against its WAL
/// heads — can heal the hole without a reconnect.
fn cluster_repl_in(shared: &Shared, origin: &str, shard: u32, payload: &[u8]) -> Response {
    let Some(cl) = &shared.cluster else {
        return Response::err("not in cluster mode");
    };
    cl.state.note_peer(origin);
    let mut standby = cl.state.standby.lock().unwrap_or_else(|e| e.into_inner());
    let set = standby.entry(origin.to_owned()).or_default();
    match set.apply(
        &shared.session_config,
        shared.observer.as_ref(),
        shard,
        payload,
    ) {
        Ok(Applied::Applied) => Response::ok("ack"),
        Ok(Applied::Duplicate) => Response::ok("ack duplicate"),
        Ok(Applied::Gap { expected, got }) => {
            Response::ok(format!("ack gap expected={expected} got={got}"))
        }
        Err(e) => Response::err(format!("repl: {e}")),
    }
}

/// Read every retained WAL segment of every shard into replication
/// frames, oldest generation first — the catch-up stream a (re)connected
/// replication link starts with. The standby's per-shard watermarks
/// deduplicate whatever it already has.
pub(crate) fn repl_catchup_frames(shared: &Shared) -> Vec<ReplFrame> {
    let Some(dir) = &shared.data_dir else {
        return Vec::new();
    };
    let mut frames = Vec::new();
    for idx in 0..shared.manager.shard_count() {
        let shard_dir = dir.join(format!("shard-{idx}"));
        let Ok(segments) = list_segments(&shard_dir) else {
            continue;
        };
        for (_generation, path) in segments {
            let Ok(seg) = read_segment(&path) else {
                continue;
            };
            frames.extend(seg.payloads.into_iter().map(|payload| ReplFrame {
                shard: idx as u32,
                payload,
            }));
        }
    }
    frames
}

/// Handle a peer the failure detector declared dead: mark it dead on the
/// ring (its points stay — every key it owned now routes to its designated
/// successor) and retire its replication queue. With full-mesh heartbeats
/// *every* node observes the silence and runs this, so origins shipping to
/// the dead node re-target their followers on the next tick; only the dead
/// node's designated successor additionally promotes its standby —
/// installing the shadow sessions, WAL-logging each as an `Install` so the
/// inheritance reaches crash recovery and this node's own followers, and
/// checkpointing so the state is durable under this node's shards. Runs on
/// the reactor thread, from the failure detector.
pub(crate) fn promote_dead_peer(shared: &Shared, dead: &str) {
    let Some(cl) = &shared.cluster else {
        return;
    };
    let heir = {
        let mut ring = cl.state.ring.write().unwrap_or_else(|e| e.into_inner());
        ring.mark_dead(dead);
        ring.successor(dead) == Some(cl.state.node_id())
    };
    cl.state.retire_repl_peer(dead);
    if !heir {
        eprintln!(
            "sedex-service: node {} declared {dead} dead after {:?} silence (successor promotes)",
            cl.state.node_id(),
            cl.state.config.failover,
        );
        return;
    }
    let set = cl
        .state
        .standby
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(dead);
    let mut installed = 0usize;
    if let Some(set) = set {
        for (_, rs) in set.sessions {
            let mut state_writer = ByteWriter::new();
            encode_session_state(&mut state_writer, &rs.session.export_state());
            let state_bytes = state_writer.into_bytes();
            match shared.manager.install(
                &rs.name,
                rs.scenario.clone(),
                rs.session,
                rs.requests,
                rs.tuples_in,
            ) {
                Ok(()) => {
                    wal_append(
                        shared,
                        &rs.name,
                        WalRecord::Install {
                            session: rs.name.clone(),
                            scenario: rs.scenario,
                            requests: rs.requests,
                            tuples_in: rs.tuples_in,
                            state: state_bytes,
                        },
                    );
                    shared.stats.opened.inc();
                    installed += 1;
                }
                Err(e) => eprintln!("sedex-service: promotion skipped `{}`: {e}", rs.name),
            }
        }
    }
    if installed > 0 {
        shared.notify_sweeper();
        for idx in 0..shared.manager.shard_count() {
            checkpoint_shard(shared, idx);
        }
    }
    eprintln!(
        "sedex-service: node {} declared {dead} dead after {:?} silence; promoted {installed} standby sessions",
        cl.state.node_id(),
        cl.state.config.failover,
    );
}

/// Announce this node to its configured seed peers and adopt the topology
/// they reply with. Runs at startup, blocking briefly; a peer that is not
/// up yet is retried a few times and then skipped (it can still join *us*
/// later — joins are symmetric in effect).
fn cluster_startup_join(shared: &Arc<Shared>) {
    let Some(cl) = &shared.cluster else {
        return;
    };
    let peers = cl.state.config.peers.clone();
    if peers.is_empty() {
        return;
    }
    let self_id = cl.state.node_id().to_owned();
    let advertise = cl.state.config.advertise.clone();
    for peer in &peers {
        let mut joined = false;
        for _ in 0..5 {
            let reply = Client::connect_with(peer.as_str(), peer_client_config())
                .and_then(|mut c| c.request(&format!("JOIN {self_id} {advertise}")));
            match reply {
                Ok(reply) if reply.ok => {
                    match HashRing::parse(&reply.body()) {
                        Ok(theirs) => {
                            cl.state
                                .ring
                                .write()
                                .unwrap_or_else(|e| e.into_inner())
                                .adopt_if_newer(theirs);
                        }
                        Err(e) => {
                            eprintln!("sedex-service: join reply from {peer} did not parse: {e}")
                        }
                    }
                    joined = true;
                    break;
                }
                Ok(reply) => {
                    eprintln!("sedex-service: join via {peer} refused: {}", reply.head);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(200)),
            }
        }
        if !joined {
            eprintln!("sedex-service: could not join via {peer} (it can still join us later)");
        }
    }
}

/// The shared tail of `PUSH` (text) and the binary tuple/batch pushes:
/// exchange one already-parsed tuple on the session, WAL-logging the push
/// and any new scripts while the tenant lock is held.
fn push_parsed(shared: &Shared, session: &str, rel: &str, tuple: Tuple) -> Response {
    let durable = shared.durability.is_some();
    let resp = run_on_session(shared, session, "PUSH", |t| {
        t.session
            .exchange_tuple(rel, tuple.clone())
            .map_err(|e| e.to_string())?;
        t.tuples_in += 1;
        // Log while the tenant lock is still held (durable mutex
        // innermost): this session's records land in application order.
        wal_append(
            shared,
            session,
            WalRecord::Push {
                session: session.to_owned(),
                relation: rel.to_owned(),
                tuple,
            },
        );
        if durable {
            for (key, script) in t.session.take_new_scripts() {
                wal_append(
                    shared,
                    session,
                    WalRecord::ScriptAdd {
                        session: session.to_owned(),
                        key,
                        script: (*script).clone(),
                    },
                );
            }
        }
        let r = t.session.report_snapshot();
        Ok(Response::ok(format!(
            "pushed {rel} | scripts {} generated / {} reused | target {} tuples",
            r.scripts_generated, r.scripts_reused, r.stats.tuples
        )))
    });
    if resp.ok {
        maybe_checkpoint(shared, session);
    }
    resp
}

/// The shared tail of `FEED` (text) and the binary tuple feed.
fn feed_parsed(shared: &Shared, session: &str, rel: &str, tuple: Tuple) -> Response {
    let resp = run_on_session(shared, session, "FEED", |t| {
        t.session
            .feed(rel, tuple.clone())
            .map_err(|e| e.to_string())?;
        t.tuples_in += 1;
        wal_append(
            shared,
            session,
            WalRecord::Feed {
                session: session.to_owned(),
                relation: rel.to_owned(),
                tuple,
            },
        );
        Ok(Response::ok(format!("fed {rel}")))
    });
    if resp.ok {
        maybe_checkpoint(shared, session);
    }
    resp
}

fn run_on_session(
    shared: &Shared,
    name: &str,
    verb: &'static str,
    f: impl FnOnce(&mut crate::manager::Tenant) -> Result<Response, String>,
) -> Response {
    let faults = shared.faults.clone();
    match shared.manager.with_tenant(name, move |t| {
        // Stamp the driving verb so a slow-exchange record fired inside
        // this request names it (`slow_exchange … session=… verb=…`).
        t.session.set_verb(Some(verb));
        // The session-work fault point fires while the tenant mutex is
        // held: an injected Panic unwinds through the guard and poisons
        // exactly this session; injected Latency makes this a slow request
        // (deadline/shedding tests); injected errors fail the request.
        match faults
            .as_ref()
            .and_then(|p| p.fire(FaultPoint::SessionWork))
        {
            Some(FaultKind::Error(kind)) => {
                return Err(format!("injected fault at session_work: {kind}"))
            }
            Some(FaultKind::ShortWrite) => {
                return Err("injected short write at session_work".to_owned())
            }
            _ => {}
        }
        f(t)
    }) {
        Ok(Ok(resp)) => resp,
        Ok(Err(e)) | Err(e) => {
            // In cluster mode a lookup miss may mean "taken by a migration
            // or failover between the ownership gate and here" — re-check
            // so the race window answers BUSY/MOVED, never a spurious
            // `no such session`.
            if e.contains("no such session") {
                if let Some(resp) = cluster_recheck(shared, name) {
                    return resp;
                }
            }
            Response::err(e)
        }
    }
}

/// The MVCC read path: resolve the session, clone its published
/// batch-boundary snapshot, and render with `f` — the tenant mutex is
/// never taken, so a reader neither queues behind a slow exchange nor
/// delays one. The same cluster re-check as [`run_on_session`] keeps a
/// mid-migration lookup miss answering `BUSY`/`MOVED` instead of a
/// spurious `no such session`.
fn read_on_session(
    shared: &Shared,
    name: &str,
    f: impl FnOnce(&crate::manager::ReadView) -> Response,
) -> Response {
    match shared.manager.read_view(name) {
        Ok(view) => f(&view),
        Err(e) => {
            if e.contains("no such session") {
                if let Some(resp) = cluster_recheck(shared, name) {
                    return resp;
                }
            }
            Response::err(e)
        }
    }
}

/// Recover whatever `data_dir` holds, install the sessions into the
/// manager, and open one [`DurableShard`] per manager shard, continuing
/// each directory's generation/LSN sequence.
fn init_durability(
    data_dir: &std::path::Path,
    cfg: &ServerConfig,
    session_config: &SedexConfig,
    observer: Option<&Arc<dyn Observer>>,
    registry: &MetricsRegistry,
    manager: &SessionManager,
) -> std::io::Result<Durability> {
    std::fs::create_dir_all(data_dir)?;
    let metrics = Arc::new(DurableMetrics::new(registry));
    let mut recovered_sessions = 0u64;
    let mut replayed_records = 0u64;
    let mut torn_tails = 0u64;
    let mut reports: std::collections::HashMap<u64, sedex_durable::RecoveryReport> =
        std::collections::HashMap::new();
    for (idx, sessions, report) in recover_data_dir(data_dir, session_config, observer)? {
        metrics.record_recovery(sessions.len(), &report);
        recovered_sessions += sessions.len() as u64;
        replayed_records += report.records_replayed;
        torn_tails += report.torn_tails as u64;
        for rs in sessions {
            // A duplicate across shard directories can only arise from a
            // shard-count change combined with a corrupt newest snapshot;
            // keep the first copy and say so rather than failing startup.
            if let Err(e) =
                manager.install(&rs.name, rs.scenario, rs.session, rs.requests, rs.tuples_in)
            {
                eprintln!("sedex-service: recovery skipped a duplicate: {e}");
            }
        }
        reports.insert(idx, report);
    }
    let shards = (0..manager.shard_count())
        .map(|i| {
            let report = reports.remove(&(i as u64)).unwrap_or_default();
            DurableShard::open(
                data_dir.join(format!("shard-{i}")),
                cfg.fsync,
                &report,
                Some(Arc::clone(&metrics)),
            )
            .map(|s| Mutex::new(s.with_fault_plan(cfg.fault_plan.clone())))
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    Ok(Durability {
        shards,
        metrics,
        snapshot_every: cfg.snapshot_every,
        recovered_sessions,
        replayed_records,
        torn_tails,
        finalized: AtomicBool::new(false),
        skip_final_checkpoint: AtomicBool::new(false),
    })
}

/// Drop `shard-<i>` directories with `i >= live` — leftovers from a run
/// with more shards. Safe only after the startup checkpoint re-persisted
/// every recovered session under the current mapping.
fn remove_stale_shard_dirs(data_dir: &std::path::Path, live: usize) {
    let Ok(entries) = std::fs::read_dir(data_dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(idx) = name
            .to_string_lossy()
            .strip_prefix("shard-")
            .and_then(|n| n.parse::<usize>().ok())
        else {
            continue;
        };
        if idx >= live && entry.path().is_dir() {
            let _ = std::fs::remove_dir_all(entry.path());
        }
    }
}

/// Append one record to the session's durable shard (no-op without a data
/// dir). Called while holding the lock that serialized the operation (the
/// tenant mutex, or the shard-map write lock for open/close/evict), with
/// the durable-shard mutex as the innermost lock — see `Durability`. An
/// append failure is non-fatal: the in-memory state is already applied and
/// the client is served — availability over strict durability — but it is
/// counted (`sedex_wal_append_errors_total`) and flags the `STATS`
/// durability line as DEGRADED, since a crash would lose the operation.
fn wal_append(shared: &Shared, session: &str, record: WalRecord) {
    let Some(d) = &shared.durability else {
        return;
    };
    let idx = shared.manager.shard_index(session);
    let mut shard = lock_durable(&d.shards[idx]);
    match shard.append(&record) {
        Err(e) => eprintln!("sedex-service: WAL append failed on shard {idx}: {e}"),
        Ok(lsn) => {
            // Replication rides the WAL: every appended record fans out to
            // each follower whose link is up — still under the
            // durable-shard lock, so every queue preserves this shard's
            // LSN order. A follower whose link is down gets *nothing*
            // queued; its next (re)connect catches up from disk, which
            // this append just reached.
            if let Some(cl) = &shared.cluster {
                cl.state.repl_fanout(idx as u32, || record.encode(lsn));
            }
        }
    }
}

/// The highest LSN appended to each durable shard — the heads the
/// anti-entropy pass compares follower watermarks against. Empty without
/// durability (nothing to replicate then either).
pub(crate) fn shard_last_lsns(shared: &Shared) -> Vec<u64> {
    let Some(d) = &shared.durability else {
        return Vec::new();
    };
    d.shards
        .iter()
        .map(|s| lock_durable(s).last_lsn())
        .collect()
}

/// Lock a durable shard, tolerating poisoning: an injected (or real) panic
/// mid-append leaves at worst a torn frame, which the WAL format already
/// treats as a crash artifact — refusing all further durability because of
/// it would turn one bad record into a durability outage.
fn lock_durable(shard: &Mutex<DurableShard>) -> MutexGuard<'_, DurableShard> {
    shard.lock().unwrap_or_else(|p| p.into_inner())
}

/// Checkpoint the session's shard if it has accumulated `--snapshot-every`
/// records since the last one (`0` disables the size trigger).
fn maybe_checkpoint(shared: &Shared, session: &str) {
    let Some(d) = &shared.durability else {
        return;
    };
    if d.snapshot_every == 0 {
        return;
    }
    let idx = shared.manager.shard_index(session);
    let due = lock_durable(&d.shards[idx]).records_since_checkpoint() >= d.snapshot_every;
    if due {
        checkpoint_shard(shared, idx);
    }
}

/// Snapshot every session on manager shard `idx` and rotate its WAL.
///
/// Watermark first, export second: every record with `lsn ≤ watermark`
/// was appended — and, since appends happen under the lock that applied
/// the operation, *applied* — before the capture, so the export below is
/// guaranteed to contain its effect. A record landing between capture and
/// export carries `lsn > watermark` and is re-replayed idempotently at
/// recovery: the conservatively early watermark costs redo, never data.
/// No lock is held across phases — see `Durability` for the lock order.
pub(crate) fn checkpoint_shard(shared: &Shared, idx: usize) {
    let Some(d) = &shared.durability else {
        return;
    };
    let watermark = lock_durable(&d.shards[idx]).last_lsn();
    let export = shared.manager.export_shard(idx);
    if export.skipped_poisoned > 0 {
        // A poisoned tenant cannot be exported, so this checkpoint omits
        // it: count every omission so STATS can flag durability DEGRADED
        // (recovery will fall back to WAL replay for those sessions).
        shared
            .stats
            .snapshot_skips
            .add(export.skipped_poisoned as u64);
    }
    let sessions: Vec<SessionSnapshot> = export
        .sessions
        .into_iter()
        .map(
            |(name, scenario, requests, tuples_in, state)| SessionSnapshot {
                name,
                scenario,
                requests,
                tuples_in,
                state,
            },
        )
        .collect();
    let mut shard = lock_durable(&d.shards[idx]);
    if let Err(e) = shard.checkpoint(watermark, sessions) {
        eprintln!("sedex-service: checkpoint failed on shard {idx}: {e}");
    }
}

/// Final flush at clean shutdown: checkpoint every shard and fsync, once.
/// Skipped after [`ServerHandle::abort`] (the simulated crash).
fn finalize_durability(shared: &Shared) {
    let Some(d) = &shared.durability else {
        return;
    };
    if d.skip_final_checkpoint.load(Ordering::SeqCst) || d.finalized.swap(true, Ordering::SeqCst) {
        return;
    }
    for idx in 0..d.shards.len() {
        checkpoint_shard(shared, idx);
        let mut shard = lock_durable(&d.shards[idx]);
        if let Err(e) = shard.sync() {
            eprintln!("sedex-service: final fsync failed on shard {idx}: {e}");
        }
    }
}

/// Refresh the point-in-time session gauges (`sedex_sessions_live` per
/// shard) from the manager — done at render time, since live-session
/// counts are derived state, not event streams.
fn refresh_session_gauges(shared: &Shared) {
    for (i, n) in shared.manager.shard_sizes().into_iter().enumerate() {
        let shard = i.to_string();
        shared
            .registry
            .gauge_with(
                "sedex_sessions_live",
                "Live sessions per shard",
                &[("shard", &shard)],
            )
            .set(n as i64);
    }
    if let Some(plan) = &shared.faults {
        for point in FaultPoint::ALL {
            shared
                .registry
                .gauge_with(
                    "sedex_faults_injected",
                    "Injected faults per fault point (chaos testing)",
                    &[("point", point.name())],
                )
                .set(plan.injected(point) as i64);
        }
    }
    if let Some(cl) = &shared.cluster {
        cl.repl_lag.set(cl.state.repl_lag() as i64);
        cl.ring_version.set(
            cl.state
                .ring
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .version() as i64,
        );
    }
}

fn server_stats(shared: &Shared, proto: Proto) -> Response {
    let s = &shared.stats;
    let shard_sizes = shared.manager.shard_sizes();
    let head = format!(
        "server up {:?} | {} sessions | {} requests, {} tuples in, {} errors",
        shared.started.elapsed(),
        shared.manager.len(),
        s.requests.get(),
        s.tuples_in.get(),
        s.errors.get(),
    );
    let mut lines = vec![format!(
        "sessions: {} opened, {} closed, {} evicted | connections: {}",
        s.opened.get(),
        s.closed.get(),
        s.evicted.get(),
        s.connections.get(),
    )];
    lines.push(format!(
        "protocols: text {} requests, binary {} requests | open connections: {} | this connection: {}",
        s.proto_text.get(),
        s.proto_binary.get(),
        s.open_conns.get().max(0),
        proto.name(),
    ));
    lines.push(format!(
        "load: queue depth {}, busy workers {}/{} | sessions/shard: [{}]",
        s.queue_depth.get().max(0),
        s.workers_busy.get().max(0),
        shared.workers,
        shard_sizes
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(" "),
    ));
    lines.push(format!(
        "latency: p50 {:?}, p90 {:?}, p99 {:?} over {} requests",
        s.request_seconds.quantile(0.5),
        s.request_seconds.quantile(0.9),
        s.request_seconds.quantile(0.99),
        s.request_seconds.count(),
    ));
    let tracing = match &shared.recorder {
        Some(rec) => format!(
            "tracing on (buffer {}, {} spans recorded)",
            rec.capacity(),
            rec.recorded()
        ),
        None => "tracing off".to_owned(),
    };
    lines.push(format!(
        "reactor: {} polls ({} wakeups, {} events), {} backpressure parks | highwater: rbuf {}B, wbuf {}B, pipeline {} | {}",
        s.reactor_polls.get(),
        s.reactor_wakeups.get(),
        s.reactor_events.get(),
        s.reactor_parks.get(),
        s.reactor_rbuf_hw.get().max(0),
        s.reactor_wbuf_hw.get().max(0),
        s.reactor_pipeline_hw.get().max(0),
        tracing,
    ));
    let mut robustness = format!(
        "robustness: {} deadline timeouts, {} shed, {} panics",
        s.deadlines.get(),
        s.shed.get(),
        s.panics.get(),
    );
    if let Some(plan) = &shared.faults {
        robustness.push_str(&format!(" | faults injected: {}", plan.injected_total()));
    }
    lines.push(robustness);
    if let Some(d) = &shared.durability {
        let mut line = format!(
            "durability: {} wal appends ({} bytes), {} checkpoints | recovered: {} sessions, {} records replayed, {} torn tails",
            d.metrics.wal_appends.get(),
            d.metrics.wal_bytes.get(),
            d.metrics.checkpoints.get(),
            d.recovered_sessions,
            d.replayed_records,
            d.torn_tails,
        );
        let append_errors = d.metrics.wal_append_errors.get();
        if append_errors > 0 {
            // Acked operations exist whose records never reached the log —
            // a crash from here would lose them.
            line.push_str(&format!(" | DEGRADED: {append_errors} wal append errors"));
        }
        let snapshot_skips = s.snapshot_skips.get();
        if snapshot_skips > 0 {
            // Checkpoints omitted poisoned sessions: recovery of those
            // sessions depends entirely on WAL replay from the last good
            // snapshot, so flag the gap rather than hide it.
            line.push_str(&format!(
                " | DEGRADED: {snapshot_skips} sessions skipped by checkpoints"
            ));
        }
        lines.push(line);
    }
    if let Some(cl) = &shared.cluster {
        let ring = cl.state.ring.read().unwrap_or_else(|e| e.into_inner());
        lines.push(format!(
            "cluster: node {} | ring version {}, {} nodes ({} alive) | {} redirects | repl lag {}",
            cl.state.node_id(),
            ring.version(),
            ring.len(),
            ring.alive(),
            cl.redirects.get(),
            cl.state.repl_lag(),
        ));
    }
    // Published snapshots, not the tenant mutex: a slow exchange on one
    // session must not stall the whole server-stats render.
    for name in shared.manager.names() {
        if let Ok(view) = shared.manager.read_view(&name) {
            lines.push(format!(
                "{name}: {}",
                view.state.snapshot.report_with_stats()
            ));
        }
    }
    Response {
        ok: true,
        head,
        lines,
    }
}

/// Render a target instance as SQL `INSERT` statements (sorted by relation
/// name for stable output).
pub fn sql_dump(instance: &Instance) -> String {
    let mut rels: Vec<(&str, _)> = instance.relations().collect();
    rels.sort_by_key(|(name, _)| name.to_owned());
    let mut out = String::new();
    for (name, rel) in rels {
        let cols: Vec<&str> = rel
            .schema()
            .columns
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        for tuple in rel.iter() {
            let vals: Vec<String> = tuple.values().iter().map(sql_literal).collect();
            out.push_str(&format!(
                "INSERT INTO {} ({}) VALUES ({});\n",
                name,
                cols.join(", "),
                vals.join(", ")
            ));
        }
    }
    out
}

/// [`sql_dump`] over a captured [`InstanceSnapshot`] — byte-identical
/// output for identical contents, so a snapshot read renders exactly what
/// a locked read of the same batch boundary would have.
pub fn sql_dump_snapshot(snap: &InstanceSnapshot) -> String {
    let mut rels: Vec<_> = snap.relations().collect();
    rels.sort_by_key(|(name, _)| name.to_owned());
    let mut out = String::new();
    for (name, rows) in rels {
        let cols: Vec<&str> = snap
            .schema()
            .relation(name)
            .map(|r| r.columns.iter().map(|c| c.name.as_str()).collect())
            .unwrap_or_default();
        for tuple in rows.iter() {
            let vals: Vec<String> = tuple.values().iter().map(sql_literal).collect();
            out.push_str(&format!(
                "INSERT INTO {} ({}) VALUES ({});\n",
                name,
                cols.join(", "),
                vals.join(", ")
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::{ConflictPolicy, RelationSchema, Schema};

    #[test]
    fn sql_dump_renders_sorted_inserts() {
        let b = RelationSchema::with_any_columns("B", &["x"]);
        let a = RelationSchema::with_any_columns("A", &["y", "z"]);
        let schema = Schema::from_relations(vec![b, a]).unwrap();
        let mut inst = Instance::new(schema);
        inst.insert("B", sedex_storage::tuple!["v"], ConflictPolicy::Reject)
            .unwrap();
        inst.insert("A", sedex_storage::tuple!["p", "q"], ConflictPolicy::Reject)
            .unwrap();
        let sql = sql_dump(&inst);
        assert_eq!(
            sql,
            "INSERT INTO A (y, z) VALUES ('p', 'q');\nINSERT INTO B (x) VALUES ('v');\n"
        );
    }
}
