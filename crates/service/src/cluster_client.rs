//! Cluster-aware client: routes each session-addressed request straight to
//! its owner node.
//!
//! The client bootstraps a [`HashRing`] snapshot from any seed node's
//! `CLUSTER` dump and from then on resolves `session → node` locally — the
//! common case is zero extra round-trips. Staleness is self-correcting:
//!
//! * an `ERR MOVED <node> <addr>` redirect refreshes the topology from the
//!   named owner and retries there (bounded hops, so two nodes with
//!   irreconcilable views cannot bounce a request forever);
//! * a transport error marks the node dead in the local snapshot and
//!   retries against its successor — the same designated-successor order
//!   the server's failure detector promotes, so the retry lands exactly
//!   where the sessions will reappear — until the failover window closes.
//!
//! Every redirect and failover decision is appended to an event log
//! ([`ClusterClient::events`]); with a fixed placement seed the sequence
//! is deterministic, which is what the chaos tests assert.

use std::collections::HashMap;
use std::io;
use std::time::{Duration, Instant};

use sedex_cluster::HashRing;

use crate::client::{Client, ClientConfig, Reply};

/// How a [`ClusterClient`] finds and keeps connections to owner nodes.
#[derive(Debug, Clone)]
pub struct ClusterClientConfig {
    /// Per-connection client configuration (protocol, timeouts, retries).
    pub client: ClientConfig,
    /// Most `MOVED` redirects followed for a single request.
    pub max_hops: u32,
    /// How long a request keeps failing over to successors before the
    /// transport error is surfaced. Must comfortably exceed the cluster's
    /// failover timeout, or the client gives up before promotion happens.
    pub failover_window: Duration,
    /// Pause between failover retries against the successor.
    pub retry_pause: Duration,
}

impl Default for ClusterClientConfig {
    fn default() -> Self {
        ClusterClientConfig {
            client: ClientConfig::default(),
            max_hops: 4,
            failover_window: Duration::from_secs(10),
            retry_pause: Duration::from_millis(100),
        }
    }
}

/// A client that speaks to a whole cluster instead of one node.
pub struct ClusterClient {
    cfg: ClusterClientConfig,
    ring: HashRing,
    /// Live connections, by advertised address.
    conns: HashMap<String, Client>,
    /// Ordered routing decisions: `redirect`, `failover`, and `refresh`
    /// events, for determinism assertions and debugging.
    events: Vec<String>,
}

impl ClusterClient {
    /// Bootstrap from any reachable node.
    pub fn connect(seed: &str) -> io::Result<ClusterClient> {
        ClusterClient::connect_with(seed, ClusterClientConfig::default())
    }

    /// Bootstrap from any reachable node with explicit configuration.
    pub fn connect_with(seed: &str, cfg: ClusterClientConfig) -> io::Result<ClusterClient> {
        let mut cc = ClusterClient {
            cfg,
            ring: HashRing::new(sedex_cluster::DEFAULT_SEED, sedex_cluster::DEFAULT_VNODES),
            conns: HashMap::new(),
            events: Vec::new(),
        };
        cc.refresh_from(seed)?;
        Ok(cc)
    }

    /// The routing decisions taken so far, in order.
    pub fn events(&self) -> &[String] {
        &self.events
    }

    /// The topology version the client is currently routing on.
    pub fn ring_version(&self) -> u64 {
        self.ring.version()
    }

    /// The node a session would be sent to right now.
    pub fn owner_of(&self, session: &str) -> Option<&str> {
        self.ring.owner(session)
    }

    /// Re-pull the topology from `addr` and adopt it if newer.
    pub fn refresh_from(&mut self, addr: &str) -> io::Result<()> {
        let reply = self.conn(addr)?.cluster()?;
        if !reply.ok {
            self.conns.remove(addr);
            return Err(io::Error::new(io::ErrorKind::InvalidData, reply.head));
        }
        let ring = HashRing::parse(&reply.body())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let version = ring.version();
        if self.ring.adopt_if_newer(ring) {
            self.events.push(format!("refresh version={version}"));
        }
        Ok(())
    }

    /// `OPEN` on the session's owner.
    pub fn open(&mut self, session: &str, scenario: &str) -> io::Result<Reply> {
        let scenario = scenario.to_owned();
        self.routed(session, move |c, s| c.open(s, &scenario))
    }

    /// `PUSH` one data line on the session's owner.
    pub fn push(&mut self, session: &str, data_line: &str) -> io::Result<Reply> {
        let data = data_line.to_owned();
        self.routed(session, move |c, s| c.push(s, &data))
    }

    /// `FEED` one data line on the session's owner.
    pub fn feed(&mut self, session: &str, data_line: &str) -> io::Result<Reply> {
        let data = data_line.to_owned();
        self.routed(session, move |c, s| c.feed(s, &data))
    }

    /// `SQL` dump from the session's owner.
    pub fn sql(&mut self, session: &str) -> io::Result<Reply> {
        self.routed(session, |c, s| c.sql(s))
    }

    /// `STATS` for a session, answered by its owner.
    pub fn stats(&mut self, session: &str) -> io::Result<Reply> {
        self.routed(session, |c, s| c.stats(Some(s)))
    }

    /// `CLOSE` on the session's owner.
    pub fn close(&mut self, session: &str) -> io::Result<Reply> {
        self.routed(session, |c, s| c.close(s))
    }

    /// Route one request: resolve locally, follow `MOVED`, fail over past
    /// dead nodes until the window closes.
    fn routed(
        &mut self,
        session: &str,
        op: impl Fn(&mut Client, &str) -> io::Result<Reply>,
    ) -> io::Result<Reply> {
        let deadline = Instant::now() + self.cfg.failover_window;
        let mut hops = 0u32;
        // A redirect names where the session actually is; the next attempt
        // goes *there*, not back through the local ring — mid-migration both
        // rings may still name the old owner, which would ping-pong.
        let mut redirected: Option<(String, String)> = None;
        loop {
            let Some((owner, addr)) = redirected.take().or_else(|| self.resolve(session)) else {
                return Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "no alive node in the cluster snapshot",
                ));
            };
            let outcome = match self.conn(&addr) {
                Ok(c) => op(c, session),
                Err(e) => Err(e),
            };
            match outcome {
                Ok(reply) => {
                    if let Some((node, node_addr)) = parse_moved(&reply.head) {
                        let known_dead =
                            self.ring.addr_of(&node).is_some() && !self.ring.is_alive(&node);
                        if known_dead {
                            // Stale redirect: the replier hasn't noticed the
                            // death this client already observed. Joining
                            // would revive the corpse in our snapshot —
                            // wait for the replier's failure detector to
                            // promote instead, bounded by the window.
                            self.events
                                .push(format!("stale-redirect session={session} to={node}"));
                            if Instant::now() >= deadline {
                                return Ok(reply);
                            }
                            std::thread::sleep(self.cfg.retry_pause);
                            continue;
                        }
                        hops += 1;
                        self.events
                            .push(format!("redirect session={session} to={node}"));
                        if hops > self.cfg.max_hops {
                            return Ok(reply);
                        }
                        // Trust the redirect even if the refresh fails —
                        // the owner may know a newer ring than it serves.
                        self.ring.join(&node, &node_addr);
                        let _ = self.refresh_from(&node_addr);
                        redirected = Some((node, node_addr));
                        continue;
                    }
                    return Ok(reply);
                }
                Err(e) => {
                    // Transport failure: the owner is gone (or never came
                    // up). Route like the cluster will after promotion —
                    // mark it dead and try its successor.
                    self.conns.remove(&addr);
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    self.ring.mark_dead(&owner);
                    self.events
                        .push(format!("failover session={session} dead={owner}"));
                    std::thread::sleep(self.cfg.retry_pause);
                }
            }
        }
    }

    fn resolve(&self, session: &str) -> Option<(String, String)> {
        let owner = self.ring.owner(session)?;
        let addr = self.ring.addr_of(owner)?;
        Some((owner.to_owned(), addr.to_owned()))
    }

    fn conn(&mut self, addr: &str) -> io::Result<&mut Client> {
        if !self.conns.contains_key(addr) {
            let c = Client::connect_with(addr, self.cfg.client.clone())?;
            self.conns.insert(addr.to_owned(), c);
        }
        Ok(self.conns.get_mut(addr).expect("just inserted"))
    }
}

/// Extract `(node, addr)` from an `ERR MOVED <node> <addr>` head.
fn parse_moved(head: &str) -> Option<(String, String)> {
    let rest = head.strip_prefix("MOVED ")?;
    let mut parts = rest.split_whitespace();
    match (parts.next(), parts.next(), parts.next()) {
        (Some(node), Some(addr), None) => Some((node.to_owned(), addr.to_owned())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moved_heads_parse_and_others_do_not() {
        assert_eq!(
            parse_moved("MOVED n2 127.0.0.1:7002"),
            Some(("n2".into(), "127.0.0.1:7002".into()))
        );
        assert_eq!(parse_moved("BUSY retry-after=100"), None);
        assert_eq!(parse_moved("no such session `x`"), None);
        assert_eq!(parse_moved("MOVED n2 127.0.0.1:7002 extra"), None);
    }
}
