//! The binary wire protocol, spoken after `HELLO binary`.
//!
//! Framing comes from [`sedex_net::frame`]: every request and response is
//! one `[u32 LE body-len][u8 opcode][body]` frame, and bodies reuse
//! [`sedex_storage::codec`] — the same little-endian primitives (and the
//! same tuple encoding) the WAL and snapshots use, so a tuple has exactly
//! one byte-level representation in the whole system.
//!
//! Request opcodes mirror the text verbs one-to-one, plus `PUSH_BATCH`
//! which has no text equivalent (text clients pipeline `PUSH` lines
//! instead). Responses are `RESP_OK`/`RESP_ERR` frames carrying the same
//! head line and body lines the text renderer would produce, so the two
//! protocols are trivially comparable — and are compared, line for line,
//! by the parity suite.
//!
//! Because frames are length-prefixed, a client may pipeline any number of
//! request frames before reading replies; the server answers each
//! connection's requests strictly in order.

use sedex_net::frame::{encode_frame, FRAME_HEADER_BYTES};
use sedex_storage::codec::{
    decode_rows, decode_tuple, encode_rows, encode_tuple, ByteReader, ByteWriter,
};
use sedex_storage::Tuple;

use crate::protocol::{valid_session_name, Request, Response, MAX_BATCH_ROWS, MAX_TRACE_K};

/// Cap on one frame's body. Far above any sane request (a full `OPEN`
/// scenario body tops out at 8 MB) while bounding per-connection buffering.
/// Oversized frames are skipped and the stream resynchronizes — see
/// [`sedex_net::frame::FrameDecoder`].
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// `OPEN`: body = session, scenario body.
pub const OP_OPEN: u8 = 0x01;
/// `PUSH` (one decoded tuple): body = session, relation, tuple.
pub const OP_PUSH: u8 = 0x02;
/// `FEED` (one decoded tuple): body = session, relation, tuple.
pub const OP_FEED: u8 = 0x03;
/// `FLUSH`: body = session.
pub const OP_FLUSH: u8 = 0x04;
/// `STATS`: body = presence flag + optional session.
pub const OP_STATS: u8 = 0x05;
/// `METRICS`: empty body.
pub const OP_METRICS: u8 = 0x06;
/// `SQL`: body = session.
pub const OP_SQL: u8 = 0x07;
/// `CLOSE`: body = session.
pub const OP_CLOSE: u8 = 0x08;
/// `SHUTDOWN`: empty body.
pub const OP_SHUTDOWN: u8 = 0x09;
/// Batched `PUSH`: body = session + `(relation, tuple)` rows.
pub const OP_PUSH_BATCH: u8 = 0x0A;
/// `TRACE`: body = slow flag (u8) + span count (u32).
pub const OP_TRACE: u8 = 0x0B;
/// `CLUSTER` topology dump: empty body.
pub const OP_CLUSTER: u8 = 0x0C;
/// `JOIN`: body = node id, address.
pub const OP_JOIN: u8 = 0x0D;
/// `LEAVE`: body = presence flag + optional node id (absent: the receiver
/// itself migrates out and leaves).
pub const OP_LEAVE: u8 = 0x0E;
/// `PING` heartbeat: body = sending node id.
pub const OP_PING: u8 = 0x0F;
/// `MIGRATE` session handoff: body = session, scenario, requests u64,
/// tuples_in u64, encoded session state bytes.
pub const OP_MIGRATE: u8 = 0x10;
/// `REPL` replicated WAL record: body = origin node, shard u32, payload.
pub const OP_REPL: u8 = 0x11;

/// Success response: body = head string + body lines.
pub const OP_RESP_OK: u8 = 0x80;
/// Error response: body = head string + body lines.
pub const OP_RESP_ERR: u8 = 0x81;

/// Encodes one request as a complete frame (header + body).
///
/// Text-style [`Request::Push`]/[`Request::Feed`] are converted to their
/// decoded-tuple binary forms here, using the same data-line parser the
/// server uses for text requests — so a tuple pushed over either protocol
/// takes the identical parse path. Returns `Err` with the parse message if
/// the data line is invalid (the server would answer the same message over
/// text).
pub fn encode_request(req: &Request) -> Result<Vec<u8>, String> {
    let mut w = ByteWriter::new();
    let opcode = match req {
        Request::Open { session, body } => {
            w.put_str(session);
            w.put_str(body);
            OP_OPEN
        }
        Request::Push { session, line } | Request::Feed { session, line } => {
            // Same parse path AND same error text as the server's text
            // handler, so a client-side reject reads identically to a
            // server-side one.
            let (relation, tuple) = sedex_scenarios::textfmt::parse_data_line(line, 1)
                .map_err(|e| format!("data: {}", e.message))?;
            w.put_str(session);
            w.put_str(&relation);
            encode_tuple(&mut w, &tuple);
            if matches!(req, Request::Push { .. }) {
                OP_PUSH
            } else {
                OP_FEED
            }
        }
        Request::PushTuple {
            session,
            relation,
            tuple,
        } => {
            w.put_str(session);
            w.put_str(relation);
            encode_tuple(&mut w, tuple);
            OP_PUSH
        }
        Request::FeedTuple {
            session,
            relation,
            tuple,
        } => {
            w.put_str(session);
            w.put_str(relation);
            encode_tuple(&mut w, tuple);
            OP_FEED
        }
        Request::PushBatch { session, rows } => {
            w.put_str(session);
            encode_rows(&mut w, rows);
            OP_PUSH_BATCH
        }
        Request::Flush { session } => {
            w.put_str(session);
            OP_FLUSH
        }
        Request::Stats { session } => {
            match session {
                Some(s) => {
                    w.put_u8(1);
                    w.put_str(s);
                }
                None => w.put_u8(0),
            }
            OP_STATS
        }
        Request::Metrics => OP_METRICS,
        Request::Trace { slow, k } => {
            w.put_u8(u8::from(*slow));
            w.put_u32(*k);
            OP_TRACE
        }
        Request::Sql { session } => {
            w.put_str(session);
            OP_SQL
        }
        Request::Close { session } => {
            w.put_str(session);
            OP_CLOSE
        }
        Request::Shutdown => OP_SHUTDOWN,
        Request::Cluster => OP_CLUSTER,
        Request::Join { node, addr } => {
            w.put_str(node);
            w.put_str(addr);
            OP_JOIN
        }
        Request::Leave { node } => {
            match node {
                Some(n) => {
                    w.put_u8(1);
                    w.put_str(n);
                }
                None => w.put_u8(0),
            }
            OP_LEAVE
        }
        Request::Ping { node } => {
            w.put_str(node);
            OP_PING
        }
        Request::Migrate {
            session,
            scenario,
            requests,
            tuples_in,
            state,
        } => {
            w.put_str(session);
            w.put_str(scenario);
            w.put_u64(*requests);
            w.put_u64(*tuples_in);
            w.put_bytes(state);
            OP_MIGRATE
        }
        Request::Repl {
            origin,
            shard,
            payload,
        } => {
            w.put_str(origin);
            w.put_u32(*shard);
            w.put_bytes(payload);
            OP_REPL
        }
    };
    let body = w.into_bytes();
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + body.len());
    encode_frame(&mut out, opcode, &body);
    Ok(out)
}

/// Decodes a request frame body. Invalid frames (bad opcode, malformed
/// body, trailing bytes, invalid session names, oversize batches) produce
/// an error message the server answers as `ERR` — the connection survives.
pub fn decode_request(opcode: u8, body: &[u8]) -> Result<Request, String> {
    let mut r = ByteReader::new(body);
    let session = |r: &mut ByteReader<'_>| -> Result<String, String> {
        let s = r.get_str().map_err(|e| e.to_string())?;
        if !valid_session_name(&s) {
            return Err(format!("invalid session name `{s}`"));
        }
        Ok(s)
    };
    let tuple_payload = |r: &mut ByteReader<'_>| -> Result<(String, String, Tuple), String> {
        let sess = session(r)?;
        let relation = r.get_str().map_err(|e| e.to_string())?;
        if relation.is_empty() {
            return Err("empty relation name".to_owned());
        }
        let tuple = decode_tuple(r).map_err(|e| e.to_string())?;
        Ok((sess, relation, tuple))
    };
    let req = match opcode {
        OP_OPEN => {
            let sess = session(&mut r)?;
            let body = r.get_str().map_err(|e| e.to_string())?;
            Request::Open {
                session: sess,
                body,
            }
        }
        OP_PUSH => {
            let (session, relation, tuple) = tuple_payload(&mut r)?;
            Request::PushTuple {
                session,
                relation,
                tuple,
            }
        }
        OP_FEED => {
            let (session, relation, tuple) = tuple_payload(&mut r)?;
            Request::FeedTuple {
                session,
                relation,
                tuple,
            }
        }
        OP_PUSH_BATCH => {
            let sess = session(&mut r)?;
            let rows = decode_rows(&mut r, MAX_BATCH_ROWS).map_err(|e| e.to_string())?;
            for (relation, _) in &rows {
                if relation.is_empty() {
                    return Err("empty relation name in batch".to_owned());
                }
            }
            Request::PushBatch {
                session: sess,
                rows,
            }
        }
        OP_FLUSH => Request::Flush {
            session: session(&mut r)?,
        },
        OP_STATS => {
            let has = r.get_u8().map_err(|e| e.to_string())?;
            let sess = match has {
                0 => None,
                1 => Some(session(&mut r)?),
                other => return Err(format!("STATS: bad presence flag {other}")),
            };
            Request::Stats { session: sess }
        }
        OP_METRICS => Request::Metrics,
        OP_TRACE => {
            let slow = match r.get_u8().map_err(|e| e.to_string())? {
                0 => false,
                1 => true,
                other => return Err(format!("TRACE: bad slow flag {other}")),
            };
            let k = r.get_u32().map_err(|e| e.to_string())?;
            if !(1..=MAX_TRACE_K).contains(&k) {
                return Err(format!("TRACE: K must be in 1..={MAX_TRACE_K}"));
            }
            Request::Trace { slow, k }
        }
        OP_SQL => Request::Sql {
            session: session(&mut r)?,
        },
        OP_CLOSE => Request::Close {
            session: session(&mut r)?,
        },
        OP_SHUTDOWN => Request::Shutdown,
        OP_CLUSTER => Request::Cluster,
        OP_JOIN => {
            let node = session(&mut r)?;
            let addr = r.get_str().map_err(|e| e.to_string())?;
            if addr.is_empty() || addr.len() > 256 || addr.contains(char::is_whitespace) {
                return Err(format!("invalid node address `{addr}`"));
            }
            Request::Join { node, addr }
        }
        OP_LEAVE => {
            let node = match r.get_u8().map_err(|e| e.to_string())? {
                0 => None,
                1 => Some(session(&mut r)?),
                other => return Err(format!("LEAVE: bad presence flag {other}")),
            };
            Request::Leave { node }
        }
        OP_PING => Request::Ping {
            node: session(&mut r)?,
        },
        OP_MIGRATE => {
            let sess = session(&mut r)?;
            let scenario = r.get_str().map_err(|e| e.to_string())?;
            let requests = r.get_u64().map_err(|e| e.to_string())?;
            let tuples_in = r.get_u64().map_err(|e| e.to_string())?;
            let state = r.get_bytes().map_err(|e| e.to_string())?.to_vec();
            Request::Migrate {
                session: sess,
                scenario,
                requests,
                tuples_in,
                state,
            }
        }
        OP_REPL => {
            let origin = session(&mut r)?;
            let shard = r.get_u32().map_err(|e| e.to_string())?;
            let payload = r.get_bytes().map_err(|e| e.to_string())?.to_vec();
            Request::Repl {
                origin,
                shard,
                payload,
            }
        }
        other => return Err(format!("unknown opcode 0x{other:02x}")),
    };
    r.expect_end().map_err(|e| e.to_string())?;
    Ok(req)
}

/// Encodes a response as a complete `RESP_OK`/`RESP_ERR` frame.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = ByteWriter::new();
    // Head stays one line, matching the text renderer's fold.
    w.put_str(&resp.head.replace('\n', " "));
    w.put_u32(resp.lines.len() as u32);
    for line in &resp.lines {
        w.put_str(line);
    }
    let body = w.into_bytes();
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + body.len());
    encode_frame(
        &mut out,
        if resp.ok { OP_RESP_OK } else { OP_RESP_ERR },
        &body,
    );
    out
}

/// Decodes a response frame body into `(ok, head, lines)`.
pub fn decode_response(opcode: u8, body: &[u8]) -> Result<(bool, String, Vec<String>), String> {
    let ok = match opcode {
        OP_RESP_OK => true,
        OP_RESP_ERR => false,
        other => return Err(format!("unknown response opcode 0x{other:02x}")),
    };
    let mut r = ByteReader::new(body);
    let head = r.get_str().map_err(|e| e.to_string())?;
    let n = r.get_u32().map_err(|e| e.to_string())? as usize;
    let mut lines = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        lines.push(r.get_str().map_err(|e| e.to_string())?);
    }
    r.expect_end().map_err(|e| e.to_string())?;
    Ok((ok, head, lines))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_net::{ByteQueue, FrameDecoder, FrameEvent};
    use sedex_storage::Value;

    fn roundtrip(req: Request) {
        let frame = encode_request(&req).unwrap();
        let mut q = ByteQueue::new();
        q.extend_from_slice(&frame);
        let mut dec = FrameDecoder::new(MAX_FRAME_BYTES);
        match dec.decode(&mut q).unwrap() {
            FrameEvent::Frame { opcode, payload } => {
                let back = decode_request(opcode, &payload).unwrap();
                // Text-style Push/Feed come back as their decoded-tuple form.
                match (&req, &back) {
                    (Request::Push { .. }, Request::PushTuple { .. })
                    | (Request::Feed { .. }, Request::FeedTuple { .. }) => {}
                    _ => assert_eq!(back, req),
                }
            }
            ev => panic!("unexpected {ev:?}"),
        }
        assert!(q.is_empty());
    }

    #[test]
    fn requests_roundtrip_through_frames() {
        roundtrip(Request::Open {
            session: "t1".into(),
            body: "[source]\nR(a*)\n".into(),
        });
        roundtrip(Request::Push {
            session: "t1".into(),
            line: "Student: s1, p1, _".into(),
        });
        roundtrip(Request::Feed {
            session: "t1".into(),
            line: "Dep: d1, b1".into(),
        });
        roundtrip(Request::PushTuple {
            session: "t1".into(),
            relation: "R".into(),
            tuple: sedex_storage::Tuple::new(vec![Value::int(1), Value::Null]),
        });
        roundtrip(Request::PushBatch {
            session: "t1".into(),
            rows: (0..5)
                .map(|i| {
                    (
                        "R".to_owned(),
                        sedex_storage::Tuple::new(vec![Value::int(i)]),
                    )
                })
                .collect(),
        });
        roundtrip(Request::Flush {
            session: "t1".into(),
        });
        roundtrip(Request::Stats { session: None });
        roundtrip(Request::Stats {
            session: Some("t1".into()),
        });
        roundtrip(Request::Metrics);
        roundtrip(Request::Trace { slow: false, k: 10 });
        roundtrip(Request::Trace { slow: true, k: 1 });
        roundtrip(Request::Sql {
            session: "t1".into(),
        });
        roundtrip(Request::Close {
            session: "t1".into(),
        });
        roundtrip(Request::Shutdown);
        roundtrip(Request::Cluster);
        roundtrip(Request::Join {
            node: "n2".into(),
            addr: "127.0.0.1:7002".into(),
        });
        roundtrip(Request::Leave { node: None });
        roundtrip(Request::Leave {
            node: Some("n1".into()),
        });
        roundtrip(Request::Ping { node: "n1".into() });
        roundtrip(Request::Migrate {
            session: "t1".into(),
            scenario: "[source]\nR(a*)\n".into(),
            requests: 7,
            tuples_in: 5,
            state: vec![1, 2, 3, 0xFF],
        });
        roundtrip(Request::Repl {
            origin: "n1".into(),
            shard: 3,
            payload: vec![9, 8, 7],
        });
    }

    #[test]
    fn push_encoding_matches_text_parse_path() {
        // The same data line encodes to the same tuple bytes whether parsed
        // client-side (text Request) or supplied decoded.
        let line = "Student: s1, \"a, b\", _, 3.5";
        let (relation, tuple) = sedex_scenarios::textfmt::parse_data_line(line, 1).unwrap();
        let a = encode_request(&Request::Push {
            session: "s".into(),
            line: line.into(),
        })
        .unwrap();
        let b = encode_request(&Request::PushTuple {
            session: "s".into(),
            relation,
            tuple,
        })
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::ok("pushed | scripts 1 generated / 0 reused"),
            Response::err("no such session `x`"),
            Response {
                ok: true,
                head: "multi\nline".into(),
                lines: vec![".".into(), "a b".into()],
            },
        ] {
            let frame = encode_response(&resp);
            let opcode = frame[4];
            let (ok, head, lines) = decode_response(opcode, &frame[5..]).unwrap();
            assert_eq!(ok, resp.ok);
            assert_eq!(head, resp.head.replace('\n', " "));
            assert_eq!(lines, resp.lines);
        }
    }

    #[test]
    fn malformed_bodies_error_not_panic() {
        assert!(decode_request(0x7F, &[]).is_err());
        assert!(decode_request(OP_PUSH, &[]).is_err());
        assert!(decode_request(OP_PUSH, &[0xFF; 3]).is_err());
        // Trailing garbage after a valid payload is rejected.
        let mut frame = encode_request(&Request::Flush {
            session: "t".into(),
        })
        .unwrap();
        frame.push(0xAA);
        let body_len = frame.len() - FRAME_HEADER_BYTES;
        assert!(decode_request(
            OP_FLUSH,
            &frame[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + body_len]
        )
        .is_err());
        // Invalid session names are caught at decode time.
        let mut w = ByteWriter::new();
        w.put_str("has space");
        assert!(decode_request(OP_FLUSH, &w.into_bytes()).is_err());
        // Batch cap enforced.
        let mut w = ByteWriter::new();
        w.put_str("t1");
        w.put_u32((MAX_BATCH_ROWS + 1) as u32);
        assert!(decode_request(OP_PUSH_BATCH, &w.into_bytes())
            .unwrap_err()
            .contains("exceeds cap"));
        // TRACE flag and count are validated.
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(5);
        assert!(decode_request(OP_TRACE, &w.into_bytes()).is_err());
        let mut w = ByteWriter::new();
        w.put_u8(0);
        w.put_u32(0);
        assert!(decode_request(OP_TRACE, &w.into_bytes()).is_err());
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u32(MAX_TRACE_K + 1);
        assert!(decode_request(OP_TRACE, &w.into_bytes()).is_err());
    }
}
