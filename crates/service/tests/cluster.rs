//! Cluster integration tests: two real nodes in one process, a
//! cluster-aware client, and the three contracts that matter — requests
//! land on the owner (`MOVED` otherwise), a planned `LEAVE` migrates every
//! session without a single client-visible error, and killing a node fails
//! over to byte-identical session state rebuilt from the shipped WAL.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sedex_cluster::ClusterConfig;
use sedex_durable::{FaultKind, FaultPlan, FaultPoint, FsyncPolicy};
use sedex_service::{
    Client, ClientConfig, ClusterClient, ClusterClientConfig, Server, ServerConfig, ServerHandle,
};

const SCENARIO: &str = "\
[source]
Dep(dname*, building)
Student(sname*, program, dep->Dep)

[target]
Stu(student*, prog, dpt)

[correspondences]
sname <-> student
program <-> prog
dep <-> dpt

[data]
Dep: d1, b1
";

const PUSHES: usize = 20;
/// Test heartbeat: fast enough that formation and failover finish in
/// well under a second each.
const HEARTBEAT: Duration = Duration::from_millis(100);
const FAILOVER: Duration = Duration::from_millis(400);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sedex-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable cluster node. Port 0: the advertise address defaults to
/// whatever the listener bound, which is how peers learn to reach it.
fn node_config(node_id: &str, data_dir: &std::path::Path, peers: Vec<String>) -> ServerConfig {
    ServerConfig {
        workers: 2,
        shards: 4,
        idle_ttl: None,
        data_dir: Some(data_dir.to_path_buf()),
        fsync: FsyncPolicy::Always,
        snapshot_every: 0,
        cluster: Some(ClusterConfig {
            node_id: node_id.to_owned(),
            peers,
            heartbeat: HEARTBEAT,
            failover: FAILOVER,
            ..ClusterConfig::default()
        }),
        ..ServerConfig::default()
    }
}

fn retrying() -> ClientConfig {
    ClientConfig {
        max_attempts: 8,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(100),
        ..ClientConfig::default()
    }
}

fn cluster_client(seed: &str) -> ClusterClient {
    ClusterClient::connect_with(
        seed,
        ClusterClientConfig {
            client: retrying(),
            retry_pause: Duration::from_millis(50),
            ..ClusterClientConfig::default()
        },
    )
    .unwrap()
}

/// Poll one node's `CLUSTER` dump until `pred` accepts it.
fn wait_cluster(addr: &str, what: &str, pred: impl Fn(&str, &str) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(mut c) = Client::connect_with(addr, retrying()) {
            if let Ok(reply) = c.cluster() {
                if reply.ok && pred(&reply.head, &reply.body()) {
                    return;
                }
            }
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Start a two-node cluster and wait until both see two alive members.
fn two_nodes(tag: &str) -> (ServerHandle, ServerHandle, String, String) {
    let a = Server::start(node_config("a", &tmp_dir(&format!("{tag}-a")), Vec::new())).unwrap();
    let a_addr = a.local_addr().to_string();
    let b = Server::start(node_config(
        "b",
        &tmp_dir(&format!("{tag}-b")),
        vec![a_addr.clone()],
    ))
    .unwrap();
    let b_addr = b.local_addr().to_string();
    for addr in [&a_addr, &b_addr] {
        wait_cluster(addr, "two-node formation", |head, _| {
            head.contains("(2 nodes, 2 alive)")
        });
    }
    (a, b, a_addr, b_addr)
}

/// First session name (from `s0`, `s1`, …) the cluster routes to `node`.
fn session_owned_by(cc: &ClusterClient, node: &str) -> String {
    (0..1000)
        .map(|i| format!("s{i}"))
        .find(|s| cc.owner_of(s) == Some(node))
        .expect("some probe name must land on the node")
}

fn open_and_fill(cc: &mut ClusterClient, session: &str) {
    cc.open(session, SCENARIO).unwrap().into_ok().unwrap();
    for i in 0..PUSHES {
        cc.push(session, &format!("Student: {session}-v{i}, p{}, d1", i % 3))
            .unwrap()
            .into_ok()
            .unwrap();
    }
}

/// The same sessions exchanged on a plain single-node server — the
/// reference state a failover must reproduce byte for byte.
fn single_node_reference(tag: &str, sessions: &[&str]) -> Vec<String> {
    let dir = tmp_dir(&format!("{tag}-ref"));
    let handle = Server::start(ServerConfig {
        workers: 2,
        shards: 4,
        idle_ttl: None,
        data_dir: Some(dir),
        fsync: FsyncPolicy::Always,
        snapshot_every: 0,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    let mut dumps = Vec::new();
    for s in sessions {
        c.open(s, SCENARIO).unwrap().into_ok().unwrap();
        for i in 0..PUSHES {
            c.push(s, &format!("Student: {s}-v{i}, p{}, d1", i % 3))
                .unwrap()
                .into_ok()
                .unwrap();
        }
        dumps.push(c.sql(s).unwrap().into_ok().unwrap().body());
    }
    handle.shutdown();
    dumps
}

#[test]
fn non_owners_answer_moved_and_the_cluster_client_follows_it() {
    let (a, b, a_addr, b_addr) = two_nodes("moved");

    // A client that bootstrapped *before* learning the full topology: seed
    // its snapshot, then deliberately forget node b by reconnecting to a
    // fresh two-node view and asking for a session owned by b through a.
    let cc = cluster_client(&a_addr);
    let on_a = session_owned_by(&cc, "a");
    let on_b = session_owned_by(&cc, "b");

    // A plain (non-cluster-aware) client pointed at the wrong node gets a
    // parseable redirect and must NOT burn retries on it — MOVED is an
    // answer, not a transport fault.
    let mut plain = Client::connect_with(a_addr.as_str(), retrying()).unwrap();
    let reply = plain.open(&on_b, SCENARIO).unwrap();
    assert!(!reply.ok);
    assert!(
        reply.head.starts_with("MOVED b "),
        "expected a MOVED redirect, got `{}`",
        reply.head
    );
    assert_eq!(plain.retries(), 0, "a MOVED reply must not be retried");

    // The cluster-aware client lands both sessions on their owners with
    // zero redirects — routing is resolved locally.
    let mut cc = cc;
    open_and_fill(&mut cc, &on_a);
    open_and_fill(&mut cc, &on_b);
    assert!(
        cc.events().iter().all(|e| !e.starts_with("redirect")),
        "local routing should never redirect: {:?}",
        cc.events()
    );

    // The redirect the plain client provoked is visible in the dump, and
    // STATS carries the cluster line.
    wait_cluster(&a_addr, "redirect counter", |_, body| {
        body.lines()
            .any(|l| l.starts_with("redirects ") && l != "redirects 0")
    });
    let mut c = Client::connect_with(b_addr.as_str(), retrying()).unwrap();
    let stats = c.stats(None).unwrap().into_ok().unwrap().body();
    assert!(
        stats.lines().any(|l| l.starts_with("cluster: node b")),
        "STATS should report the cluster line: {stats}"
    );

    a.shutdown();
    b.shutdown();
}

#[test]
fn planned_leave_migrates_every_session_with_zero_client_errors() {
    let (a, b, a_addr, b_addr) = two_nodes("leave");

    let mut cc = cluster_client(&a_addr);
    let sessions: Vec<String> = (0..6).map(|i| format!("leave-{i}")).collect();
    for s in &sessions {
        cc.open(s, SCENARIO).unwrap().into_ok().unwrap();
        cc.push(s, &format!("Student: {s}-seed, p0, d1"))
            .unwrap()
            .into_ok()
            .unwrap();
    }
    assert!(
        sessions.iter().any(|s| cc.owner_of(s) == Some("b")),
        "the probe set must exercise the leaving node"
    );

    // Concurrent pusher: hammers every session through its own routing
    // client while the LEAVE runs. The contract: not one visible ERR —
    // BUSY and MOVED are absorbed by retry and redirect.
    let stop = Arc::new(AtomicBool::new(false));
    let pusher = {
        let stop = Arc::clone(&stop);
        let a_addr = a_addr.clone();
        let sessions = sessions.clone();
        std::thread::spawn(move || {
            let mut cc = cluster_client(&a_addr);
            let mut errors = Vec::new();
            let mut sent = 0usize;
            while !stop.load(Ordering::Relaxed) {
                for s in &sessions {
                    let reply = cc
                        .push(s, &format!("Student: {s}-live{sent}, p1, d1"))
                        .unwrap();
                    if !reply.ok {
                        errors.push(format!("{s}: {}", reply.head));
                    }
                    sent += 1;
                }
            }
            (errors, sent)
        })
    };

    std::thread::sleep(Duration::from_millis(150));
    let mut b_ctl = Client::connect_with(b_addr.as_str(), retrying()).unwrap();
    let reply = b_ctl.request("LEAVE").unwrap().into_ok().unwrap();
    assert!(
        reply.head.starts_with("left, migrated"),
        "unexpected LEAVE reply: {}",
        reply.head
    );

    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, Ordering::SeqCst);
    let (errors, sent) = pusher.join().unwrap();
    assert!(sent > 0, "the pusher never got a request out");
    assert!(
        errors.is_empty(),
        "a planned LEAVE must be invisible to clients, saw: {errors:?}"
    );

    // Every session — including the migrated ones — keeps serving, and the
    // departed node is out of the survivor's ring.
    for s in &sessions {
        cc.sql(s).unwrap().into_ok().unwrap();
    }
    wait_cluster(&a_addr, "post-leave membership", |head, _| {
        head.contains("(1 nodes, 1 alive)")
    });

    a.shutdown();
    b.shutdown();
}

/// One kill-driven failover run: open a session on each node, wait for the
/// WAL to ship, kill b, and read both sessions back through the surviving
/// node. Returns the two dumps plus the client's normalized routing trace.
fn failover_run(tag: &str) -> (String, String, Vec<String>) {
    let (a, b, a_addr, b_addr) = two_nodes(tag);

    let mut cc = cluster_client(&a_addr);
    let on_a = session_owned_by(&cc, "a");
    let on_b = session_owned_by(&cc, "b");
    open_and_fill(&mut cc, &on_a);
    open_and_fill(&mut cc, &on_b);

    // Replication must be fully drained and applied before the kill, or
    // the tail would be legitimately lost and the dumps could differ.
    wait_cluster(&b_addr, "victim replication drain", |_, body| {
        body.lines().any(|l| {
            l.starts_with("repl queued=0") && l.ends_with("lag=0") && !l.contains("sent=0")
        })
    });
    wait_cluster(&a_addr, "survivor standby", |_, body| {
        body.lines().any(|l| l.starts_with("standby b sessions=1"))
    });

    b.abort(); // in-process kill -9: no final checkpoint, no goodbye

    // The survivor's failure detector needs `failover` of silence; the
    // client meanwhile fails over on its own and converges.
    let deadline = Instant::now() + Duration::from_secs(10);
    let dump_b = loop {
        let reply = cc.sql(&on_b).unwrap();
        if reply.ok {
            break reply.body();
        }
        assert!(
            Instant::now() < deadline,
            "survivor never promoted the standby: {}",
            reply.head
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    let dump_a = cc.sql(&on_a).unwrap().into_ok().unwrap().body();

    // Normalize the event log for cross-run comparison: drop the purely
    // timing-dependent entries (how often a stale redirect or failover
    // retry fired) down to the sequence of distinct routing decisions.
    let mut events: Vec<String> = Vec::new();
    for e in cc.events() {
        if e.starts_with("refresh") {
            continue;
        }
        let kind = e.split_whitespace().next().unwrap_or("").to_owned();
        let normalized = format!(
            "{kind} {}",
            e.split_whitespace().skip(1).collect::<Vec<_>>().join(" ")
        );
        if events.last() != Some(&normalized) {
            events.push(normalized);
        }
    }
    a.shutdown();
    (dump_a, dump_b, events)
}

#[test]
fn killing_a_node_fails_over_to_byte_identical_state() {
    let (dump_a, dump_b, events) = failover_run("kill1");

    // The surviving state must match an uninterrupted single-node run of
    // the same workload, byte for byte. Session names depend only on the
    // placement seed, so recompute them with a local ring.
    let mut ring =
        sedex_cluster::HashRing::new(sedex_cluster::DEFAULT_SEED, sedex_cluster::DEFAULT_VNODES);
    ring.join("a", "x");
    ring.join("b", "y");
    let on_a = (0..1000)
        .map(|i| format!("s{i}"))
        .find(|s| ring.owner(s) == Some("a"))
        .unwrap();
    let on_b = (0..1000)
        .map(|i| format!("s{i}"))
        .find(|s| ring.owner(s) == Some("b"))
        .unwrap();
    let reference = single_node_reference("kill", &[&on_a, &on_b]);
    assert!(!dump_b.is_empty(), "the failed-over dump must not be empty");
    assert_eq!(dump_a, reference[0], "survivor-owned session diverged");
    assert_eq!(dump_b, reference[1], "failed-over session diverged");

    // Same placement seed, same workload, same kill → the same routing
    // decisions, run to run.
    let (dump_a2, dump_b2, events2) = failover_run("kill2");
    assert_eq!(dump_a, dump_a2);
    assert_eq!(dump_b, dump_b2);
    assert_eq!(events, events2, "routing decisions must be deterministic");
}

/// Start a three-node replicated (R = 2) cluster: `a` seeds, `b` and `c`
/// join through it. Returns `(node id, handle, addr)` per node.
fn three_nodes(tag: &str) -> Vec<(String, ServerHandle, String)> {
    let a = Server::start(node_config("a", &tmp_dir(&format!("{tag}-a")), Vec::new())).unwrap();
    let a_addr = a.local_addr().to_string();
    let b = Server::start(node_config(
        "b",
        &tmp_dir(&format!("{tag}-b")),
        vec![a_addr.clone()],
    ))
    .unwrap();
    let b_addr = b.local_addr().to_string();
    let c = Server::start(node_config(
        "c",
        &tmp_dir(&format!("{tag}-c")),
        vec![a_addr.clone()],
    ))
    .unwrap();
    let c_addr = c.local_addr().to_string();
    for addr in [&a_addr, &b_addr, &c_addr] {
        wait_cluster(addr, "three-node formation", |head, _| {
            head.contains("(3 nodes, 3 alive)")
        });
    }
    vec![
        ("a".to_owned(), a, a_addr),
        ("b".to_owned(), b, b_addr),
        ("c".to_owned(), c, c_addr),
    ]
}

/// Kill two of three nodes in succession-aware order and read every session
/// back through the lone survivor. The first victim's ring successor is the
/// survivor, so the survivor inherits its standby directly. The second
/// victim's follower *was* the first victim — after kill one it must
/// re-target the survivor and catch it up from the WAL on disk, which is the
/// path this test exists to exercise.
fn chaos_run(tag: &str, binary: bool) -> (Vec<String>, Vec<String>) {
    let mut ring =
        sedex_cluster::HashRing::new(sedex_cluster::DEFAULT_SEED, sedex_cluster::DEFAULT_VNODES);
    for n in ["a", "b", "c"] {
        ring.join(n, "x");
    }
    let v1 = "a".to_owned();
    let survivor = ring.successors(&v1, 1)[0].to_owned();
    let v2 = ["a", "b", "c"]
        .iter()
        .find(|n| **n != v1 && **n != survivor)
        .unwrap()
        .to_string();

    let mut handles: HashMap<String, ServerHandle> = HashMap::new();
    let mut addrs: HashMap<String, String> = HashMap::new();
    for (id, handle, addr) in three_nodes(tag) {
        handles.insert(id.clone(), handle);
        addrs.insert(id, addr);
    }

    let mut cc = ClusterClient::connect_with(
        addrs[&survivor].as_str(),
        ClusterClientConfig {
            client: ClientConfig {
                binary,
                ..retrying()
            },
            retry_pause: Duration::from_millis(50),
            ..ClusterClientConfig::default()
        },
    )
    .unwrap();
    let sessions: Vec<String> = ["a", "b", "c"]
        .iter()
        .map(|n| session_owned_by(&cc, n))
        .collect();
    for s in &sessions {
        open_and_fill(&mut cc, s);
    }

    // Gate 1: the first victim's WAL is fully acked by its follower and the
    // survivor's standby actually holds the session — only then is the kill
    // guaranteed lossless.
    wait_cluster(&addrs[&v1], "first victim replication drain", |_, body| {
        body.lines().any(|l| {
            l.starts_with("repl queued=0") && l.ends_with("lag=0") && !l.contains("sent=0")
        })
    });
    wait_cluster(&addrs[&survivor], "survivor standby of v1", {
        let want = format!("standby {v1} sessions=1 ");
        move |_, body| body.contains(&want)
    });
    handles.remove(&v1).unwrap().abort();

    // Gate 2: both remaining nodes declare the victim dead, the survivor
    // promotes its session, and the second victim re-targets its shipping to
    // the survivor and drains the disk catch-up.
    for n in [&v2, &survivor] {
        wait_cluster(&addrs[n], "first victim declared dead", |head, _| {
            head.contains("(3 nodes, 2 alive)")
        });
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cc.sql(&sessions[0]).unwrap().ok {
        assert!(
            Instant::now() < deadline,
            "survivor never promoted the first victim's session"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    wait_cluster(&addrs[&v2], "second victim re-targets the survivor", {
        let prefix = format!("repl-peer {survivor} shipping=true");
        move |_, body| {
            body.lines()
                .any(|l| l.starts_with(&prefix) && l.ends_with("lag=0") && !l.contains(" sent=0"))
        }
    });
    wait_cluster(&addrs[&survivor], "survivor standby of v2", {
        let want = format!("standby {v2} sessions=1 ");
        move |_, body| body.contains(&want)
    });
    handles.remove(&v2).unwrap().abort();

    // Gate 3: the survivor is alone and serves all three sessions.
    wait_cluster(&addrs[&survivor], "lone survivor", |head, _| {
        head.contains("(3 nodes, 1 alive)")
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut dumps = Vec::new();
    for s in &sessions {
        let dump = loop {
            let reply = cc.sql(s).unwrap();
            if reply.ok {
                break reply.body();
            }
            assert!(
                Instant::now() < deadline,
                "survivor never served `{s}`: {}",
                reply.head
            );
            std::thread::sleep(Duration::from_millis(50));
        };
        dumps.push(dump);
    }
    handles.remove(&survivor).unwrap().shutdown();
    (dumps, sessions)
}

#[test]
fn r2_survives_two_kills_text_protocol() {
    let (dumps, sessions) = chaos_run("chaos-text", false);
    let names: Vec<&str> = sessions.iter().map(String::as_str).collect();
    let reference = single_node_reference("chaos-text", &names);
    assert_eq!(dumps, reference, "survivor state diverged from reference");
}

#[test]
fn r2_survives_two_kills_binary_protocol() {
    let (dumps, sessions) = chaos_run("chaos-bin", true);
    let names: Vec<&str> = sessions.iter().map(String::as_str).collect();
    let reference = single_node_reference("chaos-bin", &names);
    assert_eq!(dumps, reference, "survivor state diverged from reference");
}

/// Parse a `shard:lsn,shard:lsn,…` map as printed by the `wal-lsn` and
/// `wm=` fields of the CLUSTER dump.
fn lsn_map(s: &str) -> HashMap<u32, u64> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .filter_map(|p| {
            let (k, v) = p.split_once(':')?;
            Some((k.parse().ok()?, v.parse().ok()?))
        })
        .collect()
}

#[test]
fn dropped_frames_reconverge_via_anti_entropy_without_reconnect() {
    // The sender on node a silently loses three REPL frames (the network ate
    // them — the link itself stays up, so nothing ever reconnects). The
    // standby on b sees LSN gaps and pins its watermark; the pong-carried
    // watermarks expose the hole and a's next anti-entropy pass re-ships
    // from disk. Silent drops never tear the link down, so convergence here
    // can only come from anti-entropy.
    let plan = Arc::new(
        FaultPlan::new()
            .rule(
                FaultPoint::PeerSend,
                3,
                FaultKind::Error(ErrorKind::ConnectionReset),
            )
            .rule(
                FaultPoint::PeerSend,
                5,
                FaultKind::Error(ErrorKind::ConnectionReset),
            )
            .rule(
                FaultPoint::PeerSend,
                9,
                FaultKind::Error(ErrorKind::ConnectionReset),
            ),
    );
    let mut cfg_a = node_config("a", &tmp_dir("ae-a"), Vec::new());
    cfg_a.fault_plan = Some(Arc::clone(&plan));
    let a = Server::start(cfg_a).unwrap();
    let a_addr = a.local_addr().to_string();
    let b = Server::start(node_config("b", &tmp_dir("ae-b"), vec![a_addr.clone()])).unwrap();
    let b_addr = b.local_addr().to_string();
    for addr in [&a_addr, &b_addr] {
        wait_cluster(addr, "two-node formation", |head, _| {
            head.contains("(2 nodes, 2 alive)")
        });
    }

    let mut cc = cluster_client(&a_addr);
    let on_a = session_owned_by(&cc, "a");
    open_and_fill(&mut cc, &on_a);

    // The origin's WAL heads are static once the fill is done; the standby's
    // watermark must climb to meet them without any reconnect.
    let mut ctl = Client::connect_with(a_addr.as_str(), retrying()).unwrap();
    let dump = ctl.cluster().unwrap().into_ok().unwrap().body();
    let heads = lsn_map(
        dump.lines()
            .find_map(|l| l.strip_prefix("wal-lsn "))
            .expect("origin must report wal-lsn heads"),
    );
    assert!(
        heads.values().any(|&l| l > 0),
        "the workload must have produced WAL records"
    );
    wait_cluster(&b_addr, "anti-entropy convergence", move |_, body| {
        let Some(wm) = body
            .lines()
            .find(|l| l.starts_with("standby a "))
            .and_then(|l| {
                l.split_whitespace()
                    .find_map(|t| t.strip_prefix("wm="))
                    .map(lsn_map)
            })
        else {
            return false;
        };
        heads
            .iter()
            .all(|(s, &l)| l == 0 || wm.get(s).copied().unwrap_or(0) >= l)
    });
    // Convergence needs every record applied, which takes far more than
    // nine ship attempts — so by now all three planned drops have fired.
    assert_eq!(
        plan.injected(FaultPoint::PeerSend),
        3,
        "all three planned frame drops must actually fire"
    );

    // Proof of full repair: kill the origin and the standby must serve the
    // complete session, byte-identical to an uninterrupted run.
    a.abort();
    let deadline = Instant::now() + Duration::from_secs(10);
    let dump = loop {
        let reply = cc.sql(&on_a).unwrap();
        if reply.ok {
            break reply.body();
        }
        assert!(
            Instant::now() < deadline,
            "standby never promoted after the origin died: {}",
            reply.head
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    let reference = single_node_reference("ae", &[&on_a]);
    assert_eq!(dump, reference[0], "healed standby diverged from reference");
    b.shutdown();
}

/// Heartbeat liveness must not depend on worker availability. `JOIN`
/// propagation deliberately blocks a worker on each of two nodes waiting
/// for the other's announce reply; with one worker per node, pongs routed
/// through the pool would go silent past the failover window and the mesh
/// would wedge into *mutual* false death — permanently, because links only
/// connect to alive peers, so neither side would ever ping the other
/// again. The reactor answers pings inline, which keeps every node alive
/// straight through the announce stall.
#[test]
fn single_worker_nodes_form_and_hold_full_membership() {
    let mut cfg = node_config("a", &tmp_dir("sw-a"), Vec::new());
    cfg.workers = 1;
    let a = Server::start(cfg).unwrap();
    let a_addr = a.local_addr().to_string();
    // b and c join through a back-to-back: a announces each fresh join to
    // the other member, which re-announces it right back while a's lone
    // worker is still inside its own announce — the mutual stall that used
    // to silence pongs on both sides.
    let mut cfg = node_config("b", &tmp_dir("sw-b"), vec![a_addr.clone()]);
    cfg.workers = 1;
    let b = Server::start(cfg).unwrap();
    let mut cfg = node_config("c", &tmp_dir("sw-c"), vec![a_addr.clone()]);
    cfg.workers = 1;
    let c = Server::start(cfg).unwrap();
    let addrs = [
        a_addr,
        b.local_addr().to_string(),
        c.local_addr().to_string(),
    ];
    for addr in &addrs {
        wait_cluster(addr, "single-worker three-node formation", |head, _| {
            head.contains("(3 nodes, 3 alive)")
        });
    }
    // Hold through several failover windows: no node may be declared dead
    // on any ring once the cluster is formed and idle.
    std::thread::sleep(FAILOVER * 3);
    for addr in &addrs {
        wait_cluster(addr, "sustained full membership", |head, body| {
            head.contains("(3 nodes, 3 alive)") && !body.contains(" dead")
        });
    }
    for h in [a, b, c] {
        h.shutdown();
    }
}
