//! Wire robustness: arbitrary byte streams, thrown at both protocols,
//! must never panic the server and must always end in an `ERR` reply or
//! a clean connection close — never a hang, never a poisoned listener.
//!
//! Deterministic "fuzzing": a seeded PRNG generates adversarial streams
//! (pure garbage, truncated frames, absurd length prefixes, mid-frame
//! disconnects, garbage spliced after valid negotiation), so a failure
//! reproduces by seed. After every barrage the same server must still
//! answer a well-formed request.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use sedex_net::FRAME_HEADER_BYTES;
use sedex_scenarios::rng::SmallRng;
use sedex_service::{wire, Client, Server, ServerConfig};

fn start_server() -> sedex_service::ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("server start")
}

/// Write `bytes`, then read until the server closes or stops talking.
/// Returns what came back. Write errors are fine (the server may close
/// mid-stream — that *is* a clean rejection); read errors other than
/// timeout/EOF-ish conditions are not expected from a healthy server.
fn slam(addr: std::net::SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_millis(300)))
        .unwrap();
    s.set_nodelay(true).unwrap();
    let _ = s.write_all(bytes);
    let _ = s.flush();
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(_) => break, // reset by a close-with-pending-data: clean enough
        }
    }
    out
}

/// The server must still be healthy: a fresh client gets an `OK` STATS.
fn assert_alive(addr: std::net::SocketAddr) {
    let mut c = Client::connect(addr).unwrap();
    let reply = c.stats(None).unwrap();
    assert!(reply.ok, "server unhealthy after garbage: {}", reply.head);
}

fn random_bytes(rng: &mut SmallRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect()
}

#[test]
fn garbage_on_the_text_protocol_never_kills_the_server() {
    let handle = start_server();
    let addr = handle.local_addr();
    let mut rng = SmallRng::seed_from_u64(0xF422_0001);
    for round in 0..24 {
        let len = 1 + (rng.next_u64() % 2048) as usize;
        let mut bytes = random_bytes(&mut rng, len);
        // Some rounds: sprinkle newlines so lines actually terminate and
        // the parser (not just the line-length guard) gets exercised.
        if round % 2 == 0 {
            for b in bytes.iter_mut() {
                if *b % 17 == 0 {
                    *b = b'\n';
                }
            }
        }
        let response = slam(addr, &bytes);
        // Whatever came back is text-protocol output: every complete
        // line opens with OK or ERR.
        for line in response.split(|&b| b == b'\n') {
            if line.starts_with(b"OK") || line.starts_with(b"ERR") || line.first() == Some(&b'.') {
                continue;
            }
            // Body lines only follow an OK/ERR head; garbage can't
            // produce OK bodies except via STATS-like verbs it can't
            // spell, so anything else must be empty (trailing split).
            assert!(
                line.is_empty(),
                "round {round}: unexpected reply line {:?}",
                String::from_utf8_lossy(line)
            );
        }
        assert_alive(addr);
    }
    handle.shutdown();
}

#[test]
fn garbage_frames_on_the_binary_protocol_never_kill_the_server() {
    let handle = start_server();
    let addr = handle.local_addr();
    let mut rng = SmallRng::seed_from_u64(0xF422_0002);
    for round in 0..24 {
        let mut bytes = b"HELLO binary\n".to_vec();
        match round % 4 {
            // Random frame header with a random (often bogus) opcode and
            // a body that doesn't match its declared length.
            0 => {
                let declared = (rng.next_u64() % 4096) as u32;
                bytes.extend_from_slice(&declared.to_le_bytes());
                bytes.push((rng.next_u64() & 0xFF) as u8);
                let actual = (rng.next_u64() % 512) as usize;
                bytes.extend_from_slice(&random_bytes(&mut rng, actual));
            }
            // Absurd length prefix, way beyond the frame cap.
            1 => {
                let declared = u32::MAX - (rng.next_u64() % 1024) as u32;
                bytes.extend_from_slice(&declared.to_le_bytes());
                bytes.push((rng.next_u64() & 0xFF) as u8);
                bytes.extend_from_slice(&random_bytes(&mut rng, 256));
            }
            // Truncated header: fewer than FRAME_HEADER_BYTES bytes.
            2 => {
                let n = (rng.next_u64() as usize) % FRAME_HEADER_BYTES;
                bytes.extend_from_slice(&random_bytes(&mut rng, n));
            }
            // Pure garbage after negotiation.
            _ => {
                let len = 1 + (rng.next_u64() % 2048) as usize;
                bytes.extend_from_slice(&random_bytes(&mut rng, len));
            }
        }
        let _ = slam(addr, &bytes);
        assert_alive(addr);
    }
    handle.shutdown();
}

/// Request lines whose byte 4 falls inside a multibyte character (lossy
/// decoding turns each invalid byte into a 3-byte U+FFFD) must get a
/// normal `ERR` reply: a naive `line[..4]` prefix slice panics on these,
/// and on the pipeline-refill path that panic would kill the reactor
/// thread, not just one connection.
#[test]
fn multibyte_bytes_near_the_open_prefix_get_err_not_panic() {
    let handle = start_server();
    let addr = handle.local_addr();
    for line in [
        b"OPE\xC3\xA9 demo\n".to_vec(), // 2-byte 'é' straddles byte index 4
        b"OPE\xFF demo\n".to_vec(),     // invalid byte -> 3-byte U+FFFD at 3..6
        b"O\xC3\xA9\xC3\xA9 demo\n".to_vec(), // second 'é' straddles index 4
    ] {
        let response = slam(addr, &line);
        let text = String::from_utf8_lossy(&response);
        assert!(
            text.starts_with("ERR"),
            "expected ERR reply for {:?}, got: {text:?}",
            String::from_utf8_lossy(&line)
        );
        assert_alive(addr);
    }
    handle.shutdown();
}

/// A valid frame followed by a mid-frame disconnect: the half-written
/// frame dies with its connection, the applied request does not.
#[test]
fn mid_frame_disconnect_is_contained() {
    let handle = start_server();
    let addr = handle.local_addr();
    for cut in [1, FRAME_HEADER_BYTES, FRAME_HEADER_BYTES + 3] {
        let frame = wire::encode_request(&sedex_service::Request::Stats { session: None })
            .expect("encode STATS");
        let mut bytes = b"HELLO binary\n".to_vec();
        bytes.extend_from_slice(&frame);
        bytes.extend_from_slice(&frame[..cut.min(frame.len())]);
        let _ = slam(addr, &bytes);
        assert_alive(addr);
    }
    handle.shutdown();
}

/// Oversized frames resynchronize: after an over-cap length prefix the
/// connection answers `ERR TOO_LARGE`, skips the declared body, and keeps
/// serving on the same socket — unlike text, where an over-long line
/// closes the connection.
#[test]
fn oversized_binary_frame_resynchronizes_oversized_text_line_closes() {
    let handle = start_server();
    let addr = handle.local_addr();

    // Binary: declare a body over the cap but only a small actual body,
    // then follow with a valid STATS frame on the same connection.
    let mut bytes = b"HELLO binary\n".to_vec();
    let over = (wire::MAX_FRAME_BYTES + 1) as u32;
    bytes.extend_from_slice(&over.to_le_bytes());
    bytes.push(0x01);
    let skipped_body = vec![0u8; 4096];
    bytes.extend_from_slice(&skipped_body);
    let response = slam(addr, &bytes);
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.contains("TOO_LARGE"),
        "expected TOO_LARGE rejection, got: {text}"
    );

    // Text: one line over the 1 MiB line cap gets ERR TOO_LARGE and the
    // connection closed (the stream has lost line framing).
    let mut line = vec![b'X'; (1 << 20) + 16];
    line.push(b'\n');
    let response = slam(addr, &line);
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.contains("TOO_LARGE"),
        "expected TOO_LARGE rejection, got: {text}"
    );
    assert_alive(addr);
    handle.shutdown();
}
