//! Protocol parity: the same scenario driven over every transport mode —
//! text vs binary, serial vs pipelined vs batched — must land the server
//! in the same state: byte-identical SQL dumps, identical per-session
//! statistics, identical durable state after crash-free recovery.
//!
//! This is the acceptance test for the binary protocol: pipelining and
//! batching are *transport* optimizations (they save round-trips and
//! framing overhead), never *semantic* ones. The server executes one
//! connection's requests strictly in order regardless of how many were
//! in flight, so every mode replays the identical request sequence.

use std::path::Path;

use sedex_service::{Client, ClientConfig, Proto, Server, ServerConfig};

const SCENARIO: &str = "\
[source]
Dep(dname*, building)
Student(sname*, program, dep->Dep)

[target]
Stu(student*, prog, dpt)

[correspondences]
sname <-> student
program <-> prog
dep <-> dpt
";

#[derive(Clone, Copy, Debug, PartialEq)]
enum Mode {
    TextSerial,
    TextPipelined,
    BinarySerial,
    BinaryPipelined,
    BinaryBatched,
}

impl Mode {
    fn binary(self) -> bool {
        matches!(
            self,
            Mode::BinarySerial | Mode::BinaryPipelined | Mode::BinaryBatched
        )
    }
}

fn connect(addr: std::net::SocketAddr, binary: bool) -> Client {
    let cfg = ClientConfig {
        binary,
        ..ClientConfig::default()
    };
    Client::connect_with(addr, cfg).unwrap()
}

fn student_lines(n: usize) -> Vec<String> {
    (0..n)
        .map(|j| {
            let dep = if j % 2 == 0 { "d0" } else { "_" };
            format!("Student: s{j}, p{j}, {dep}")
        })
        .collect()
}

/// Drive the whole scenario over one connection in the given mode.
/// Returns `(sql_dump, session_stats_body)`.
fn run_scenario(addr: std::net::SocketAddr, mode: Mode, session: &str) -> (String, String) {
    let mut c = connect(addr, mode.binary());
    assert_eq!(
        c.proto(),
        if mode.binary() {
            Proto::Binary
        } else {
            Proto::Text
        }
    );
    c.open(session, SCENARIO).unwrap().into_ok().unwrap();
    c.feed(session, "Dep: d0, b0").unwrap().into_ok().unwrap();
    let lines = student_lines(24);
    match mode {
        Mode::TextSerial | Mode::BinarySerial => {
            for line in &lines {
                c.push(session, line).unwrap().into_ok().unwrap();
            }
        }
        Mode::TextPipelined | Mode::BinaryPipelined => {
            let cmds: Vec<String> = lines
                .iter()
                .map(|l| format!("PUSH {session} {l}"))
                .collect();
            let refs: Vec<&str> = cmds.iter().map(String::as_str).collect();
            for reply in c.pipeline(&refs).unwrap() {
                reply.into_ok().unwrap();
            }
        }
        Mode::BinaryBatched => {
            let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
            let r = c.push_batch(session, &refs).unwrap().into_ok().unwrap();
            assert!(
                r.head.contains("pushed batch of 24"),
                "batch reply: {}",
                r.head
            );
        }
    }
    let sql = c.sql(session).unwrap().into_ok().unwrap().body();
    // Everything in the session stats is deterministic except the
    // wall-clock `time:` line — drop it. The `service:` line's request
    // count legitimately differs for the batched mode (one PUSH_BATCH
    // request stands in for 24 PUSHes), so it is compared structurally
    // by the caller; the tuple and script figures on it must still agree.
    let stats = c
        .stats(Some(session))
        .unwrap()
        .into_ok()
        .unwrap()
        .lines
        .iter()
        .filter(|l| !l.starts_with("time:") && !l.starts_with("service:"))
        .cloned()
        .collect::<Vec<_>>()
        .join("\n");
    (sql, stats)
}

/// The `service:` line of a session's STATS, split into
/// `(requests, tuples_in, scripts_cached)`.
fn service_line(addr: std::net::SocketAddr, session: &str) -> (u64, u64, u64) {
    let mut c = connect(addr, false);
    let body = c.stats(Some(session)).unwrap().into_ok().unwrap().body();
    let line = body
        .lines()
        .find(|l| l.starts_with("service:"))
        .unwrap_or_else(|| panic!("service line missing in:\n{body}"));
    let nums: Vec<u64> = line
        .split_whitespace()
        .filter_map(|tok| tok.parse().ok())
        .collect();
    assert_eq!(nums.len(), 3, "unexpected service line shape: {line}");
    (nums[0], nums[1], nums[2])
}

#[test]
fn all_transport_modes_produce_identical_state() {
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();

    let modes = [
        Mode::TextSerial,
        Mode::TextPipelined,
        Mode::BinarySerial,
        Mode::BinaryPipelined,
        Mode::BinaryBatched,
    ];
    let mut results = Vec::new();
    for (i, mode) in modes.iter().enumerate() {
        let session = format!("tenant-{i}");
        results.push((*mode, session.clone(), run_scenario(addr, *mode, &session)));
    }

    let (_, _, (ref_sql, ref_stats)) = &results[0];
    assert!(ref_sql.contains("INSERT INTO Stu"), "{ref_sql}");
    for (mode, _, (sql, stats)) in &results[1..] {
        assert_eq!(
            sql, ref_sql,
            "{mode:?}: SQL dump diverges from TextSerial reference"
        );
        assert_eq!(
            stats, ref_stats,
            "{mode:?}: session stats diverge from TextSerial reference"
        );
    }
    // The service-side figures: tuples and cached scripts agree across
    // every mode; request counts agree across every mode that sends one
    // request per command, while the batched mode collapses the 24
    // pushes into a single request.
    let (ref_requests, ref_tuples, ref_scripts) = service_line(addr, &results[0].1);
    for (mode, session, _) in &results[1..] {
        let (requests, tuples, scripts) = service_line(addr, session);
        assert_eq!(tuples, ref_tuples, "{mode:?}: tuples-in diverges");
        assert_eq!(scripts, ref_scripts, "{mode:?}: scripts-cached diverges");
        if *mode == Mode::BinaryBatched {
            assert_eq!(
                requests,
                ref_requests - 23,
                "{mode:?}: one PUSH_BATCH should replace 24 PUSH requests"
            );
        } else {
            assert_eq!(requests, ref_requests, "{mode:?}: request count diverges");
        }
    }
    handle.shutdown();
}

/// Serial text and serial binary issue the *same* request sequence, so
/// even the server-wide request counter must agree: HELLO is negotiation,
/// not a request, and must not tilt the totals.
#[test]
fn request_counters_match_across_protocols() {
    let count_requests = |binary: bool| -> u64 {
        let handle = Server::start(ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut c = connect(handle.local_addr(), binary);
        c.open("t", SCENARIO).unwrap().into_ok().unwrap();
        c.feed("t", "Dep: d0, b0").unwrap().into_ok().unwrap();
        for line in student_lines(8) {
            c.push("t", &line).unwrap().into_ok().unwrap();
        }
        let body = c.metrics().unwrap().into_ok().unwrap().body();
        let total = body
            .lines()
            .find(|l| l.starts_with("sedex_service_requests_total "))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or_else(|| panic!("requests counter missing in:\n{body}"));
        // The per-protocol family attributes every request to the
        // negotiated protocol of the connection that sent it.
        let labeled = |proto: &str| -> u64 {
            body.lines()
                .find(|l| {
                    l.starts_with(&format!(
                        "sedex_service_proto_requests_total{{proto=\"{proto}\"}}"
                    ))
                })
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0)
        };
        let (text, bin) = (labeled("text"), labeled("binary"));
        assert_eq!(
            text + bin,
            total,
            "labeled protocol counters must partition the total"
        );
        if binary {
            assert_eq!(text, 0, "binary client must not register text requests");
        } else {
            assert_eq!(bin, 0, "text client must not register binary requests");
        }
        handle.shutdown();
        total
    };
    assert_eq!(count_requests(false), count_requests(true));
}

/// Durable parity: a scenario ingested over binary (pipelined + batched)
/// recovers from its write-ahead log to the exact state a text ingest
/// recovers to.
#[test]
fn durable_state_is_protocol_independent() {
    let recovered_sql = |dir: &Path, mode: Mode| -> String {
        let cfg = || ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            data_dir: Some(dir.to_path_buf()),
            ..ServerConfig::default()
        };
        let handle = Server::start(cfg()).unwrap();
        run_scenario(handle.local_addr(), mode, "tenant");
        handle.shutdown();
        // Reopen from the durable log alone and dump what survived.
        let handle = Server::start(cfg()).unwrap();
        let mut c = connect(handle.local_addr(), false);
        let sql = c.sql("tenant").unwrap().into_ok().unwrap().body();
        handle.shutdown();
        sql
    };

    let text_dir = tempdir("parity-text");
    let bin_dir = tempdir("parity-bin");
    let batch_dir = tempdir("parity-batch");
    let text = recovered_sql(&text_dir, Mode::TextSerial);
    let bin = recovered_sql(&bin_dir, Mode::BinaryPipelined);
    let batch = recovered_sql(&batch_dir, Mode::BinaryBatched);
    assert!(text.contains("INSERT INTO Stu"), "{text}");
    assert_eq!(text, bin, "binary-pipelined recovery diverges from text");
    assert_eq!(text, batch, "binary-batched recovery diverges from text");
    for d in [text_dir, bin_dir, batch_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sedex-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
