//! Chaos tests: run real client/server exchanges under a seeded
//! [`FaultPlan`] — fsync failures, connection drops, injected panics,
//! latency — and check the robustness contract: retrying clients converge
//! to the fault-free state, a panic quarantines exactly one session,
//! deadlines and shedding answer instead of hanging, and the same seed
//! reproduces the same fault schedule and the same outcome.

use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use sedex_durable::{FaultKind, FaultPlan, FaultPoint, FsyncPolicy};
use sedex_service::{Client, ClientConfig, Server, ServerConfig};

const SCENARIO: &str = "\
[source]
Dep(dname*, building)
Student(sname*, program, dep->Dep)

[target]
Stu(student*, prog, dpt)

[correspondences]
sname <-> student
program <-> prog
dep <-> dpt

[data]
Dep: d1, b1
";

const PUSHES: usize = 20;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sedex-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn retrying_client(addr: std::net::SocketAddr) -> Client {
    Client::connect_with(
        addr,
        ClientConfig {
            max_attempts: 8,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(100),
            ..ClientConfig::default()
        },
    )
    .unwrap()
}

/// Open a session, push the university workload, return the final SQL dump.
fn run_workload(c: &mut Client) -> String {
    c.open("t1", SCENARIO).unwrap().into_ok().unwrap();
    for i in 0..PUSHES {
        c.push("t1", &format!("Student: s{i}, p{}, d1", i % 3))
            .unwrap()
            .into_ok()
            .unwrap();
    }
    c.sql("t1").unwrap().into_ok().unwrap().body()
}

fn durable_config(data_dir: &Path, plan: Option<Arc<FaultPlan>>) -> ServerConfig {
    ServerConfig {
        workers: 2,
        shards: 4,
        idle_ttl: None,
        data_dir: Some(data_dir.to_path_buf()),
        fsync: FsyncPolicy::Always, // every append fsyncs → WalFsync rules fire
        snapshot_every: 0,
        fault_plan: plan,
        ..ServerConfig::default()
    }
}

#[test]
fn chaotic_run_converges_to_the_fault_free_state() {
    // The reference: the same workload with no faults at all.
    let clean_dir = tmp_dir("clean");
    let handle = Server::start(durable_config(&clean_dir, None)).unwrap();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    let sql_clean = run_workload(&mut c);
    assert_eq!(c.retries(), 0, "the fault-free run should not retry");
    drop(c);
    handle.shutdown();

    // The chaos run: seeded fsync failures (the append itself survives —
    // availability over strict durability, and the frame is already on
    // disk) plus connection faults in both directions, which the client
    // heals by reconnect-and-resend against the idempotent verbs.
    let seed = 0xC4A0_5EED;
    let plan = Arc::new(
        FaultPlan::new()
            .seeded_rules(
                seed,
                FaultPoint::WalFsync,
                FaultKind::Error(ErrorKind::Interrupted),
                4,
                1,
                20,
            )
            .seeded_rules(seed, FaultPoint::ConnWrite, FaultKind::ShortWrite, 3, 2, 20)
            .seeded_rules(
                seed,
                FaultPoint::ConnRead,
                FaultKind::Error(ErrorKind::ConnectionReset),
                3,
                2,
                30,
            ),
    );
    let chaos_dir = tmp_dir("chaos");
    let handle = Server::start(durable_config(&chaos_dir, Some(Arc::clone(&plan)))).unwrap();
    let mut c = retrying_client(handle.local_addr());
    let sql_chaos = run_workload(&mut c);

    assert!(plan.injected_total() > 0, "no fault ever fired");
    assert!(
        plan.injected(FaultPoint::ConnWrite) + plan.injected(FaultPoint::ConnRead) > 0,
        "no connection fault fired"
    );
    assert!(c.retries() > 0, "faults fired but the client never retried");
    assert_eq!(
        sql_chaos, sql_clean,
        "retried chaos run diverged from the fault-free state"
    );
    drop(c);

    // Crash the chaotic server without a checkpoint: despite the injected
    // fsync failures the WAL frames are on disk, so a clean restart on the
    // same directory recovers the identical state.
    handle.abort();
    let handle = Server::start(durable_config(&chaos_dir, None)).unwrap();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    let sql_recovered = c.sql("t1").unwrap().into_ok().unwrap().body();
    assert_eq!(
        sql_recovered, sql_clean,
        "recovery after the chaos run diverged"
    );
    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn same_seed_reproduces_the_same_faults_and_the_same_outcome() {
    // Two servers, two identical plans, one deterministic single-threaded
    // request sequence each: the fault schedule *and* every reply must
    // match. No durability and no timing faults — pure determinism.
    let seed = 0xD1CE_0001;
    let mk_plan = || {
        Arc::new(
            FaultPlan::new()
                .seeded_rules(seed, FaultPoint::ConnWrite, FaultKind::ShortWrite, 3, 2, 15)
                .seeded_rules(
                    seed,
                    FaultPoint::SessionWork,
                    FaultKind::Error(ErrorKind::Other),
                    2,
                    2,
                    12,
                ),
        )
    };
    let run = |plan: Arc<FaultPlan>| -> Vec<String> {
        let handle = Server::start(ServerConfig {
            workers: 1,
            idle_ttl: None,
            fault_plan: Some(Arc::clone(&plan)),
            ..ServerConfig::default()
        })
        .unwrap();
        let mut c = retrying_client(handle.local_addr());
        let mut outcomes = Vec::new();
        let mut note = |r: std::io::Result<sedex_service::Reply>| match r {
            Ok(reply) => outcomes.push(format!("{} {}", reply.ok, reply.head)),
            Err(e) => outcomes.push(format!("io {}", e.kind())),
        };
        note(c.open("t1", SCENARIO));
        for i in 0..10 {
            note(c.push("t1", &format!("Student: s{i}, p{}, d1", i % 3)));
        }
        note(c.sql("t1"));
        drop(c);
        handle.shutdown();
        outcomes
    };

    let (plan_a, plan_b) = (mk_plan(), mk_plan());
    assert_eq!(plan_a.rules(), plan_b.rules(), "seeded schedules differ");
    let out_a = run(Arc::clone(&plan_a));
    let out_b = run(Arc::clone(&plan_b));
    assert!(plan_a.injected_total() > 0, "no fault ever fired");
    assert_eq!(
        plan_a.fired(),
        plan_b.fired(),
        "same seed fired different fault sequences"
    );
    assert_eq!(out_a, out_b, "same fault sequence, different outcomes");
}

#[test]
fn a_panicking_request_quarantines_only_its_session() {
    // SessionWork op #3 panics: that is the second push to session `a`
    // (ops: push a, push b, push a). The worker catches the unwind, the
    // poisoned mutex quarantines `a`, and `b` never notices.
    let plan = Arc::new(FaultPlan::new().rule(FaultPoint::SessionWork, 3, FaultKind::Panic));
    let handle = Server::start(ServerConfig {
        workers: 1,
        idle_ttl: None,
        fault_plan: Some(plan),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    c.open("a", SCENARIO).unwrap().into_ok().unwrap();
    c.open("b", SCENARIO).unwrap().into_ok().unwrap();
    c.push("a", "Student: s1, p1, d1")
        .unwrap()
        .into_ok()
        .unwrap();
    c.push("b", "Student: s1, p1, d1")
        .unwrap()
        .into_ok()
        .unwrap();

    let boom = c.push("a", "Student: s2, p2, d1").unwrap();
    assert!(!boom.ok, "the panicking request should be answered ERR");
    assert!(boom.head.contains("POISONED"), "{}", boom.head);

    // `a` is quarantined from here on; every other session keeps serving.
    let again = c.push("a", "Student: s3, p3, d1").unwrap();
    assert!(
        !again.ok && again.head.contains("POISONED"),
        "{}",
        again.head
    );
    c.push("b", "Student: s2, p2, d1")
        .unwrap()
        .into_ok()
        .unwrap();
    let sql_b = c.sql("b").unwrap().into_ok().unwrap().body();
    assert!(sql_b.contains("s2"), "session b lost work: {sql_b}");

    let stats = c.stats(None).unwrap().into_ok().unwrap();
    assert!(
        stats.lines.iter().any(|l| l.contains("1 panics")),
        "{:?}",
        stats.lines
    );

    // CLOSE forgives the quarantine (the tenant is discarded anyway), so
    // the name can be reused with a fresh session.
    c.close("a").unwrap().into_ok().unwrap();
    c.open("a", SCENARIO).unwrap().into_ok().unwrap();
    c.push("a", "Student: s9, p9, d1")
        .unwrap()
        .into_ok()
        .unwrap();
    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn a_request_over_its_deadline_is_answered_err_deadline() {
    // The first session operation stalls 600ms against a 100ms budget: the
    // connection thread answers `ERR DEADLINE` instead of waiting.
    let plan = Arc::new(FaultPlan::new().rule(
        FaultPoint::SessionWork,
        1,
        FaultKind::Latency(Duration::from_millis(600)),
    ));
    let handle = Server::start(ServerConfig {
        workers: 1,
        idle_ttl: None,
        request_timeout: Some(Duration::from_millis(100)),
        fault_plan: Some(plan),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    c.open("t1", SCENARIO).unwrap().into_ok().unwrap();

    let slow = c.push("t1", "Student: s0, p0, d1").unwrap();
    assert!(!slow.ok, "an over-deadline request must not be answered OK");
    assert!(slow.head.contains("DEADLINE"), "{}", slow.head);

    // The server closed that connection; once the stall drains out of the
    // (single) worker, the client reconnects and normal service resumes.
    std::thread::sleep(Duration::from_millis(700));
    c.push("t1", "Student: s1, p1, d1")
        .unwrap()
        .into_ok()
        .unwrap();
    let stats = c.stats(None).unwrap().into_ok().unwrap();
    assert!(
        stats
            .lines
            .iter()
            .any(|l| l.contains("1 deadline timeouts")),
        "{:?}",
        stats.lines
    );
    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn overload_is_shed_with_busy_and_healed_by_retry() {
    // One worker, a queue allowed one waiter: while a 700ms request holds
    // the worker and another sits queued, a third is shed with
    // `ERR BUSY retry-after=<ms>` — and a retrying client rides the hint
    // out of the congestion.
    let plan = Arc::new(FaultPlan::new().rule(
        FaultPoint::SessionWork,
        2,
        FaultKind::Latency(Duration::from_millis(700)),
    ));
    let handle = Server::start(ServerConfig {
        workers: 1,
        shed_queue_depth: 1,
        idle_ttl: None,
        fault_plan: Some(plan),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let mut c = Client::connect(addr).unwrap();
    c.open("t1", SCENARIO).unwrap().into_ok().unwrap();
    c.push("t1", "Student: s0, p0, d1")
        .unwrap()
        .into_ok()
        .unwrap();

    // Occupy the worker (SessionWork op #2 stalls 700ms)…
    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.push("t1", "Student: s1, p1, d1").unwrap().into_ok()
    });
    std::thread::sleep(Duration::from_millis(150));
    // …and fill the one allowed queue slot.
    let queued = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.feed("t1", "Student: s2, p2, d1").unwrap().into_ok()
    });
    std::thread::sleep(Duration::from_millis(100));

    // A non-retrying client sees the shed verbatim.
    let mut one_shot = Client::connect_with(
        addr,
        ClientConfig {
            max_attempts: 1,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let busy = one_shot.push("t1", "Student: s3, p3, d1").unwrap();
    assert!(!busy.ok, "an overloaded server must shed, not queue");
    assert!(busy.head.contains("BUSY retry-after="), "{}", busy.head);

    // A retrying client backs off past the congestion and succeeds.
    let mut patient = retrying_client(addr);
    patient
        .push("t1", "Student: s4, p4, d1")
        .unwrap()
        .into_ok()
        .unwrap();
    assert!(patient.retries() > 0, "the shed should have forced a retry");

    slow.join().unwrap().unwrap();
    queued.join().unwrap().unwrap();
    let stats = c.stats(None).unwrap().into_ok().unwrap();
    assert!(
        stats
            .lines
            .iter()
            .any(|l| l.contains("robustness:") && !l.contains(" 0 shed")),
        "{:?}",
        stats.lines
    );
    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn shutdown_drains_the_in_flight_request() {
    // A 400ms request is mid-flight when SHUTDOWN arrives: the worker pool
    // drains it — the slow client still gets its `OK` — and then the
    // server exits.
    let plan = Arc::new(FaultPlan::new().rule(
        FaultPoint::SessionWork,
        2,
        FaultKind::Latency(Duration::from_millis(400)),
    ));
    let handle = Server::start(ServerConfig {
        workers: 1,
        idle_ttl: None,
        fault_plan: Some(plan),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let mut c = Client::connect(addr).unwrap();
    c.open("t1", SCENARIO).unwrap().into_ok().unwrap();
    c.push("t1", "Student: s0, p0, d1")
        .unwrap()
        .into_ok()
        .unwrap();

    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.push("t1", "Student: s1, p1, d1").unwrap().into_ok()
    });
    std::thread::sleep(Duration::from_millis(100));
    c.shutdown().unwrap().into_ok().unwrap();

    let drained = slow.join().unwrap().unwrap();
    assert!(
        drained.head.contains("pushed"),
        "in-flight request was dropped by shutdown: {}",
        drained.head
    );
    handle.join();
}
