//! Connection-scale test: the reactor multiplexes every connection onto
//! one thread, so holding ten thousand idle connections must not grow
//! the server process's thread count at all — and the server must keep
//! answering requests from under the pile.
//!
//! This is the acceptance test for the readiness-reactor tentpole: the
//! old design spent one OS thread per connection (10k idle connections
//! = 10k parked threads); the new design spends zero.
//!
//! The file-descriptor budget forces two processes: this one runs the
//! server (10k accepted sockets), and a re-exec of the same test binary
//! holds the 10k client ends in its own fd table — a single process
//! would need both ends and the environment caps the hard limit.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};

use sedex_service::{Client, Server, ServerConfig};

const IDLE_CONNS: usize = 10_000;

/// Threads of the current process, from /proc (Linux only — the test
/// skips the thread assertion elsewhere; the reactor itself is portable
/// via poll(2)).
fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// Child half: when re-executed with `SEDEX_LOAD_ADDR` set, this "test"
/// opens the connection pile, reports readiness on stdout, and holds
/// every socket until the parent closes its stdin. Without the variable
/// (the normal test run) it does nothing.
#[test]
fn load_child_holds_connections() {
    let Ok(addr) = std::env::var("SEDEX_LOAD_ADDR") else {
        return;
    };
    let conns: usize = std::env::var("SEDEX_LOAD_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(IDLE_CONNS);
    sedex_net::sys::raise_nofile_limit(conns as u64 + 512).expect("child fd limit");
    let mut pile = Vec::with_capacity(conns);
    for i in 0..conns {
        match TcpStream::connect(&addr) {
            Ok(s) => pile.push(s),
            Err(e) => panic!("child connect {i} failed: {e}"),
        }
    }
    // One held connection proves the pile is served, not just parked:
    // a request from the middle of it must be answered.
    let poke = pile.last_mut().unwrap();
    poke.write_all(b"STATS\n").unwrap();
    let mut reader = BufReader::new(poke.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("OK"), "idle connection unserved: {line}");

    // Stdout is a pipe here, so it is block-buffered — flush, or the
    // readiness line never reaches the parent.
    println!("LOAD_CHILD_READY {}", pile.len());
    std::io::stdout().flush().unwrap();
    // Hold everything until the parent hangs up.
    let mut buf = String::new();
    let _ = std::io::stdin().read_line(&mut buf);
    drop(pile);
}

#[test]
fn ten_thousand_idle_connections_cost_zero_threads() {
    // Accepted sockets live here; client ends live in the child.
    let limit =
        sedex_net::sys::raise_nofile_limit(IDLE_CONNS as u64 + 1024).expect("raise nofile limit");
    assert!(
        limit >= IDLE_CONNS as u64 + 256,
        "fd limit too low for the test: {limit}"
    );

    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        max_conns: IDLE_CONNS + 64,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();

    let before = process_threads();

    let exe = std::env::current_exe().unwrap();
    let mut child = Command::new(exe)
        .args([
            "load_child_holds_connections",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env("SEDEX_LOAD_ADDR", addr.to_string())
        .env("SEDEX_LOAD_CONNS", IDLE_CONNS.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn connection-holder child");
    let mut child_out = BufReader::new(child.stdout.take().unwrap());
    let held: usize = loop {
        let mut line = String::new();
        if child_out.read_line(&mut line).unwrap() == 0 {
            let _ = child.kill();
            panic!("child exited before reporting readiness");
        }
        // The marker can share a line with libtest's unterminated
        // `test … ` progress header — match it anywhere.
        if let Some(pos) = line.find("LOAD_CHILD_READY ") {
            let rest = line[pos + "LOAD_CHILD_READY ".len()..].trim();
            break rest.parse().unwrap();
        }
    };
    assert_eq!(held, IDLE_CONNS, "child holds fewer connections than asked");

    // The server saw the whole pile (plus our control connection).
    let mut c = Client::connect(addr).unwrap();
    let stats = c.stats(None).unwrap().into_ok().unwrap();
    let open: i64 = stats
        .lines
        .iter()
        .find_map(|l| {
            l.split("open connections: ")
                .nth(1)
                .and_then(|r| r.split(' ').next())
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or_else(|| panic!("open-connections gauge missing: {:?}", stats.lines));
    assert!(
        open >= IDLE_CONNS as i64,
        "server only registered {open} of {IDLE_CONNS} idle connections"
    );

    // The whole pile is held without a single extra server-side thread.
    if let (Some(before), Some(during)) = (before, process_threads()) {
        assert!(
            during <= before + 1,
            "thread count grew under connection load: {before} -> {during} \
             (per-connection threads are back?)"
        );
    }

    // And the server still does real work from under it.
    c.open(
        "buried",
        "[source]\nS(a*)\n[target]\nT(b*)\n[correspondences]\na <-> b\n",
    )
    .unwrap()
    .into_ok()
    .unwrap();
    c.push("buried", "S: v1").unwrap().into_ok().unwrap();
    let sql = c.sql("buried").unwrap().into_ok().unwrap().body();
    assert!(sql.contains("INSERT INTO T"), "{sql}");

    // Release the pile and shut down.
    drop(child.stdin.take());
    let status = child.wait().unwrap();
    assert!(status.success(), "connection-holder child failed: {status}");
    handle.shutdown();
}
