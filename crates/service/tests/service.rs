//! End-to-end tests: a real server on an ephemeral port, real TCP clients.

use std::time::Duration;

use sedex_core::{SedexConfig, SedexSession};
use sedex_scenarios::textfmt;
use sedex_service::server::sql_dump;
use sedex_service::{Client, Server, ServerConfig};

const SCENARIO: &str = "\
[source]
Dep(dname*, building)
Student(sname*, program, dep->Dep)

[target]
Stu(student*, prog, dpt)

[correspondences]
sname <-> student
program <-> prog
dep <-> dpt
";

fn start_server() -> sedex_service::ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("server start")
}

/// The in-process reference: same scenario, same arrival order, one
/// thread — what each tenant's target must be byte-identical to.
fn reference_sql(dim: &str, pushes: &[String]) -> String {
    let file = textfmt::parse_scenario(SCENARIO).unwrap();
    let s = file.scenario;
    let mut session =
        SedexSession::new(SedexConfig::default(), s.source, s.target, s.sigma).unwrap();
    let (rel, tuple) = textfmt::parse_data_line(dim, 1).unwrap();
    session.feed(&rel, tuple).unwrap();
    for line in pushes {
        let (rel, tuple) = textfmt::parse_data_line(line, 1).unwrap();
        session.exchange_tuple(&rel, tuple).unwrap();
    }
    sql_dump(session.target())
}

#[test]
fn open_push_sql_close_over_the_wire() {
    let handle = start_server();
    let mut c = Client::connect(handle.local_addr()).unwrap();

    let r = c.open("t1", SCENARIO).unwrap().into_ok().unwrap();
    assert!(r.head.contains("opened t1"), "{}", r.head);

    c.feed("t1", "Dep: d1, b1").unwrap().into_ok().unwrap();
    let r = c
        .push("t1", "Student: s1, p1, d1")
        .unwrap()
        .into_ok()
        .unwrap();
    assert!(
        r.head.contains("scripts 1 generated / 0 reused"),
        "{}",
        r.head
    );

    let sql = c.sql("t1").unwrap().into_ok().unwrap().body();
    assert!(sql.contains("INSERT INTO Stu"), "{sql}");
    assert!(sql.contains("'s1', 'p1', 'd1'"), "{sql}");

    let r = c.close("t1").unwrap().into_ok().unwrap();
    assert!(r.head.contains("closed t1"), "{}", r.head);
    // Closed means gone.
    assert!(!c.sql("t1").unwrap().ok);

    handle.shutdown();
}

#[test]
fn script_reuse_is_observable_over_the_wire() {
    let handle = start_server();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    c.open("reuse", SCENARIO).unwrap().into_ok().unwrap();
    c.feed("reuse", "Dep: d1, b1").unwrap().into_ok().unwrap();

    let mut last_reused = None;
    for i in 0..10 {
        let r = c
            .push("reuse", &format!("Student: s{i}, p{i}, d1"))
            .unwrap()
            .into_ok()
            .unwrap();
        // Head looks like: pushed Student | scripts 1 generated / N reused | …
        let reused: u64 = r
            .head
            .split("generated / ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unparseable push reply: {}", r.head));
        if let Some(prev) = last_reused {
            assert!(
                reused > prev,
                "reuse counter must grow: {} -> {reused}",
                prev
            );
        }
        last_reused = Some(reused);
    }
    // 1 script generated for the shape, 9 reuses after the first push.
    assert_eq!(last_reused, Some(9));
    handle.shutdown();
}

#[test]
fn four_concurrent_clients_match_in_process_sessions() {
    let handle = start_server();
    let addr = handle.local_addr();
    const CLIENTS: usize = 5;
    const PUSHES: usize = 40;

    let wire_sql: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                s.spawn(move || {
                    let name = format!("tenant-{i}");
                    let mut c = Client::connect(addr).unwrap();
                    c.open(&name, SCENARIO).unwrap().into_ok().unwrap();
                    c.feed(&name, &format!("Dep: d{i}, b{i}"))
                        .unwrap()
                        .into_ok()
                        .unwrap();
                    for j in 0..PUSHES {
                        // Every second push has a null dep: two tuple-tree
                        // shapes per tenant, so reuse and generation
                        // interleave under concurrency.
                        let dep = if j % 2 == 0 {
                            format!("d{i}")
                        } else {
                            "_".into()
                        };
                        c.push(&name, &format!("Student: s{i}-{j}, p{j}, {dep}"))
                            .unwrap()
                            .into_ok()
                            .unwrap();
                    }
                    let sql = c.sql(&name).unwrap().into_ok().unwrap().body();
                    c.close(&name).unwrap().into_ok().unwrap();
                    sql
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, got) in wire_sql.iter().enumerate() {
        let dim = format!("Dep: d{i}, b{i}");
        let pushes: Vec<String> = (0..PUSHES)
            .map(|j| {
                let dep = if j % 2 == 0 {
                    format!("d{i}")
                } else {
                    "_".into()
                };
                format!("Student: s{i}-{j}, p{j}, {dep}")
            })
            .collect();
        let want = reference_sql(&dim, &pushes);
        assert_eq!(
            got.trim_end(),
            want.trim_end(),
            "tenant-{i}: server target diverges from in-process session"
        );
    }
    handle.shutdown();
}

#[test]
fn stats_cover_server_and_sessions() {
    let handle = start_server();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    c.open("alpha", SCENARIO).unwrap().into_ok().unwrap();
    c.feed("alpha", "Dep: d1, b1").unwrap().into_ok().unwrap();
    c.push("alpha", "Student: s1, p1, d1")
        .unwrap()
        .into_ok()
        .unwrap();

    let server = c.stats(None).unwrap().into_ok().unwrap();
    assert!(server.head.contains("1 sessions"), "{}", server.head);
    assert!(
        server.lines.iter().any(|l| l.starts_with("alpha:")),
        "per-session line missing: {:?}",
        server.lines
    );

    let sess = c.stats(Some("alpha")).unwrap().into_ok().unwrap();
    let body = sess.body();
    assert!(body.contains("scripts: 1 generated"), "{body}");
    assert!(body.contains("scripts cached"), "{body}");
    handle.shutdown();
}

/// Tentpole acceptance: after one exchange, `METRICS` returns valid
/// Prometheus exposition with a non-zero `sedex_exchange_total` and a
/// populated latency histogram.
#[test]
fn metrics_exposition_after_one_exchange() {
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        metrics: true,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    c.open("m1", SCENARIO).unwrap().into_ok().unwrap();
    c.feed("m1", "Dep: d1, b1").unwrap().into_ok().unwrap();
    c.push("m1", "Student: s1, p1, d1")
        .unwrap()
        .into_ok()
        .unwrap();

    let body = c.metrics().unwrap().into_ok().unwrap().body();
    // Structurally valid exposition: HELP/TYPE pairs, counter lines.
    assert!(
        body.contains("# TYPE sedex_exchange_total counter"),
        "{body}"
    );
    assert!(body.contains("sedex_exchange_total 1"), "{body}");
    // The engine-side latency histogram is populated.
    assert!(
        body.contains("# TYPE sedex_exchange_seconds histogram"),
        "{body}"
    );
    assert!(
        body.contains("sedex_exchange_seconds_bucket{le=\"+Inf\"} 1"),
        "{body}"
    );
    assert!(body.contains("sedex_exchange_seconds_count 1"), "{body}");
    // Phase timings, repository lookups and the service-side series exist.
    assert!(
        body.contains("sedex_phase_seconds_bucket{phase=\"match\""),
        "{body}"
    );
    assert!(
        body.contains("sedex_repo_lookup_total{result=\"miss\"} 1"),
        "{body}"
    );
    assert!(body.contains("sedex_service_tuples_in_total 2"), "{body}");
    assert!(
        body.contains("# TYPE sedex_request_seconds histogram"),
        "{body}"
    );
    assert!(body.contains("sedex_sessions_live"), "{body}");
    // Every non-comment line is `name{labels} value` with a numeric value.
    for line in body.lines().filter(|l| !l.starts_with('#')) {
        let value = line.rsplit(' ').next().unwrap();
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric sample value in `{line}`"
        );
    }
    handle.shutdown();
}

/// Without `metrics`, the engine series are absent but the service-level
/// series (and `STATS`) still render from the registry.
#[test]
fn metrics_without_session_tracing_still_serves_service_series() {
    let handle = start_server();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    c.open("m2", SCENARIO).unwrap().into_ok().unwrap();
    c.push("m2", "Student: s1, p1, _")
        .unwrap()
        .into_ok()
        .unwrap();
    let body = c.metrics().unwrap().into_ok().unwrap().body();
    assert!(!body.contains("sedex_exchange_total"), "{body}");
    assert!(body.contains("sedex_service_requests_total"), "{body}");
    let stats = c.stats(None).unwrap().into_ok().unwrap();
    assert!(
        stats
            .lines
            .iter()
            .any(|l| l.starts_with("load: queue depth")),
        "load line missing: {:?}",
        stats.lines
    );
    assert!(
        stats.lines.iter().any(|l| l.starts_with("latency: p50")),
        "latency line missing: {:?}",
        stats.lines
    );
    handle.shutdown();
}

#[test]
fn flush_exchanges_fed_tuples() {
    let handle = start_server();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    c.open("f", SCENARIO).unwrap().into_ok().unwrap();
    c.feed("f", "Dep: d1, b1").unwrap().into_ok().unwrap();
    c.feed("f", "Student: s1, p1, d1")
        .unwrap()
        .into_ok()
        .unwrap();
    // Nothing exchanged yet.
    assert!(!c
        .sql("f")
        .unwrap()
        .into_ok()
        .unwrap()
        .body()
        .contains("Stu"));
    c.flush_session("f").unwrap().into_ok().unwrap();
    let sql = c.sql("f").unwrap().into_ok().unwrap().body();
    assert!(sql.contains("INSERT INTO Stu"), "{sql}");
    handle.shutdown();
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let handle = start_server();
    let mut c = Client::connect(handle.local_addr()).unwrap();

    assert!(!c.request("FROBNICATE").unwrap().ok);
    assert!(!c.push("ghost", "Student: s1, p1, _").unwrap().ok);
    assert!(!c.request("PUSH bad-no-data").unwrap().ok);
    let r = c.open("dup", SCENARIO).unwrap();
    assert!(r.ok);
    assert!(!c.open("dup", SCENARIO).unwrap().ok);
    // Bad scenario body: parse error comes back, session not created.
    assert!(!c.open("broken", "Student(sname*)\n").unwrap().ok);
    assert!(!c.sql("broken").unwrap().ok);
    // The connection is still healthy after all those errors.
    assert!(c.stats(None).unwrap().ok);
    handle.shutdown();
}

#[test]
fn idle_sessions_are_evicted() {
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        idle_ttl: Some(Duration::from_millis(150)),
        sweep_interval: Duration::from_millis(30),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    c.open("ephemeral", SCENARIO).unwrap().into_ok().unwrap();
    assert!(c.sql("ephemeral").unwrap().ok);
    std::thread::sleep(Duration::from_millis(600));
    assert!(!c.sql("ephemeral").unwrap().ok, "session should be evicted");
    let stats = c.stats(None).unwrap().into_ok().unwrap();
    assert!(
        stats.lines[0].contains("1 evicted"),
        "eviction counter missing: {:?}",
        stats.lines
    );
    handle.shutdown();
}

#[test]
fn wire_shutdown_drains_and_exits() {
    let handle = start_server();
    let addr = handle.local_addr();
    let mut c = Client::connect(addr).unwrap();
    c.open("last", SCENARIO).unwrap().into_ok().unwrap();
    let r = c.shutdown().unwrap().into_ok().unwrap();
    assert!(r.head.contains("shutting down"), "{}", r.head);
    // join() must return: accept loop stops, workers drain.
    handle.join();
    // New connections are refused once the server is gone.
    assert!(
        Client::connect(addr).is_err() || {
            // The OS may accept briefly on some platforms; a request must fail.
            let mut c2 = Client::connect(addr).unwrap();
            c2.stats(None).is_err()
        }
    );
}
