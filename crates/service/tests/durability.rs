//! Durability integration tests: kill a durable server and check that a
//! restart on the same `--data-dir` recovers sessions — warm script
//! repository included — and that a clean shutdown leaves no replayable
//! WAL tail.

use std::path::{Path, PathBuf};
use std::time::Duration;

use sedex_durable::{recover_data_dir, FsyncPolicy};
use sedex_service::{Client, Server, ServerConfig};

const SCENARIO: &str = "\
[source]
Dep(dname*, building)
Student(sname*, program, dep->Dep)

[target]
Stu(student*, prog, dpt)

[correspondences]
sname <-> student
program <-> prog
dep <-> dpt

[data]
Dep: d1, b1
";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sedex-durab-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(data_dir: &Path) -> ServerConfig {
    ServerConfig {
        workers: 2,
        shards: 4,
        idle_ttl: None,
        data_dir: Some(data_dir.to_path_buf()),
        fsync: FsyncPolicy::Off,
        snapshot_every: 0, // checkpoint only on FLUSH / clean shutdown
        ..ServerConfig::default()
    }
}

#[test]
fn killed_server_recovers_sessions_and_warm_repository() {
    let data_dir = tmp_dir("kill");

    // First life: open a session, push ten same-shape tuples, remember the
    // exact target state — then die without a final checkpoint.
    let handle = Server::start(durable_config(&data_dir)).unwrap();
    let addr = handle.local_addr();
    let mut c = Client::connect(addr).unwrap();
    c.open("t1", SCENARIO).unwrap().into_ok().unwrap();
    for i in 0..10 {
        let r = c
            .push("t1", &format!("Student: s{i}, p{i}, d1"))
            .unwrap()
            .into_ok()
            .unwrap();
        assert!(r.head.contains("scripts 1 generated"), "{}", r.head);
    }
    let sql_before = c.sql("t1").unwrap().into_ok().unwrap().body();
    drop(c);
    handle.abort(); // SIGKILL-equivalent: WAL survives, no snapshot

    // Second life, same directory: the session must be there again.
    let handle = Server::start(durable_config(&data_dir)).unwrap();
    let mut c = Client::connect(handle.local_addr()).unwrap();

    let stats = c.stats(None).unwrap().into_ok().unwrap();
    let recovered_line = stats
        .lines
        .iter()
        .find(|l| l.contains("recovered:"))
        .expect("STATS should report recovery");
    assert!(
        recovered_line.contains("recovered: 1 sessions"),
        "{recovered_line}"
    );

    // Byte-for-byte target state.
    let sql_after = c.sql("t1").unwrap().into_ok().unwrap().body();
    assert_eq!(sql_after, sql_before);

    // Warm start: the repository survived, so an eleventh same-shape push
    // reuses the cached script instead of regenerating (`1 generated`
    // means the cumulative count did not move).
    let r = c
        .push("t1", "Student: s10, p10, d1")
        .unwrap()
        .into_ok()
        .unwrap();
    assert!(
        r.head.contains("scripts 1 generated / 10 reused"),
        "{}",
        r.head
    );

    // The per-session view also carries the recovered request history.
    let stats = c.stats(Some("t1")).unwrap().into_ok().unwrap();
    assert!(
        stats.lines.iter().any(|l| l.contains("11 tuples in")),
        "{:?}",
        stats.lines
    );
    drop(c);
    handle.shutdown();
}

#[test]
fn clean_shutdown_leaves_no_replayable_tail() {
    let data_dir = tmp_dir("clean");

    let handle = Server::start(durable_config(&data_dir)).unwrap();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    c.open("t1", SCENARIO).unwrap().into_ok().unwrap();
    for i in 0..5 {
        c.push("t1", &format!("Student: s{i}, p{i}, d1"))
            .unwrap()
            .into_ok()
            .unwrap();
    }
    let sql_before = c.sql("t1").unwrap().into_ok().unwrap().body();
    drop(c);
    handle.shutdown(); // clean: final checkpoint + fsync

    // The WAL tail must be empty: everything lives in the snapshots.
    let recovered = recover_data_dir(&data_dir, &sedex_core::SedexConfig::default(), None).unwrap();
    let total_sessions: usize = recovered.iter().map(|(_, s, _)| s.len()).sum();
    let total_replayed: u64 = recovered.iter().map(|(_, _, r)| r.records_replayed).sum();
    assert_eq!(total_sessions, 1);
    assert_eq!(total_replayed, 0, "clean shutdown left a replayable tail");

    // And a restart serves the same state from the snapshot alone.
    let handle = Server::start(durable_config(&data_dir)).unwrap();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    let sql_after = c.sql("t1").unwrap().into_ok().unwrap().body();
    assert_eq!(sql_after, sql_before);
    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn flush_checkpoints_and_survives_kill_without_replay() {
    let data_dir = tmp_dir("flush");

    let handle = Server::start(durable_config(&data_dir)).unwrap();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    c.open("t1", SCENARIO).unwrap().into_ok().unwrap();
    for i in 0..3 {
        c.feed("t1", &format!("Student: f{i}, p, d1"))
            .unwrap()
            .into_ok()
            .unwrap();
    }
    // FLUSH exchanges the pending feeds and checkpoints the shard.
    c.flush_session("t1").unwrap().into_ok().unwrap();
    let sql_before = c.sql("t1").unwrap().into_ok().unwrap().body();
    drop(c);
    handle.abort();

    // Everything up to the FLUSH is in the snapshot; nothing to replay.
    let recovered = recover_data_dir(&data_dir, &sedex_core::SedexConfig::default(), None).unwrap();
    let total_replayed: u64 = recovered.iter().map(|(_, _, r)| r.records_replayed).sum();
    assert_eq!(total_replayed, 0, "FLUSH should have checkpointed");

    let handle = Server::start(durable_config(&data_dir)).unwrap();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    let sql_after = c.sql("t1").unwrap().into_ok().unwrap().body();
    assert_eq!(sql_after, sql_before);
    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn non_durable_server_is_unaffected() {
    // No data dir: no durability machinery, no STATS durability line.
    let handle = Server::start(ServerConfig {
        workers: 1,
        idle_ttl: None,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    c.open("t1", SCENARIO).unwrap().into_ok().unwrap();
    c.push("t1", "Student: s1, p1, d1")
        .unwrap()
        .into_ok()
        .unwrap();
    let stats = c.stats(None).unwrap().into_ok().unwrap();
    assert!(
        !stats.lines.iter().any(|l| l.contains("durability:")),
        "{:?}",
        stats.lines
    );
    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn abort_then_restart_twice_is_stable() {
    // Two crash/recover cycles in a row: recovery output is itself durable
    // input, so the state must survive arbitrarily many generations.
    let data_dir = tmp_dir("twice");
    let mut sql_prev = String::new();
    for life in 0..3 {
        let handle = Server::start(durable_config(&data_dir)).unwrap();
        let mut c = Client::connect(handle.local_addr()).unwrap();
        if life == 0 {
            c.open("t1", SCENARIO).unwrap().into_ok().unwrap();
        } else {
            let sql = c.sql("t1").unwrap().into_ok().unwrap().body();
            assert_eq!(sql, sql_prev, "state drifted on life {life}");
        }
        c.push("t1", &format!("Student: life{life}, p, d1"))
            .unwrap()
            .into_ok()
            .unwrap();
        sql_prev = c.sql("t1").unwrap().into_ok().unwrap().body();
        drop(c);
        handle.abort();
    }
    std::thread::sleep(Duration::from_millis(10));
    let recovered = recover_data_dir(&data_dir, &sedex_core::SedexConfig::default(), None).unwrap();
    let total_sessions: usize = recovered.iter().map(|(_, s, _)| s.len()).sum();
    assert_eq!(total_sessions, 1);
}

#[test]
fn evicted_sessions_stay_dead_after_a_crash() {
    // The idle sweeper logs a Close record for every eviction, so even a
    // crash *without* a checkpoint (abort) must not resurrect a session the
    // TTL policy already dropped.
    let data_dir = tmp_dir("evict");
    let config = ServerConfig {
        idle_ttl: Some(Duration::from_millis(200)),
        sweep_interval: Duration::from_millis(50),
        ..durable_config(&data_dir)
    };

    let handle = Server::start(config.clone()).unwrap();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    c.open("t1", SCENARIO).unwrap().into_ok().unwrap();
    c.push("t1", "Student: s1, p1, d1")
        .unwrap()
        .into_ok()
        .unwrap();

    // Wait for the sweeper to evict the now-idle session. STATS renders a
    // per-session line through `with_tenant`, which counts as a touch — so
    // the poll period must exceed the TTL or polling keeps the session
    // alive forever.
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    loop {
        std::thread::sleep(Duration::from_millis(500));
        let stats = c.stats(None).unwrap().into_ok().unwrap();
        if stats.head.contains("| 0 sessions |") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "session was never evicted: {}",
            stats.head
        );
    }
    drop(c);
    handle.abort(); // crash: no final checkpoint, the WAL tail must carry the eviction

    // Second life: the evicted session must not come back.
    let handle = Server::start(durable_config(&data_dir)).unwrap();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    let stats = c.stats(None).unwrap().into_ok().unwrap();
    assert!(
        stats.head.contains("| 0 sessions |"),
        "evicted session resurrected by recovery: {}",
        stats.head
    );
    let err = c.push("t1", "Student: s2, p2, d1").unwrap();
    assert!(err.into_ok().is_err(), "evicted session accepted a push");
    c.shutdown().unwrap();
    handle.join();
}
