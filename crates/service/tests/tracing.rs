//! Request-lifecycle tracing end to end: the flight recorder, the `TRACE`
//! verb, stage histograms, and the reactor runtime gauges — over both wire
//! protocols.
//!
//! The exec-stage consistency assertions work because the worker feeds the
//! *same* measured duration to `sedex_request_seconds` and to the span's
//! exec stage: summing `exec_us` over the recorded spans must reproduce the
//! histogram's `_sum` (modulo the requests that complete after the METRICS
//! snapshot was rendered).

use std::collections::HashMap;

use sedex_service::{Client, ClientConfig, Server, ServerConfig, ServerHandle};

const SCENARIO: &str = "\
[source]
Dep(dname*, building)
Student(sname*, program, dep->Dep)

[target]
Stu(student*, prog, dpt)

[correspondences]
sname <-> student
program <-> prog
dep <-> dpt
";

fn start_server(trace_buffer: usize) -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        metrics: true,
        trace_buffer,
        ..ServerConfig::default()
    })
    .expect("server start")
}

fn connect(handle: &ServerHandle, binary: bool) -> Client {
    let cfg = ClientConfig {
        binary,
        ..ClientConfig::default()
    };
    Client::connect_with(handle.local_addr(), cfg).expect("client connect")
}

/// Parse one `span id=… proto=… … total_us=…` record into its fields.
fn span_fields(line: &str) -> HashMap<String, String> {
    line.split_whitespace()
        .filter_map(|tok| tok.split_once('='))
        .map(|(k, v)| (k.to_owned(), v.to_owned()))
        .collect()
}

fn micros(span: &HashMap<String, String>, key: &str) -> f64 {
    span.get(key)
        .unwrap_or_else(|| panic!("span missing `{key}`: {span:?}"))
        .parse()
        .unwrap_or_else(|e| panic!("span field `{key}` not a number ({e}): {span:?}"))
}

/// First sample value of `name` in a Prometheus exposition.
fn prom_value(exposition: &str, name: &str) -> f64 {
    exposition
        .lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| {
            l.strip_prefix(name)
                .is_some_and(|rest| rest.starts_with(' ') || rest.starts_with('{'))
        })
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric `{name}` not found in exposition"))
}

#[test]
fn trace_is_refused_and_costs_nothing_when_tracing_is_off() {
    let handle = start_server(0);
    let mut c = connect(&handle, false);

    c.open("t0", SCENARIO).unwrap().into_ok().unwrap();
    c.push("t0", "Student: s1, p1, d1").unwrap();

    let r = c.trace(false, 5).unwrap();
    assert!(!r.ok, "TRACE must fail with tracing off: {}", r.head);
    assert!(r.head.contains("--trace-buffer"), "{}", r.head);

    // Zero-overhead-by-default: no stage histograms were ever created and
    // the loop-latency histogram was never fed — the reactor read no
    // clocks for tracing. The always-on reactor counters still move.
    let m = c.metrics().unwrap().into_ok().unwrap().body();
    assert!(
        !m.contains("sedex_stage_seconds"),
        "stage histograms must not exist untraced"
    );
    assert_eq!(
        prom_value(&m, "sedex_reactor_loop_seconds_count"),
        0.0,
        "loop latency must not be measured untraced"
    );
    assert!(prom_value(&m, "sedex_reactor_polls_total") > 0.0);

    handle.shutdown();
}

/// Drive a handful of requests over one transport and check every tracing
/// surface: span shape, recency order, slow-K order, stage/exec sums
/// against the worker histogram, and the reactor gauges.
fn traced_roundtrip(binary: bool) {
    let proto = if binary { "binary" } else { "text" };
    let handle = start_server(64);
    let mut c = connect(&handle, binary);

    c.open("acme", SCENARIO).unwrap().into_ok().unwrap();
    c.feed("acme", "Dep: d1, b1").unwrap().into_ok().unwrap();
    for i in 0..5 {
        c.push("acme", &format!("Student: s{i}, p1, d1"))
            .unwrap()
            .into_ok()
            .unwrap();
    }
    c.flush_session("acme").unwrap().into_ok().unwrap();

    // Snapshot the worker-side histogram *before* TRACE executes. The
    // METRICS request's own execution is observed only after its reply is
    // rendered, so the snapshot covers exactly the 8 requests above.
    let m = c.metrics().unwrap().into_ok().unwrap().body();
    let hist_sum = prom_value(&m, "sedex_request_seconds_sum");
    let hist_count = prom_value(&m, "sedex_request_seconds_count");
    assert_eq!(hist_count, 8.0, "open + feed + 5 push + flush");

    // Stage histograms exist per proto × stage × verb.
    for stage in ["read", "parse", "queue_wait", "exec", "flush"] {
        let series = format!("proto=\"{proto}\",stage=\"{stage}\",verb=\"PUSH\"");
        assert!(
            m.contains(&series),
            "missing stage series {series} in:\n{m}"
        );
    }
    // Reactor runtime introspection is live.
    assert!(prom_value(&m, "sedex_reactor_polls_total") > 0.0);
    assert!(prom_value(&m, "sedex_reactor_events_total") > 0.0);
    assert!(prom_value(&m, "sedex_reactor_rbuf_highwater_bytes") > 0.0);
    assert!(prom_value(&m, "sedex_reactor_loop_seconds_count") > 0.0);

    // By the time the TRACE request executes, every earlier request's span
    // (the 8 above plus METRICS) has been flushed and recorded; TRACE's
    // own span is still open and must not appear.
    let reply = c.trace(false, 64).unwrap().into_ok().unwrap();
    assert!(reply.head.contains("trace recent"), "{}", reply.head);
    let spans: Vec<_> = reply.lines.iter().map(|l| span_fields(l)).collect();
    assert_eq!(spans.len(), 9, "8 requests + METRICS:\n{}", reply.body());

    for span in &spans {
        for key in [
            "id", "proto", "verb", "session", "read_us", "parse_us", "queue_us", "exec_us",
            "flush_us", "total_us",
        ] {
            assert!(span.contains_key(key), "span missing `{key}`: {span:?}");
        }
        assert_eq!(span["proto"], proto);
        assert!(
            micros(span, "total_us") >= micros(span, "exec_us"),
            "total covers exec: {span:?}"
        );
    }
    // Newest first, ids strictly decreasing and monotonically assigned.
    let ids: Vec<f64> = spans.iter().map(|s| micros(s, "id")).collect();
    assert!(ids.windows(2).all(|w| w[0] > w[1]), "recent order: {ids:?}");
    // Multi-tenant attribution: requests against the session carry its
    // name; METRICS is session-less.
    assert!(spans
        .iter()
        .filter(|s| s["verb"] == "PUSH")
        .all(|s| s["session"] == "acme"));
    assert!(spans
        .iter()
        .filter(|s| s["verb"] == "METRICS")
        .all(|s| s["session"] == "-"));

    // The consistency check from the worker side: exec stages reuse the
    // exact duration observed into `sedex_request_seconds`, so the span
    // sum (excluding METRICS, observed after the snapshot) reproduces the
    // histogram sum to float-print precision.
    let exec_sum: f64 = spans
        .iter()
        .filter(|s| s["verb"] != "METRICS")
        .map(|s| micros(s, "exec_us"))
        .sum::<f64>()
        / 1e6;
    assert!(
        (exec_sum - hist_sum).abs() < 1e-4,
        "span exec sum {exec_sum}s vs histogram sum {hist_sum}s"
    );

    // Slow-K: sorted by total, and a K smaller than the recorded set
    // truncates.
    let reply = c.trace(true, 3).unwrap().into_ok().unwrap();
    assert!(reply.head.contains("trace slow"), "{}", reply.head);
    let slow: Vec<_> = reply.lines.iter().map(|l| span_fields(l)).collect();
    assert_eq!(slow.len(), 3);
    let totals: Vec<f64> = slow.iter().map(|s| micros(s, "total_us")).collect();
    assert!(
        totals.windows(2).all(|w| w[0] >= w[1]),
        "slow order: {totals:?}"
    );

    // STATS surfaces the reactor and tracing lines for operators.
    let stats = c.stats(None).unwrap().into_ok().unwrap().body();
    assert!(stats.contains("reactor:"), "{stats}");
    assert!(stats.contains("tracing on (buffer 64"), "{stats}");

    handle.shutdown();
}

#[test]
fn traced_spans_are_consistent_over_text() {
    traced_roundtrip(false);
}

#[test]
fn traced_spans_are_consistent_over_binary() {
    traced_roundtrip(true);
}

#[test]
fn flight_recorder_wraps_and_keeps_the_newest_spans_over_the_wire() {
    let handle = start_server(4);
    let mut c = connect(&handle, false);

    c.open("acme", SCENARIO).unwrap().into_ok().unwrap();
    for i in 0..10 {
        c.feed("acme", &format!("Student: s{i}, p1, d1"))
            .unwrap()
            .into_ok()
            .unwrap();
    }
    let reply = c.trace(false, 64).unwrap().into_ok().unwrap();
    assert!(
        reply.head.contains("(capacity 4)"),
        "head reports capacity: {}",
        reply.head
    );
    let spans: Vec<_> = reply.lines.iter().map(|l| span_fields(l)).collect();
    assert_eq!(spans.len(), 4, "ring keeps capacity spans");
    // The survivors are the newest: the last FEEDs, not the OPEN.
    assert!(spans.iter().all(|s| s["verb"] == "FEED"), "{spans:?}");

    handle.shutdown();
}
