//! Thread-flatness of an idle cluster, in its own test binary: the
//! assertion reads the whole process's thread count from `/proc`, so it
//! must not share a process with tests that start and stop servers.

use std::path::PathBuf;
use std::time::Duration;

use sedex_cluster::ClusterConfig;
use sedex_durable::FsyncPolicy;
use sedex_service::{Client, ClientConfig, Server, ServerConfig};

const HEARTBEAT: Duration = Duration::from_millis(100);

fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

fn node_config(node_id: &str, data_dir: PathBuf, peers: Vec<String>) -> ServerConfig {
    ServerConfig {
        workers: 2,
        shards: 4,
        idle_ttl: None,
        data_dir: Some(data_dir),
        fsync: FsyncPolicy::Always,
        snapshot_every: 0,
        cluster: Some(ClusterConfig {
            node_id: node_id.to_owned(),
            peers,
            heartbeat: HEARTBEAT,
            failover: HEARTBEAT * 4,
            ..ClusterConfig::default()
        }),
        ..ServerConfig::default()
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sedex-cluster-idle-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn idle_two_node_cluster_keeps_a_flat_thread_count() {
    let a = Server::start(node_config("a", tmp_dir("a"), Vec::new())).unwrap();
    let a_addr = a.local_addr().to_string();
    let b = Server::start(node_config("b", tmp_dir("b"), vec![a_addr.clone()])).unwrap();

    // Wait for formation, then let the replication links and the first
    // heartbeats settle.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let mut c = Client::connect_with(a_addr.as_str(), ClientConfig::default()).unwrap();
        let reply = c.cluster().unwrap();
        if reply.ok && reply.head.contains("(2 nodes, 2 alive)") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "formation timed out");
        std::thread::sleep(Duration::from_millis(25));
    }
    std::thread::sleep(HEARTBEAT * 3);

    let Some(before) = process_threads() else {
        a.shutdown();
        b.shutdown();
        return; // no /proc: skip silently (non-Linux dev box)
    };
    // A dozen heartbeat intervals of pure idleness: heartbeats, pings and
    // the failure detector all ride the two existing reactor threads, so
    // the process-wide count must not move.
    std::thread::sleep(HEARTBEAT * 12);
    let after = process_threads().unwrap();
    assert_eq!(
        before, after,
        "cluster mode must not grow threads while idle"
    );
    a.shutdown();
    b.shutdown();
}
