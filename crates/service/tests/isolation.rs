//! MVCC snapshot-isolation tests: concurrent `SQL`/`STATS` readers during
//! a sustained `PUSH` stream must observe *exactly* a batch-boundary
//! state — the instance after some whole prefix of the pushes, never a
//! torn batch — and the final state must be byte-identical to a serial
//! run. Readers resolve from the published snapshot without the tenant
//! mutex, so a slow exchange must not delay them past the request
//! deadline either.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sedex_service::{Client, ClientConfig, Server, ServerConfig, ServerHandle};

const SCENARIO: &str = "\
[source]
Dep(dname*, building)
Student(sname*, program, dep->Dep)

[target]
Stu(student*, prog, dpt)

[correspondences]
sname <-> student
program <-> prog
dep <-> dpt
";

const READERS: usize = 3;

fn start_server() -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("server start")
}

fn connect(handle: &ServerHandle, binary: bool) -> Client {
    Client::connect_with(
        handle.local_addr(),
        ClientConfig {
            binary,
            ..ClientConfig::default()
        },
    )
    .expect("connect")
}

fn lines(n: usize) -> Vec<String> {
    (0..n)
        .map(|j| {
            let dep = if j % 2 == 0 { "d0" } else { "_" };
            format!("Student: s{j}, p{j}, {dep}")
        })
        .collect()
}

fn sql_of(c: &mut Client, session: &str) -> String {
    c.sql(session).unwrap().into_ok().unwrap().body()
}

/// Serial reference on its own session: apply `pushes` one boundary at a
/// time (a boundary is one `PUSH` in text mode, one whole `PUSH_BATCH`
/// chunk in batch mode) and collect the `SQL` dump at every boundary,
/// including the zero-push state right after the seed `FEED`.
fn boundary_states(
    c: &mut Client,
    session: &str,
    pushes: &[String],
    batch: Option<usize>,
) -> Vec<String> {
    c.open(session, SCENARIO).unwrap().into_ok().unwrap();
    c.feed(session, "Dep: d0, b0").unwrap().into_ok().unwrap();
    let mut states = vec![sql_of(c, session)];
    match batch {
        None => {
            for line in pushes {
                c.push(session, line).unwrap().into_ok().unwrap();
                states.push(sql_of(c, session));
            }
        }
        Some(size) => {
            for chunk in pushes.chunks(size) {
                let refs: Vec<&str> = chunk.iter().map(String::as_str).collect();
                c.push_batch(session, &refs).unwrap().into_ok().unwrap();
                states.push(sql_of(c, session));
            }
        }
    }
    states
}

/// The core isolation check, shared by both protocols: compute the serial
/// boundary states, then re-run the same workload with `READERS`
/// concurrent `SQL` readers on the session (plus one reader pinned to a
/// quiet sibling session) and require every observed dump to be exactly
/// one of the boundary states.
fn assert_snapshot_isolation(binary: bool, batch: Option<usize>) {
    let handle = start_server();
    let pushes = lines(120);

    let mut serial = connect(&handle, binary);
    let states = boundary_states(&mut serial, "serial", &pushes, batch);
    let valid: HashSet<&String> = states.iter().collect();
    let final_state = states.last().unwrap().clone();

    // A sibling tenant with its own data: concurrent traffic on `iso`
    // must never leak into reads of `quiet`.
    let mut sib = connect(&handle, binary);
    sib.open("quiet", SCENARIO).unwrap().into_ok().unwrap();
    sib.feed("quiet", "Dep: d9, b9").unwrap().into_ok().unwrap();
    sib.push("quiet", "Student: q1, qp, d9")
        .unwrap()
        .into_ok()
        .unwrap();
    let quiet_state = sql_of(&mut sib, "quiet");

    let mut w = connect(&handle, binary);
    w.open("iso", SCENARIO).unwrap().into_ok().unwrap();
    w.feed("iso", "Dep: d0, b0").unwrap().into_ok().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let addr = handle.local_addr().to_string();
    let readers: Vec<_> = (0..READERS + 1)
        .map(|k| {
            let stop = Arc::clone(&stop);
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect_with(
                    addr.as_str(),
                    ClientConfig {
                        binary,
                        ..ClientConfig::default()
                    },
                )
                .expect("reader connect");
                let session = if k == READERS { "quiet" } else { "iso" };
                let mut dumps = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    dumps.push(sql_of(&mut c, session));
                    // STATS rides along: it must succeed from the same
                    // snapshot path (content is load-dependent, so only
                    // success is asserted).
                    c.stats(Some(session)).unwrap().into_ok().unwrap();
                }
                (session, dumps)
            })
        })
        .collect();

    match batch {
        None => {
            for line in &pushes {
                w.push("iso", line).unwrap().into_ok().unwrap();
            }
        }
        Some(size) => {
            for chunk in pushes.chunks(size) {
                let refs: Vec<&str> = chunk.iter().map(String::as_str).collect();
                w.push_batch("iso", &refs).unwrap().into_ok().unwrap();
            }
        }
    }
    stop.store(true, Ordering::Relaxed);

    let mut observed = 0usize;
    for r in readers {
        let (session, dumps) = r.join().expect("reader thread");
        for dump in dumps {
            observed += 1;
            if session == "quiet" {
                assert_eq!(
                    dump, quiet_state,
                    "sibling session saw foreign or torn data"
                );
            } else {
                assert!(
                    valid.contains(&dump),
                    "reader observed a state that is not a batch boundary:\n{dump}"
                );
            }
        }
    }
    assert!(observed > 0, "readers never got a dump in");

    // The writer's end state must be byte-identical to the serial run.
    assert_eq!(sql_of(&mut w, "iso"), final_state);
    handle.shutdown();
}

#[test]
fn sql_during_push_sees_only_batch_boundaries_text() {
    assert_snapshot_isolation(false, None);
}

#[test]
fn sql_during_push_sees_only_batch_boundaries_binary() {
    assert_snapshot_isolation(true, None);
}

#[test]
fn sql_during_push_batch_never_sees_a_torn_batch() {
    // PUSH_BATCH applies under one tenant-lock acquisition and publishes
    // once: a reader may see the state before or after a whole batch of
    // 30, never a partially applied one.
    assert_snapshot_isolation(true, Some(30));
}

#[test]
fn sql_answers_within_deadline_under_sustained_push() {
    let timeout = Duration::from_millis(500);
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        request_timeout: Some(timeout),
        ..ServerConfig::default()
    })
    .expect("server start");

    let mut w = connect(&handle, false);
    w.open("dl", SCENARIO).unwrap().into_ok().unwrap();
    w.feed("dl", "Dep: d0, b0").unwrap().into_ok().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut j = 0usize;
            while !stop.load(Ordering::Relaxed) {
                w.push("dl", &format!("Student: s{j}, p{j}, d0"))
                    .unwrap()
                    .into_ok()
                    .unwrap();
                j += 1;
            }
            j
        })
    };

    // Every read must come back OK (a deadline overrun would answer
    // `ERR deadline`) and in well under the request timeout: snapshot
    // reads queue behind the worker pool, never behind the exchange.
    let mut c = connect(&handle, false);
    let mut reads = 0usize;
    let t0 = std::time::Instant::now();
    while t0.elapsed() < Duration::from_secs(2) {
        let t = std::time::Instant::now();
        let reply = c.sql("dl").unwrap();
        assert!(reply.ok, "read failed under write load: {}", reply.head);
        assert!(
            t.elapsed() < timeout,
            "read took {:?}, past the {timeout:?} deadline",
            t.elapsed()
        );
        reads += 1;
    }
    stop.store(true, Ordering::Relaxed);
    let pushed = writer.join().expect("writer thread");
    assert!(
        reads > 0 && pushed > 0,
        "both sides must have made progress"
    );
    handle.shutdown();
}
