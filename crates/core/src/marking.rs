//! Seen-tuple marking (Section 4.2).
//!
//! While a tuple tree is built, every referenced tuple is *marked as seen*;
//! when the referenced tuple's own relation comes up for processing, seen
//! tuples are skipped — their information already reached the target through
//! the referencing entity. This is the mechanism (together with the
//! descending-height processing order) that prevents a referenced entity
//! from being materialized twice and fragmenting.

use std::collections::HashMap;

use sedex_storage::relation::RowId;
use sedex_storage::Instance;
use sedex_treerep::SeenRef;

/// Per-relation bitmaps of seen rows.
#[derive(Debug, Clone, Default)]
pub struct SeenSet {
    map: HashMap<String, Vec<bool>>,
    count: usize,
}

impl SeenSet {
    /// A seen-set sized for the given source instance.
    pub fn for_instance(instance: &Instance) -> Self {
        let map = instance
            .relations()
            .map(|(name, rel)| (name.to_owned(), vec![false; rel.len()]))
            .collect();
        SeenSet { map, count: 0 }
    }

    /// Grow a relation's bitmap to cover at least `rows` rows (used by the
    /// streaming session, where the source grows after construction).
    pub fn ensure_capacity(&mut self, relation: &str, rows: usize) {
        let bits = self.map.entry(relation.to_owned()).or_default();
        if bits.len() < rows {
            bits.resize(rows, false);
        }
    }

    /// Mark one row; returns `true` when it was newly marked.
    pub fn mark(&mut self, relation: &str, row: RowId) -> bool {
        match self.map.get_mut(relation) {
            Some(bits) if (row as usize) < bits.len() && !bits[row as usize] => {
                bits[row as usize] = true;
                self.count += 1;
                true
            }
            _ => false,
        }
    }

    /// Mark every reference visited by a tuple-tree build.
    pub fn mark_all(&mut self, refs: &[SeenRef]) {
        for r in refs {
            self.mark(&r.relation, r.row);
        }
    }

    /// Whether a row has been seen.
    pub fn is_seen(&self, relation: &str, row: RowId) -> bool {
        self.map
            .get(relation)
            .and_then(|bits| bits.get(row as usize))
            .copied()
            .unwrap_or(false)
    }

    /// Total marked rows.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether nothing is marked.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Export per-relation bitmaps, sorted by relation name (a stable layout
    /// for durability snapshots).
    pub fn export(&self) -> Vec<(String, Vec<bool>)> {
        let mut out: Vec<(String, Vec<bool>)> = self
            .map
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Rebuild a seen-set from exported bitmaps (the marked-row count is
    /// recomputed).
    pub fn import(entries: Vec<(String, Vec<bool>)>) -> Self {
        let count = entries
            .iter()
            .map(|(_, bits)| bits.iter().filter(|&&b| b).count())
            .sum();
        SeenSet {
            map: entries.into_iter().collect(),
            count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::{ConflictPolicy, RelationSchema, Schema};

    fn instance() -> Instance {
        let r = RelationSchema::with_any_columns("R", &["a"]);
        let schema = Schema::from_relations(vec![r]).unwrap();
        let mut inst = Instance::new(schema);
        for i in 0..3 {
            inst.insert(
                "R",
                sedex_storage::tuple![format!("v{i}")],
                ConflictPolicy::Allow,
            )
            .unwrap();
        }
        inst
    }

    #[test]
    fn mark_and_query() {
        let mut s = SeenSet::for_instance(&instance());
        assert!(!s.is_seen("R", 1));
        assert!(s.mark("R", 1));
        assert!(s.is_seen("R", 1));
        assert!(!s.mark("R", 1)); // second mark is a no-op
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn unknown_relation_or_row_is_ignored() {
        let mut s = SeenSet::for_instance(&instance());
        assert!(!s.mark("Nope", 0));
        assert!(!s.mark("R", 99));
        assert!(!s.is_seen("Nope", 0));
        assert!(s.is_empty());
    }

    #[test]
    fn mark_all_batches() {
        let mut s = SeenSet::for_instance(&instance());
        s.mark_all(&[
            SeenRef {
                relation: "R".into(),
                row: 0,
            },
            SeenRef {
                relation: "R".into(),
                row: 2,
            },
        ]);
        assert_eq!(s.len(), 2);
        assert!(s.is_seen("R", 0));
        assert!(!s.is_seen("R", 1));
    }
}
