//! The `Match` function (Section 4.3).
//!
//! ```text
//! Match(Tt, F(S), Σ) = argmin_{Ti ∈ F(S)} Dist(RT(Tt), Ti)
//! ```
//!
//! Given a source tuple tree, the forest of target relation trees, and the
//! property correspondences Σ, `Match` finds the target relation tree with
//! the minimum normalized pq-gram distance to the tuple tree's schema-level
//! reduction. Source labels are mapped into the target vocabulary through Σ
//! first (the paper's first modification of the base algorithm); properties
//! without a correspondence keep an unmatchable source-only label. Null
//! properties were already dropped at tuple-tree construction (the second
//! modification), and multi-valued attributes contributed separate edges
//! (the third).

use sedex_mapping::Correspondences;
use sedex_pqgram::{normalized_distance, PqGramProfile, PqLabel, Tree, WindowedProfile};
use sedex_treerep::{RelationTree, SchemaForest, TupleTree};

/// Outcome of a `Match` call: the winning relation and the full ranking.
#[derive(Debug, Clone)]
pub struct MatchResult {
    /// Name of the winning target relation.
    pub relation: String,
    /// Distance to the winner.
    pub distance: f64,
    /// All `(relation, distance)` pairs, ascending by distance.
    pub ranking: Vec<(String, f64)>,
}

/// A matcher for one target schema: caches the target relation trees'
/// pq-gram profiles and, per target tree, the set of relations it spans
/// (needed to resolve relation-qualified correspondences).
///
/// By default the matcher compares *sorted plain* pq-gram profiles; with
/// `q = 1` (the paper's setting in every worked example) these coincide
/// with windowed pq-grams. [`Matcher::windowed`] switches to the full
/// windowed construction, which is order-invariant for `q > 1` too.
pub struct Matcher {
    p: usize,
    q: usize,
    window: Option<usize>,
    entries: Vec<TargetEntry>,
}

enum CachedProfile {
    Plain(PqGramProfile<String>),
    Windowed(WindowedProfile<String>),
}

struct TargetEntry {
    relation: String,
    profile: CachedProfile,
    /// Relations whose columns appear in this tree (the root relation plus
    /// every FK-expanded relation).
    span: Vec<String>,
    /// The property labels occurring in this tree — used to pick, among
    /// several unqualified correspondences for one source property, the one
    /// that can actually land in this tree (e.g. a source key mapped to the
    /// keys of both halves of a vertical partition).
    labels: std::collections::HashSet<String>,
}

impl Matcher {
    /// Build a matcher over the target schema forest with pq-gram
    /// parameters `(p, q)` (the paper's examples use `(2, 1)`).
    pub fn new(target_forest: &SchemaForest, p: usize, q: usize) -> Self {
        Self::build(target_forest, p, q, None)
    }

    /// Build a matcher using the *windowed* pq-gram construction with
    /// window width `w ≥ q`.
    pub fn windowed(target_forest: &SchemaForest, p: usize, q: usize, w: usize) -> Self {
        Self::build(target_forest, p, q, Some(w))
    }

    fn build(target_forest: &SchemaForest, p: usize, q: usize, window: Option<usize>) -> Self {
        let entries = target_forest
            .trees()
            .iter()
            .map(|rt| TargetEntry {
                relation: rt.relation.clone(),
                profile: match window {
                    None => CachedProfile::Plain(PqGramProfile::from_pq_tree(&rt.tree, p, q)),
                    Some(w) => {
                        CachedProfile::Windowed(WindowedProfile::from_pq_tree(&rt.tree, p, q, w))
                    }
                },
                span: span_of(rt),
                labels: rt
                    .tree
                    .labels()
                    .filter_map(|(_, l)| match l {
                        PqLabel::Label(s) => Some(s.clone()),
                        PqLabel::Dummy => None,
                    })
                    .collect(),
            })
            .collect();
        Matcher {
            p,
            q,
            window,
            entries,
        }
    }

    /// Run `Match` for a source tuple tree. Returns `None` when the target
    /// forest is empty.
    ///
    /// Ranking is primarily by pq-gram distance. Ties (notably the
    /// all-disjoint case where a root-label mismatch hides a genuine host)
    /// break by *label coverage* — how many of the tuple tree's properties
    /// can land in the candidate at all — and then by name for determinism.
    pub fn best_match(&self, tt: &TupleTree, sigma: &Correspondences) -> Option<MatchResult> {
        let mut scored: Vec<(String, f64, usize)> = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            let translated = translate_labels(tt, sigma, &e.span, &e.labels);
            let d = match &e.profile {
                CachedProfile::Plain(target) => {
                    let profile = PqGramProfile::from_pq_tree(&translated, self.p, self.q);
                    normalized_distance(&profile, target)
                }
                CachedProfile::Windowed(target) => {
                    let w = self.window.expect("windowed entries imply a window");
                    let profile = WindowedProfile::from_pq_tree(&translated, self.p, self.q, w);
                    profile.distance(target)
                }
            };
            let coverage = translated
                .labels()
                .filter(|(_, l)| match l {
                    PqLabel::Label(s) => e.labels.contains(s),
                    PqLabel::Dummy => false,
                })
                .count();
            scored.push((e.relation.clone(), d, coverage));
        }
        scored.sort_by(|a, b| {
            a.1.total_cmp(&b.1)
                .then_with(|| b.2.cmp(&a.2))
                .then_with(|| a.0.cmp(&b.0))
        });
        let (relation, distance, _) = scored.first()?.clone();
        Some(MatchResult {
            relation,
            distance,
            ranking: scored.into_iter().map(|(r, d, _)| (r, d)).collect(),
        })
    }

    /// The pq-gram parameters.
    pub fn params(&self) -> (usize, usize) {
        (self.p, self.q)
    }
}

/// Relations spanned by a relation tree, via its node metadata.
fn span_of(rt: &RelationTree) -> Vec<String> {
    let mut span = vec![rt.relation.clone()];
    for m in &rt.meta {
        if let Some(owner) = &m.owner {
            if !span.contains(owner) {
                span.push(owner.clone());
            }
        }
        for (rel, _) in &m.expands_to {
            if !span.contains(rel) {
                span.push(rel.clone());
            }
        }
    }
    span
}

/// Reduce a tuple tree to schema level *and* map its labels into the target
/// vocabulary via Σ, scoped to the relations a candidate target tree spans.
/// Unmatched properties get a label no target tree can contain.
fn translate_labels(
    tt: &TupleTree,
    sigma: &Correspondences,
    target_span: &[String],
    target_labels: &std::collections::HashSet<String>,
) -> Tree<PqLabel<String>> {
    tt.tree.map_labels(|l| match l {
        PqLabel::Dummy => PqLabel::Dummy,
        PqLabel::Label(n) => {
            // 1. A correspondence qualified into one of the spanned
            //    relations wins.
            for rel in target_span {
                if let Some(t) =
                    sigma.target_in_relation(Some(&n.relation), &n.prop, rel, |_| false)
                {
                    return PqLabel::Label(t.to_owned());
                }
            }
            // 2. Among unqualified correspondences, prefer one whose target
            //    label actually occurs in this tree.
            let mut fallback: Option<&str> = None;
            for c in sigma.matches(Some(&n.relation), &n.prop) {
                if c.target.relation.is_none() {
                    if target_labels.contains(&c.target.column) {
                        return PqLabel::Label(c.target.column.clone());
                    }
                    if fallback.is_none() {
                        fallback = Some(&c.target.column);
                    }
                }
            }
            // 3. Any target label at all; else an unmatchable marker.
            match fallback.or_else(|| sigma.target_label(Some(&n.relation), &n.prop)) {
                Some(t) => PqLabel::Label(t.to_owned()),
                None => PqLabel::Label(format!("\u{1}src:{}", n.prop)),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::{ConflictPolicy, Instance, RelationSchema, Schema, Value};
    use sedex_treerep::{tuple_tree, TreeConfig};

    /// Source side of Figs. 2–3.
    fn source_instance() -> Instance {
        let student =
            RelationSchema::with_any_columns("Student", &["sname", "program", "dep", "supervisor"])
                .primary_key(&["sname"])
                .unwrap()
                .foreign_key(&["dep"], "Dep")
                .unwrap()
                .foreign_key(&["supervisor"], "Prof")
                .unwrap();
        let prof = RelationSchema::with_any_columns("Prof", &["pname", "degree", "profdep"])
            .primary_key(&["pname"])
            .unwrap()
            .foreign_key(&["profdep"], "Dep")
            .unwrap();
        let dep = RelationSchema::with_any_columns("Dep", &["dname", "building"])
            .primary_key(&["dname"])
            .unwrap();
        let reg = RelationSchema::with_any_columns("Registration", &["sname", "course", "regdate"])
            .foreign_key(&["sname"], "Student")
            .unwrap();
        let schema = Schema::from_relations(vec![student, prof, dep, reg]).unwrap();
        let mut inst = Instance::new(schema);
        let p = ConflictPolicy::Reject;
        inst.insert("Dep", sedex_storage::tuple!["d1", "b1"], p)
            .unwrap();
        inst.insert("Prof", sedex_storage::tuple!["prof1", "deg1", "d1"], p)
            .unwrap();
        inst.insert(
            "Student",
            sedex_storage::tuple!["s1", "p1", "d1", "prof1"],
            p,
        )
        .unwrap();
        inst.insert("Registration", sedex_storage::tuple!["s1", "c1", "dt1"], p)
            .unwrap();
        inst
    }

    /// Target side of Fig. 2: Stu, Reg (references Stu and Course), Course.
    fn target_schema() -> Schema {
        let stu =
            RelationSchema::with_any_columns("Stu", &["student", "prog", "dpt", "supervisor"])
                .primary_key(&["student"])
                .unwrap();
        let course = RelationSchema::with_any_columns("Course", &["cname", "credit"])
            .primary_key(&["cname"])
            .unwrap();
        let reg = RelationSchema::with_any_columns("Reg", &["student", "cname", "date"])
            .foreign_key(&["student"], "Stu")
            .unwrap()
            .foreign_key(&["cname"], "Course")
            .unwrap();
        Schema::from_relations(vec![stu, course, reg]).unwrap()
    }

    /// The Σ of the worked example (no correspondence for supervisor).
    fn paper_sigma() -> Correspondences {
        Correspondences::from_name_pairs([
            ("sname", "student"),
            ("course", "cname"),
            ("regdate", "date"),
            ("program", "prog"),
            ("dep", "dpt"),
        ])
    }

    #[test]
    fn paper_distances_for_registration_tuple() {
        // Section 4.3: dist(Tt, TReg) = 0.71, dist(Tt, TStu) = 0.76,
        // dist(Tt, TCourse) = 1.0; TReg wins.
        let inst = source_instance();
        let forest = SchemaForest::new(&target_schema(), &TreeConfig::default()).unwrap();
        let matcher = Matcher::new(&forest, 2, 1);
        let tt = tuple_tree(&inst, "Registration", 0, &TreeConfig::default()).unwrap();
        let m = matcher.best_match(&tt, &paper_sigma()).unwrap();
        assert_eq!(m.relation, "Reg");
        let d: std::collections::HashMap<_, _> = m.ranking.iter().cloned().collect();
        assert!((d["Reg"] - 10.0 / 14.0).abs() < 1e-9, "Reg: {}", d["Reg"]);
        assert!((d["Stu"] - 10.0 / 13.0).abs() < 1e-9, "Stu: {}", d["Stu"]);
        assert!((d["Course"] - 1.0).abs() < 1e-9, "Course: {}", d["Course"]);
    }

    #[test]
    fn student_tuple_matches_stu() {
        let inst = source_instance();
        let forest = SchemaForest::new(&target_schema(), &TreeConfig::default()).unwrap();
        let matcher = Matcher::new(&forest, 2, 1);
        let tt = tuple_tree(&inst, "Student", 0, &TreeConfig::default()).unwrap();
        let m = matcher.best_match(&tt, &paper_sigma()).unwrap();
        assert_eq!(m.relation, "Stu");
    }

    /// The generalization-ambiguity resolution of Section 4.5: a tuple with
    /// stId lands in Grad, one with empId lands in Prof.
    #[test]
    fn ambiguity_resolution_by_null_pruning() {
        let inst_rel = RelationSchema::with_any_columns("Inst", &["name", "stId", "empId"]);
        let source = Schema::from_relations(vec![inst_rel]).unwrap();
        let mut src = Instance::new(source);
        let p = ConflictPolicy::Allow;
        src.insert("Inst", sedex_storage::tuple!["Bob", "1234", Value::Null], p)
            .unwrap();
        src.insert("Inst", sedex_storage::tuple!["Eve", Value::Null, "E77"], p)
            .unwrap();

        let grad = RelationSchema::with_any_columns("Grad", &["name", "stId", "course"]);
        let prof = RelationSchema::with_any_columns("Prof", &["name", "empId"]);
        let target = Schema::from_relations(vec![grad, prof]).unwrap();
        let forest = SchemaForest::new(&target, &TreeConfig::default()).unwrap();
        let matcher = Matcher::new(&forest, 2, 1);
        let sigma = Correspondences::from_name_pairs([
            ("name", "name"),
            ("stId", "stId"),
            ("empId", "empId"),
        ]);

        let cfg = TreeConfig::default();
        let bob = tuple_tree(&src, "Inst", 0, &cfg).unwrap();
        let eve = tuple_tree(&src, "Inst", 1, &cfg).unwrap();
        assert_eq!(matcher.best_match(&bob, &sigma).unwrap().relation, "Grad");
        assert_eq!(matcher.best_match(&eve, &sigma).unwrap().relation, "Prof");
    }

    #[test]
    fn qualified_correspondences_steer_per_target_tree() {
        // Source prop `id` maps to A.ka for relation A and B.kb for B: the
        // per-tree translation must use the right one for each candidate.
        let s = RelationSchema::with_any_columns("S", &["id", "x"]);
        let source = Schema::from_relations(vec![s]).unwrap();
        let mut src = Instance::new(source);
        src.insert("S", sedex_storage::tuple!["1", "v"], ConflictPolicy::Allow)
            .unwrap();
        let a = RelationSchema::with_any_columns("A", &["ka", "x2"]);
        let b = RelationSchema::with_any_columns("B", &["kb"]);
        let target = Schema::from_relations(vec![a, b]).unwrap();
        let forest = SchemaForest::new(&target, &TreeConfig::default()).unwrap();
        let matcher = Matcher::new(&forest, 2, 1);
        let mut sigma = Correspondences::new();
        sigma.add_qualified("S", "id", "A", "ka");
        sigma.add_qualified("S", "id", "B", "kb");
        sigma.add_names("x", "x2");
        let tt = tuple_tree(&src, "S", 0, &TreeConfig::default()).unwrap();
        let m = matcher.best_match(&tt, &sigma).unwrap();
        // A covers both id and x; B only id.
        assert_eq!(m.relation, "A");
        assert!(m.ranking.iter().any(|(r, d)| r == "B" && *d < 1.0));
    }

    /// The windowed matcher agrees with the plain one at q = 1 (where the
    /// two constructions coincide) and still finds the right hosts at q = 2.
    #[test]
    fn windowed_matcher_agrees() {
        let inst = source_instance();
        let forest = SchemaForest::new(&target_schema(), &TreeConfig::default()).unwrap();
        let plain = Matcher::new(&forest, 2, 1);
        let win = Matcher::windowed(&forest, 2, 1, 2);
        let cfg = TreeConfig::default();
        for (rel, rows) in [("Registration", 1u32), ("Student", 1)] {
            for row in 0..rows {
                let tt = tuple_tree(&inst, rel, row, &cfg).unwrap();
                let a = plain.best_match(&tt, &paper_sigma()).unwrap();
                let b = win.best_match(&tt, &paper_sigma()).unwrap();
                assert_eq!(a.relation, b.relation);
                assert!((a.distance - b.distance).abs() < 1e-9);
            }
        }
        // q = 2, window 3: the Registration tuple still lands in Reg.
        let win2 = Matcher::windowed(&forest, 2, 2, 3);
        let tt = tuple_tree(&inst, "Registration", 0, &cfg).unwrap();
        assert_eq!(
            win2.best_match(&tt, &paper_sigma()).unwrap().relation,
            "Reg"
        );
    }

    #[test]
    fn empty_forest_returns_none() {
        let target = Schema::new();
        let forest = SchemaForest::new(&target, &TreeConfig::default()).unwrap();
        let matcher = Matcher::new(&forest, 2, 1);
        let inst = source_instance();
        let tt = tuple_tree(&inst, "Dep", 0, &TreeConfig::default()).unwrap();
        assert!(matcher.best_match(&tt, &paper_sigma()).is_none());
    }
}
