//! The SEDEX engine: the pay-as-you-go pipeline of Fig. 1.
//!
//! ```text
//! load CFDs → order relations by tree height → per unseen tuple:
//!   build tuple tree (mark referenced tuples seen)
//!   shape key → script repository?
//!     hit  → reuse script
//!     miss → Match → translate (Alg. 1) → generate script (Alg. 2) → store
//!   run script under target egds
//! ```
//!
//! Every knob the paper discusses (and every ablation DESIGN.md calls out)
//! is a field of [`SedexConfig`].
//!
//! With `threads > 1` the *whole* per-batch pipeline runs in parallel, not
//! just tree building: shape keys and slot values are computed on worker
//! threads, the miss path (Match → translate → generate) fans out over the
//! *distinct* unseen shapes of the batch (the matcher's cached profiles,
//! the schema forest and Σ are immutable), and script execution resolves
//! values in parallel and partitions inserts by target relation so egd/key
//! checks stay serialized per relation. A serial *replay* of repository
//! lookups, seen-marking and fresh-label assignment keeps the output —
//! instance bytes, counters, repository contents, hit-event sequence —
//! byte-identical to the single-threaded engine.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sedex_mapping::Correspondences;
use sedex_observe::{Event, Observer, Phase};
use sedex_storage::{ConflictPolicy, InsertOutcome, Instance, Schema, StorageError, Tuple, Value};
use sedex_treerep::{tuple_shape_key, tuple_tree, SchemaForest, TreeConfig, TupleTree};

use crate::cfd::CfdInterpreter;
use crate::marking::SeenSet;
use crate::matcher::Matcher;
use crate::metrics::ExchangeReport;
use crate::repository::{RepositoryExport, ScriptRepository, DEFAULT_EVENT_LIMIT};
use crate::script::{run_script, RunOutcome, Script, SlotRef};
use crate::scriptgen::generate_script;
use crate::trace::Trace;
use crate::translate::{slot_values, translate};

/// Configuration of a SEDEX exchange.
#[derive(Debug, Clone)]
pub struct SedexConfig {
    /// pq-gram stem length (the paper's examples use 2).
    pub p: usize,
    /// pq-gram window width (the paper's examples use 1).
    pub q: usize,
    /// Use the windowed pq-gram construction with this window width
    /// (`w ≥ q`). `None` (default) uses sorted plain pq-grams, which
    /// coincide with the windowed ones at `q = 1`.
    pub window: Option<usize>,
    /// Reuse scripts via the shape-keyed repository (Section 4.4.2). Off =
    /// the `ablation_reuse` configuration: every tuple is re-matched and
    /// re-translated.
    pub reuse_scripts: bool,
    /// Process relations in descending relation-tree height (Section 4.1).
    /// Off = schema order, which can fragment entities.
    pub order_by_height: bool,
    /// Skip tuples already reached through a referencing tuple
    /// (Section 4.2).
    pub mark_seen: bool,
    /// Drop null properties from tuple trees (the paper's semantics). Off =
    /// SEDEX degenerates to a pure schema-level mapper on ambiguous
    /// scenarios.
    pub prune_nulls: bool,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Worker threads for the batch pipeline — tree building, shape keys,
    /// the miss path over distinct shapes, and script execution; 1 =
    /// serial. The output instance is byte-identical regardless of thread
    /// count.
    pub threads: usize,
    /// Record per-lookup hit events (needed only for the Fig. 14 curve).
    pub record_hit_events: bool,
    /// Cap on the recorded hit-event buffer between drains; lookups past
    /// the cap are counted in `hit_events_dropped` instead of growing the
    /// buffer without bound (long-lived service sessions only drain on
    /// FLUSH).
    pub hit_event_limit: usize,
    /// Tuples are processed in batches of this many rows (bounds memory in
    /// the parallel phase).
    pub batch_size: usize,
    /// Batches smaller than this stay serial even with `threads > 1`: the
    /// fan-out overhead beats the work below here. Small service PUSH/FEED
    /// batches can lower it to parallelize anyway.
    pub parallel_threshold: usize,
    /// Exchanges slower than this emit a one-line structured record (with
    /// per-phase breakdown) to stderr and an
    /// [`Event::SlowExchange`] to the attached observer. `None` (default)
    /// disables the check and the per-phase clock reads it needs.
    pub slow_exchange_threshold: Option<Duration>,
}

impl Default for SedexConfig {
    fn default() -> Self {
        SedexConfig {
            p: 2,
            q: 1,
            window: None,
            reuse_scripts: true,
            order_by_height: true,
            mark_seen: true,
            prune_nulls: true,
            max_depth: 32,
            threads: 1,
            record_hit_events: false,
            hit_event_limit: DEFAULT_EVENT_LIMIT,
            batch_size: 8192,
            parallel_threshold: 64,
            slow_exchange_threshold: None,
        }
    }
}

/// The SEDEX engine.
#[derive(Clone, Default)]
pub struct SedexEngine {
    config: SedexConfig,
    cfds: CfdInterpreter,
    observer: Option<Arc<dyn Observer>>,
}

impl std::fmt::Debug for SedexEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SedexEngine")
            .field("config", &self.config)
            .field("cfds", &self.cfds)
            .field(
                "observer",
                &self.observer.as_ref().map(|_| "<dyn Observer>"),
            )
            .finish()
    }
}

/// One executable item of a parallel batch: the (possibly reused) script,
/// the tuple's slot values, and its pre-assigned fresh labels.
type ExecItem<'a> = (Arc<Script>, &'a [Value], HashMap<u32, Value>);

/// Chunked fork-join map over a slice on scoped threads, preserving item
/// order. Falls back to a plain serial map when there is nothing to fan
/// out. The closure must be pure (or at least commutative): items are
/// mapped out of order across chunks.
fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| {
                let f = &f;
                s.spawn(move || part.iter().map(f).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("pipeline worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for p in parts {
        out.extend(p);
    }
    out
}

impl SedexEngine {
    /// An engine with the default configuration and no CFDs.
    pub fn new() -> Self {
        SedexEngine::default()
    }

    /// An engine with an explicit configuration.
    pub fn with_config(config: SedexConfig) -> Self {
        SedexEngine {
            config,
            ..SedexEngine::default()
        }
    }

    /// Attach a CFD interpreter (Fig. 1's "Load CFDs" step).
    pub fn with_cfds(mut self, cfds: CfdInterpreter) -> Self {
        self.cfds = cfds;
        self
    }

    /// Attach a trace observer: every pipeline phase, repository lookup,
    /// egd merge and violation is reported to it as a structured
    /// [`Event`]. Without an observer (the default) the tracing hooks
    /// cost a `None` check — no clock reads, no allocation, no atomics.
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The configuration.
    pub fn config(&self) -> &SedexConfig {
        &self.config
    }

    /// Run the exchange: translate `source` into a fresh instance of
    /// `target_schema` under the correspondences Σ. Target egds are the
    /// target schema's key constraints, applied at script-run time.
    ///
    /// ```
    /// use sedex_core::SedexEngine;
    /// use sedex_mapping::Correspondences;
    /// use sedex_storage::{tuple, ConflictPolicy, Instance, RelationSchema, Schema};
    ///
    /// let src_schema = Schema::from_relations(vec![
    ///     RelationSchema::with_any_columns("R", &["k", "v"]).primary_key(&["k"]).unwrap(),
    /// ]).unwrap();
    /// let tgt_schema = Schema::from_relations(vec![
    ///     RelationSchema::with_any_columns("T", &["tk", "tv"]).primary_key(&["tk"]).unwrap(),
    /// ]).unwrap();
    /// let sigma = Correspondences::from_name_pairs([("k", "tk"), ("v", "tv")]);
    ///
    /// let mut src = Instance::new(src_schema);
    /// src.insert("R", tuple!["k1", "hello"], ConflictPolicy::Reject).unwrap();
    ///
    /// let (out, report) = SedexEngine::new().exchange(&src, &tgt_schema, &sigma).unwrap();
    /// assert_eq!(out.relation("T").unwrap().row(0).unwrap(), &tuple!["k1", "hello"]);
    /// assert_eq!(report.scripts_generated, 1);
    /// ```
    pub fn exchange(
        &self,
        source: &Instance,
        target_schema: &Schema,
        sigma: &Correspondences,
    ) -> Result<(Instance, ExchangeReport), StorageError> {
        self.exchange_impl(source, target_schema, sigma, false)
            .map(|(out, report, _)| (out, report))
    }

    /// Like [`SedexEngine::exchange`], but also returns the final script
    /// repository as an export — entries sorted by shape key plus the
    /// lookup counters. Determinism tests compare the exports of runs at
    /// different thread counts; warm-start pipelines seed a
    /// [`crate::SedexSession`] from it.
    pub fn exchange_with_repository(
        &self,
        source: &Instance,
        target_schema: &Schema,
        sigma: &Correspondences,
    ) -> Result<(Instance, ExchangeReport, RepositoryExport), StorageError> {
        self.exchange_impl(source, target_schema, sigma, true)
            .map(|(out, report, export)| (out, report, export.expect("export requested")))
    }

    fn exchange_impl(
        &self,
        source: &Instance,
        target_schema: &Schema,
        sigma: &Correspondences,
        want_repository: bool,
    ) -> Result<(Instance, ExchangeReport, Option<RepositoryExport>), StorageError> {
        let cfg = &self.config;
        let tree_cfg = TreeConfig {
            max_depth: cfg.max_depth,
            prune_nulls: cfg.prune_nulls,
        };
        let mut report = ExchangeReport::default();
        let mut trace = Trace::new(self.observer.as_deref(), cfg.slow_exchange_threshold);
        let tg_start = Instant::now();

        // Fig. 1: load + apply CFDs before tuple trees are generated.
        let prepared;
        let src: &Instance = if self.cfds.is_empty() {
            source
        } else {
            let mut clone = source.clone();
            self.cfds.apply(&mut clone)?;
            prepared = clone;
            &prepared
        };

        let source_forest = SchemaForest::new(src.schema(), &tree_cfg)?;
        let target_forest = SchemaForest::new(target_schema, &tree_cfg)?;
        let matcher = match cfg.window {
            None => Matcher::new(&target_forest, cfg.p, cfg.q),
            Some(w) => Matcher::windowed(&target_forest, cfg.p, cfg.q, w),
        };

        let order: Vec<String> = if cfg.order_by_height {
            source_forest
                .processing_order()
                .into_iter()
                .map(str::to_owned)
                .collect()
        } else {
            src.schema().relation_names().map(str::to_owned).collect()
        };

        let mut repo =
            ScriptRepository::with_event_limit(cfg.record_hit_events, cfg.hit_event_limit);
        let mut seen = SeenSet::for_instance(src);
        let mut target = Instance::new(target_schema.clone());
        let mut outcome = RunOutcome::default();
        let mut fresh_counter: u64 = 0;
        report.tg = tg_start.elapsed();

        for rel_name in &order {
            let row_count = src.relation_or_err(rel_name)?.len() as u32;
            let mut batch_start = 0u32;
            while batch_start < row_count {
                let batch_end = (batch_start + cfg.batch_size as u32).min(row_count);
                let tg0 = Instant::now();
                let tb = trace.start();
                let (trees, skipped) =
                    self.build_batch(src, rel_name, batch_start..batch_end, &seen, &tree_cfg)?;
                trace.end(Phase::TreeBuild, tb);
                report.tuples_skipped_seen += skipped;

                if cfg.threads > 1 && trees.len() >= cfg.parallel_threshold.max(1) {
                    report.tg += tg0.elapsed();
                    self.run_batch_parallel(
                        rel_name,
                        &trees,
                        &matcher,
                        &target_forest,
                        sigma,
                        target_schema,
                        &mut seen,
                        &mut repo,
                        &mut target,
                        &mut fresh_counter,
                        &mut outcome,
                        &mut report,
                        &mut trace,
                    )?;
                    batch_start = batch_end;
                    continue;
                }

                let mut tg_batch = tg0.elapsed();
                for (row, tx) in trees {
                    // Re-check: a tuple earlier in this batch may have
                    // marked this one.
                    if cfg.mark_seen && seen.is_seen(rel_name, row) {
                        report.tuples_skipped_seen += 1;
                        continue;
                    }
                    let t0 = Instant::now();
                    if cfg.mark_seen {
                        seen.mark_all(&tx.visited);
                    }
                    let mut key = String::with_capacity(rel_name.len() + 64);
                    key.push_str(rel_name);
                    key.push('|');
                    key.push_str(&tuple_shape_key(&tx));
                    let script = if cfg.reuse_scripts {
                        repo.lookup(&key)
                    } else {
                        None
                    };
                    let script = match script {
                        Some(s) => {
                            report.scripts_reused += 1;
                            trace.lookup(true);
                            s
                        }
                        None => {
                            report.scripts_generated += 1;
                            trace.lookup(false);
                            let generated = self.generate_for(
                                &tx,
                                &matcher,
                                &target_forest,
                                sigma,
                                target_schema,
                                &mut trace,
                            );
                            if generated.is_empty() {
                                report.tuples_unmatched += 1;
                            }
                            repo.insert(key, generated)
                        }
                    };
                    report.tuples_processed += 1;
                    tg_batch += t0.elapsed();

                    let t1 = Instant::now();
                    if !script.is_empty() {
                        let sr = trace.start();
                        let delta = run_script(
                            &script,
                            &slot_values(&tx),
                            &mut target,
                            &mut fresh_counter,
                        )?;
                        trace.end(Phase::ScriptRun, sr);
                        trace.outcome(&delta);
                        outcome += delta;
                    }
                    report.te += t1.elapsed();
                }
                report.tg += tg_batch;
                batch_start = batch_end;
            }
        }

        report.inserted = outcome.inserted;
        report.merged = outcome.merged;
        report.violations = outcome.violations;
        report.stats = target.stats();
        report.hit_events = repo.take_events();
        report.hit_events_dropped = repo.events_dropped() as usize;
        if report.hit_events_dropped > 0 {
            trace.emit(&Event::HitEventsDropped {
                count: report.hit_events_dropped as u64,
            });
        }
        report.phases = trace.totals;
        trace.finish_exchange(
            report.total_time(),
            report.tuples_processed as u64,
            cfg.slow_exchange_threshold,
        );
        let export = want_repository.then(|| repo.export());
        Ok((target, report, export))
    }

    /// The parallel per-batch pipeline. Four stages:
    ///
    /// 1. **Prepare** (parallel): shape key + slot values per built tree —
    ///    pure functions of the tree.
    /// 2. **Plan** (serial, row order): seen re-check + marking, then the
    ///    *distinct* shapes missing from the repository, in first-miss
    ///    order.
    /// 3. **Generate** (parallel): Match → translate → generate for each
    ///    missing shape; then a serial row-order *replay* of repository
    ///    lookups/inserts so counters, hit events and `new_keys` match the
    ///    serial engine exactly.
    /// 4. **Execute**: fresh labels are pre-assigned serially in row order
    ///    (byte-identical to the serial engine's lazy minting), statement
    ///    values resolve in parallel, and inserts are partitioned by
    ///    target relation — per-relation order preserved, egd/key checks
    ///    serialized per relation, relations running concurrently.
    #[allow(clippy::too_many_arguments)]
    fn run_batch_parallel(
        &self,
        rel_name: &str,
        trees: &[(u32, TupleTree)],
        matcher: &Matcher,
        target_forest: &SchemaForest,
        sigma: &Correspondences,
        target_schema: &Schema,
        seen: &mut SeenSet,
        repo: &mut ScriptRepository,
        target: &mut Instance,
        fresh_counter: &mut u64,
        outcome: &mut RunOutcome,
        report: &mut ExchangeReport,
        trace: &mut Trace,
    ) -> Result<(), StorageError> {
        let cfg = &self.config;
        let threads = cfg.threads;
        let obs = self.observer.as_deref();
        let tg0 = Instant::now();

        // Stage 1: shape keys and slot values, fanned out.
        let preps: Vec<(String, Vec<Value>)> = par_map(trees, threads, |(_, tx)| {
            let mut key = String::with_capacity(rel_name.len() + 64);
            key.push_str(rel_name);
            key.push('|');
            key.push_str(&tuple_shape_key(tx));
            (key, slot_values(tx))
        });

        // Stage 2: serial planning in row order. Seen-marking must replay
        // serially — a tuple earlier in the batch may mark a later one.
        let mut kept: Vec<usize> = Vec::with_capacity(trees.len());
        for (i, (row, tx)) in trees.iter().enumerate() {
            if cfg.mark_seen && seen.is_seen(rel_name, *row) {
                report.tuples_skipped_seen += 1;
                continue;
            }
            if cfg.mark_seen {
                seen.mark_all(&tx.visited);
            }
            kept.push(i);
        }

        // Distinct shapes needing generation, in first-miss order. With
        // reuse off every kept tuple regenerates its script individually —
        // the `ablation_reuse` semantics are preserved, only parallelized.
        let missing: Vec<usize> = if cfg.reuse_scripts {
            let mut pending: HashSet<&str> = HashSet::new();
            kept.iter()
                .copied()
                .filter(|&i| {
                    let key = preps[i].0.as_str();
                    !repo.contains(key) && pending.insert(key)
                })
                .collect()
        } else {
            kept.clone()
        };

        // Stage 3a: the miss path fans out — matcher profiles, forests and
        // Σ are immutable. Workers time their own phases; the totals merge
        // below (an aggregate of per-shape CPU time, exactly like the
        // serial engine's per-tuple sums).
        let miss_trees: Vec<&TupleTree> = missing.iter().map(|&i| &trees[i].1).collect();
        let generated = par_map(&miss_trees, threads, |tx| {
            let mut wtrace = Trace::new(obs, cfg.slow_exchange_threshold);
            let script = self.generate_for(
                tx,
                matcher,
                target_forest,
                sigma,
                target_schema,
                &mut wtrace,
            );
            (script, wtrace.totals)
        });
        let mut gen_slots: Vec<Option<Script>> = Vec::with_capacity(generated.len());
        for (script, totals) in generated {
            for (phase, nanos) in totals.iter() {
                if nanos > 0 {
                    trace.totals.add(phase, nanos);
                }
            }
            gen_slots.push(Some(script));
        }
        let gen_index: HashMap<&str, usize> = missing
            .iter()
            .enumerate()
            .map(|(slot, &i)| (preps[i].0.as_str(), slot))
            .collect();

        // Stage 3b: serial replay of repository lookups in row order. The
        // first tuple of a missing shape takes the miss and inserts the
        // generated script; same-shape successors then hit — counters,
        // recorded events and the new-key log come out identical to the
        // serial engine's.
        let mut scripts: Vec<Option<Arc<Script>>> = Vec::with_capacity(kept.len());
        for (j, &i) in kept.iter().enumerate() {
            let key = preps[i].0.as_str();
            let cached = if cfg.reuse_scripts {
                repo.lookup(key)
            } else {
                None
            };
            let script = match cached {
                Some(s) => {
                    report.scripts_reused += 1;
                    trace.lookup(true);
                    s
                }
                None => {
                    report.scripts_generated += 1;
                    trace.lookup(false);
                    let slot = if cfg.reuse_scripts { gen_index[key] } else { j };
                    let generated = gen_slots[slot]
                        .take()
                        .expect("each generated script resolves exactly one miss");
                    if generated.is_empty() {
                        report.tuples_unmatched += 1;
                    }
                    repo.insert(key.to_owned(), generated)
                }
            };
            report.tuples_processed += 1;
            scripts.push((!script.is_empty()).then_some(script));
        }
        report.tg += tg0.elapsed();

        // Stage 4: execution.
        let te0 = Instant::now();

        // Fresh labels are pre-assigned in serial row order, visiting
        // statements and assignments exactly as `run_script` would — the
        // label sequence is byte-identical to the serial engine's.
        let mut exec: Vec<ExecItem<'_>> = Vec::with_capacity(kept.len());
        for (j, &i) in kept.iter().enumerate() {
            let Some(script) = &scripts[j] else { continue };
            let mut fresh: HashMap<u32, Value> = HashMap::new();
            for st in &script.statements {
                for &(_, slot) in &st.assignments {
                    if let SlotRef::Fresh(id) = slot {
                        fresh.entry(id).or_insert_with(|| {
                            let v = Value::Labeled(*fresh_counter);
                            *fresh_counter += 1;
                            v
                        });
                    }
                }
            }
            exec.push((Arc::clone(script), preps[i].1.as_slice(), fresh));
        }

        // Validate target relations up front (the serial engine would fail
        // mid-run; both paths surface the same error and drop the target).
        let schema_rels = target_schema.relations();
        let rel_index: HashMap<&str, usize> = schema_rels
            .iter()
            .enumerate()
            .map(|(i, r)| (r.name.as_str(), i))
            .collect();
        let arities: Vec<usize> = schema_rels.iter().map(|r| r.arity()).collect();
        for (script, _, _) in &exec {
            for st in &script.statements {
                if !rel_index.contains_key(st.relation.as_str()) {
                    return Err(StorageError::UnknownRelation(st.relation.clone()));
                }
            }
        }

        // Statement values resolve in parallel — pure per-tuple work.
        let resolved: Vec<Vec<(usize, Tuple)>> =
            par_map(&exec, threads, |(script, slots, fresh)| {
                let mut stmts = Vec::with_capacity(script.statements.len());
                for st in &script.statements {
                    let ri = rel_index[st.relation.as_str()];
                    let mut vals = vec![Value::Null; arities[ri]];
                    for &(col, slot) in &st.assignments {
                        vals[col] = match slot {
                            SlotRef::Src(s) => slots.get(s).cloned().unwrap_or(Value::Null),
                            SlotRef::Fresh(id) => fresh[&id].clone(),
                        };
                    }
                    stmts.push((ri, Tuple::new(vals)));
                }
                stmts
            });

        // Partition by target relation, preserving the serial insert order
        // within each relation; then each relation runs its egd/key-checked
        // inserts on its own thread — conflict semantics are per-relation
        // (no cross-relation state), so relations commute.
        let timing = obs.is_some() || cfg.slow_exchange_threshold.is_some();
        let mut per_rel: Vec<Vec<Tuple>> = vec![Vec::new(); schema_rels.len()];
        for stmts in resolved {
            for (ri, tuple) in stmts {
                per_rel[ri].push(tuple);
            }
        }
        let mut rel_map = target.relations_mut();
        let jobs: Vec<_> = per_rel
            .into_iter()
            .enumerate()
            .filter(|(_, tuples)| !tuples.is_empty())
            .map(|(ri, tuples)| {
                let rel = rel_map
                    .remove(schema_rels[ri].name.as_str())
                    .expect("schema relation exists in its instance");
                (ri, tuples, rel)
            })
            .collect();
        drop(rel_map);
        let mut results: Vec<(usize, Result<RunOutcome, StorageError>, u64)> =
            Vec::with_capacity(jobs.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .into_iter()
                .map(|(ri, tuples, rel)| {
                    s.spawn(move || {
                        let started = timing.then(Instant::now);
                        let mut out = RunOutcome::default();
                        for tuple in tuples {
                            match rel.insert(tuple, ConflictPolicy::Merge) {
                                Ok(InsertOutcome::Inserted(_)) => out.inserted += 1,
                                Ok(InsertOutcome::Merged(_)) => out.merged += 1,
                                Ok(InsertOutcome::Duplicate(_)) => out.duplicates += 1,
                                Ok(InsertOutcome::Skipped(_)) => {}
                                Err(StorageError::EgdFailure { .. }) => out.violations += 1,
                                Err(e) => return (ri, Err(e), 0),
                            }
                        }
                        let nanos = started.map_or(0, |t| t.elapsed().as_nanos() as u64);
                        (ri, Ok(out), nanos)
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("script-execution worker panicked"));
            }
        });
        results.sort_by_key(|&(ri, _, _)| ri);
        let mut batch_outcome = RunOutcome::default();
        let mut run_nanos = 0u64;
        for (_, res, nanos) in results {
            batch_outcome += res?;
            run_nanos += nanos;
        }
        if run_nanos > 0 {
            trace.totals.add(Phase::ScriptRun, run_nanos);
            trace.emit(&Event::Phase {
                phase: Phase::ScriptRun,
                nanos: run_nanos,
            });
        }
        trace.outcome(&batch_outcome);
        *outcome += batch_outcome;
        report.te += te0.elapsed();
        Ok(())
    }

    /// Build tuple trees for the unseen rows of one batch, optionally in
    /// parallel. Returns `(row, tree)` pairs in ascending row order, plus
    /// the number of rows skipped because they were already seen.
    fn build_batch(
        &self,
        src: &Instance,
        rel_name: &str,
        rows: std::ops::Range<u32>,
        seen: &SeenSet,
        tree_cfg: &TreeConfig,
    ) -> Result<(Vec<(u32, TupleTree)>, usize), StorageError> {
        let total = rows.len();
        let todo: Vec<u32> = rows
            .filter(|&r| !(self.config.mark_seen && seen.is_seen(rel_name, r)))
            .collect();
        let skipped = total - todo.len();
        if todo.is_empty() {
            return Ok((Vec::new(), skipped));
        }
        if self.config.threads <= 1 || todo.len() < self.config.parallel_threshold.max(1) {
            return todo
                .into_iter()
                .map(|r| tuple_tree(src, rel_name, r, tree_cfg).map(|t| (r, t)))
                .collect::<Result<Vec<_>, _>>()
                .map(|v| (v, skipped));
        }
        let threads = self.config.threads.min(todo.len());
        let chunk = todo.len().div_ceil(threads);
        let mut out: Vec<Result<Vec<(u32, TupleTree)>, StorageError>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = todo
                .chunks(chunk)
                .map(|part| {
                    s.spawn(move || {
                        part.iter()
                            .map(|&r| tuple_tree(src, rel_name, r, tree_cfg).map(|t| (r, t)))
                            .collect::<Result<Vec<_>, _>>()
                    })
                })
                .collect();
            for h in handles {
                out.push(h.join().expect("tree-building worker panicked"));
            }
        });
        let mut flat = Vec::with_capacity(todo_len(&out));
        for part in out {
            flat.extend(part?);
        }
        Ok((flat, skipped))
    }

    /// The miss path: Match → translate → generate.
    fn generate_for(
        &self,
        tx: &TupleTree,
        matcher: &Matcher,
        target_forest: &SchemaForest,
        sigma: &Correspondences,
        target_schema: &Schema,
        trace: &mut Trace,
    ) -> Script {
        let m0 = trace.start();
        let m = matcher.best_match(tx, sigma);
        trace.end(Phase::Match, m0);
        let Some(m) = m else {
            return Script::default();
        };
        let Some(tr) = target_forest.tree(&m.relation) else {
            return Script::default();
        };
        let t0 = trace.start();
        let ty = translate(tx, tr, sigma);
        trace.end(Phase::Translate, t0);
        let g0 = trace.start();
        let script = generate_script(&ty, target_schema);
        trace.end(Phase::ScriptGen, g0);
        script
    }
}

fn todo_len(parts: &[Result<Vec<(u32, TupleTree)>, StorageError>]) -> usize {
    parts.iter().map(|p| p.as_ref().map_or(0, Vec::len)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::{ConflictPolicy, RelationSchema, Value};

    /// Source/target of the running example (Figs. 2–3).
    fn university() -> (Instance, Schema, Correspondences) {
        let student =
            RelationSchema::with_any_columns("Student", &["sname", "program", "dep", "supervisor"])
                .primary_key(&["sname"])
                .unwrap()
                .foreign_key(&["dep"], "Dep")
                .unwrap()
                .foreign_key(&["supervisor"], "Prof")
                .unwrap();
        let prof = RelationSchema::with_any_columns("Prof", &["pname", "degree", "profdep"])
            .primary_key(&["pname"])
            .unwrap()
            .foreign_key(&["profdep"], "Dep")
            .unwrap();
        let dep = RelationSchema::with_any_columns("Dep", &["dname", "building"])
            .primary_key(&["dname"])
            .unwrap();
        let reg = RelationSchema::with_any_columns("Registration", &["sname", "course", "regdate"])
            .foreign_key(&["sname"], "Student")
            .unwrap();
        let schema = Schema::from_relations(vec![student, prof, dep, reg]).unwrap();
        let mut inst = Instance::new(schema);
        let p = ConflictPolicy::Reject;
        inst.insert("Dep", sedex_storage::tuple!["d1", "b1"], p)
            .unwrap();
        inst.insert("Dep", sedex_storage::tuple!["d2", "b2"], p)
            .unwrap();
        inst.insert("Prof", sedex_storage::tuple!["prof1", "deg1", "d1"], p)
            .unwrap();
        inst.insert("Prof", sedex_storage::tuple!["prof2", "deg2", "d2"], p)
            .unwrap();
        inst.insert(
            "Student",
            sedex_storage::tuple!["s1", "p1", "d1", "prof1"],
            p,
        )
        .unwrap();
        inst.insert(
            "Student",
            sedex_storage::tuple!["s2", "p2", "d2", Value::Null],
            p,
        )
        .unwrap();
        inst.insert("Registration", sedex_storage::tuple!["s1", "c1", "dt1"], p)
            .unwrap();

        let stu =
            RelationSchema::with_any_columns("Stu", &["student", "prog", "dpt", "supervisor"])
                .primary_key(&["student"])
                .unwrap();
        let course = RelationSchema::with_any_columns("Course", &["cname", "credit"])
            .primary_key(&["cname"])
            .unwrap();
        let reg_t = RelationSchema::with_any_columns("Reg", &["student", "cname", "date"])
            .foreign_key(&["student"], "Stu")
            .unwrap()
            .foreign_key(&["cname"], "Course")
            .unwrap();
        let target = Schema::from_relations(vec![stu, course, reg_t]).unwrap();

        let sigma = Correspondences::from_name_pairs([
            ("sname", "student"),
            ("course", "cname"),
            ("regdate", "date"),
            ("program", "prog"),
            ("dep", "dpt"),
        ]);
        (inst, target, sigma)
    }

    #[test]
    fn university_end_to_end() {
        let (src, target_schema, sigma) = university();
        let engine = SedexEngine::new();
        let (out, report) = engine.exchange(&src, &target_schema, &sigma).unwrap();
        // Registration (height 5) is processed first: s1 flows through it.
        // Students s1 (seen) is skipped; s2 processed directly.
        let stu = out.relation("Stu").unwrap();
        assert_eq!(stu.len(), 2, "{out}");
        assert!(stu.lookup_pk(&[Value::text("s1")]).is_some());
        assert!(stu.lookup_pk(&[Value::text("s2")]).is_some());
        assert_eq!(out.relation("Reg").unwrap().len(), 1);
        assert!(report.tuples_skipped_seen >= 1, "report: {report:?}");
        assert!(report.violations == 0);
    }

    #[test]
    fn no_entity_fragmentation_single_student_reference() {
        // s1 is reachable via Registration AND present in Student: exactly
        // one Stu tuple must exist for it, with merged (not fragmented)
        // properties.
        let (src, target_schema, sigma) = university();
        let engine = SedexEngine::new();
        let (out, _) = engine.exchange(&src, &target_schema, &sigma).unwrap();
        let stu = out.relation("Stu").unwrap();
        let s1 = stu.lookup_pk(&[Value::text("s1")]).unwrap();
        assert_eq!(s1.values()[1], Value::text("p1"));
        assert_eq!(s1.values()[2], Value::text("d1"));
    }

    #[test]
    fn reuse_and_no_reuse_agree() {
        let (src, target_schema, sigma) = university();
        let with = SedexEngine::new();
        let without = SedexEngine::with_config(SedexConfig {
            reuse_scripts: false,
            ..SedexConfig::default()
        });
        let (out1, r1) = with.exchange(&src, &target_schema, &sigma).unwrap();
        let (out2, r2) = without.exchange(&src, &target_schema, &sigma).unwrap();
        assert_eq!(out1.stats(), out2.stats());
        assert_eq!(r2.scripts_reused, 0);
        assert!(r1.scripts_generated <= r2.scripts_generated);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let (mut src, target_schema, sigma) = university();
        // Enough rows to exercise the parallel path.
        for i in 0..500 {
            src.insert(
                "Registration",
                sedex_storage::tuple!["s1", format!("c{i}"), format!("dt{i}")],
                ConflictPolicy::Allow,
            )
            .unwrap();
        }
        let serial = SedexEngine::new();
        let parallel = SedexEngine::with_config(SedexConfig {
            threads: 4,
            batch_size: 128,
            ..SedexConfig::default()
        });
        let (o1, _) = serial.exchange(&src, &target_schema, &sigma).unwrap();
        let (o2, _) = parallel.exchange(&src, &target_schema, &sigma).unwrap();
        assert_eq!(o1.stats(), o2.stats());
        assert_eq!(
            o1.relation("Reg").unwrap().len(),
            o2.relation("Reg").unwrap().len()
        );
    }

    /// The parallel-pipeline acceptance criterion at unit scale: the
    /// threshold defaults to 64, a huge threshold keeps threads > 1 fully
    /// serial, and forcing the parallel pipeline (threshold 1) produces a
    /// byte-identical instance, identical counters, an identical hit/miss
    /// sequence and identical repository contents.
    #[test]
    fn parallel_threshold_gates_the_pipeline_and_output_is_byte_identical() {
        assert_eq!(SedexConfig::default().parallel_threshold, 64);
        let (mut src, target_schema, sigma) = university();
        for i in 0..300 {
            src.insert(
                "Registration",
                sedex_storage::tuple![format!("s{}", 1 + i % 2), format!("c{i}"), format!("dt{i}")],
                ConflictPolicy::Allow,
            )
            .unwrap();
        }
        let serial = SedexEngine::with_config(SedexConfig {
            record_hit_events: true,
            ..SedexConfig::default()
        });
        let gated = SedexEngine::with_config(SedexConfig {
            threads: 8,
            parallel_threshold: usize::MAX,
            record_hit_events: true,
            ..SedexConfig::default()
        });
        let forced = SedexEngine::with_config(SedexConfig {
            threads: 8,
            parallel_threshold: 1,
            batch_size: 64,
            record_hit_events: true,
            ..SedexConfig::default()
        });
        let (o1, r1, x1) = serial
            .exchange_with_repository(&src, &target_schema, &sigma)
            .unwrap();
        let (o2, _, _) = gated
            .exchange_with_repository(&src, &target_schema, &sigma)
            .unwrap();
        let (o3, r3, x3) = forced
            .exchange_with_repository(&src, &target_schema, &sigma)
            .unwrap();
        assert_eq!(format!("{o1}"), format!("{o2}"));
        assert_eq!(format!("{o1}"), format!("{o3}"));
        assert_eq!(
            (r1.scripts_generated, r1.scripts_reused, r1.tuples_processed),
            (r3.scripts_generated, r3.scripts_reused, r3.tuples_processed),
        );
        assert_eq!(
            (r1.inserted, r1.merged, r1.violations),
            (r3.inserted, r3.merged, r3.violations),
        );
        // Same lookup outcomes in the same order (timestamps differ).
        let hits = |r: &ExchangeReport| r.hit_events.iter().map(|e| e.hit).collect::<Vec<_>>();
        assert_eq!(hits(&r1), hits(&r3));
        // Same repository contents and counters.
        assert_eq!(x1.entries, x3.entries);
        assert_eq!((x1.hits, x1.misses), (x3.hits, x3.misses));
    }

    /// The `ablation_reuse` semantics survive the parallel pipeline: with
    /// reuse off, every tuple regenerates (no dedup by shape), and the
    /// output still matches the serial no-reuse engine.
    #[test]
    fn parallel_no_reuse_matches_serial_no_reuse() {
        let (mut src, target_schema, sigma) = university();
        for i in 0..200 {
            src.insert(
                "Registration",
                sedex_storage::tuple!["s1", format!("c{i}"), format!("dt{i}")],
                ConflictPolicy::Allow,
            )
            .unwrap();
        }
        let cfg = SedexConfig {
            reuse_scripts: false,
            ..SedexConfig::default()
        };
        let serial = SedexEngine::with_config(cfg.clone());
        let parallel = SedexEngine::with_config(SedexConfig {
            threads: 4,
            parallel_threshold: 1,
            ..cfg
        });
        let (o1, r1) = serial.exchange(&src, &target_schema, &sigma).unwrap();
        let (o2, r2) = parallel.exchange(&src, &target_schema, &sigma).unwrap();
        assert_eq!(format!("{o1}"), format!("{o2}"));
        assert_eq!(r1.scripts_generated, r2.scripts_generated);
        assert_eq!(r2.scripts_reused, 0);
    }

    #[test]
    fn scripts_are_reused_for_same_shape() {
        let (mut src, target_schema, sigma) = university();
        for i in 0..50 {
            src.insert(
                "Registration",
                sedex_storage::tuple!["s1", format!("c{i}"), format!("dt{i}")],
                ConflictPolicy::Allow,
            )
            .unwrap();
        }
        let engine = SedexEngine::new();
        let (_, report) = engine.exchange(&src, &target_schema, &sigma).unwrap();
        assert!(report.scripts_reused >= 49, "report: {report:?}");
        assert!(report.hit_ratio() > 0.5);
    }

    /// Acceptance criterion of the observability issue: with no observer
    /// attached and no slow threshold, the engine takes no phase clock
    /// readings at all — the breakdown stays identically zero.
    #[test]
    fn no_observer_no_threshold_records_no_phase_timings() {
        let (src, target_schema, sigma) = university();
        let (_, report) = SedexEngine::new()
            .exchange(&src, &target_schema, &sigma)
            .unwrap();
        assert!(report.phases.is_zero(), "phases: {:?}", report.phases);
    }

    /// The same invariant holds on the parallel pipeline: worker traces
    /// read no clocks either.
    #[test]
    fn parallel_pipeline_records_no_phase_timings_without_observer() {
        let (mut src, target_schema, sigma) = university();
        for i in 0..200 {
            src.insert(
                "Registration",
                sedex_storage::tuple!["s1", format!("c{i}"), format!("dt{i}")],
                ConflictPolicy::Allow,
            )
            .unwrap();
        }
        let engine = SedexEngine::with_config(SedexConfig {
            threads: 4,
            parallel_threshold: 1,
            ..SedexConfig::default()
        });
        let (_, report) = engine.exchange(&src, &target_schema, &sigma).unwrap();
        assert!(report.phases.is_zero(), "phases: {:?}", report.phases);
    }

    #[test]
    fn attached_registry_observer_fills_the_registry_live() {
        use sedex_observe::{names, MetricsRegistry, RegistryObserver};
        let (src, target_schema, sigma) = university();
        let registry = MetricsRegistry::new();
        let engine = SedexEngine::new().with_observer(Arc::new(RegistryObserver::new(&registry)));
        let (_, report) = engine.exchange(&src, &target_schema, &sigma).unwrap();
        assert!(!report.phases.is_zero());
        assert_eq!(registry.counter_value(names::EXCHANGE_TOTAL), Some(1));
        assert_eq!(
            registry.counter_value(names::TUPLES_TOTAL),
            Some(report.tuples_processed as u64)
        );
        assert_eq!(
            registry.counter_value(names::ROWS_INSERTED_TOTAL),
            Some(report.inserted as u64)
        );
    }

    /// The registry counters come out the same whether the pipeline ran
    /// serial or parallel — lookup/outcome events are count-carrying.
    #[test]
    fn parallel_registry_counters_match_serial() {
        use sedex_observe::{names, MetricsRegistry, RegistryObserver};
        let (mut src, target_schema, sigma) = university();
        for i in 0..150 {
            src.insert(
                "Registration",
                sedex_storage::tuple!["s1", format!("c{i}"), format!("dt{i}")],
                ConflictPolicy::Allow,
            )
            .unwrap();
        }
        let count = |threads: usize, threshold: usize| {
            let registry = MetricsRegistry::new();
            let engine = SedexEngine::with_config(SedexConfig {
                threads,
                parallel_threshold: threshold,
                ..SedexConfig::default()
            })
            .with_observer(Arc::new(RegistryObserver::new(&registry)));
            engine.exchange(&src, &target_schema, &sigma).unwrap();
            (
                registry.counter_value(names::TUPLES_TOTAL),
                registry.counter_value(names::ROWS_INSERTED_TOTAL),
                registry.counter_value(names::EGD_MERGE_TOTAL),
                registry.counter_value(names::VIOLATION_TOTAL),
            )
        };
        assert_eq!(count(1, 64), count(4, 1));
    }

    #[test]
    fn hit_event_cap_is_reported_and_counted() {
        use sedex_observe::{names, MetricsRegistry, RegistryObserver};
        let (mut src, target_schema, sigma) = university();
        for i in 0..100 {
            src.insert(
                "Registration",
                sedex_storage::tuple!["s1", format!("c{i}"), format!("dt{i}")],
                ConflictPolicy::Allow,
            )
            .unwrap();
        }
        let registry = MetricsRegistry::new();
        let engine = SedexEngine::with_config(SedexConfig {
            record_hit_events: true,
            hit_event_limit: 10,
            ..SedexConfig::default()
        })
        .with_observer(Arc::new(RegistryObserver::new(&registry)));
        let (_, report) = engine.exchange(&src, &target_schema, &sigma).unwrap();
        assert_eq!(report.hit_events.len(), 10);
        assert!(report.hit_events_dropped > 0, "report: {report:?}");
        assert_eq!(
            registry.counter_value(names::HIT_EVENTS_DROPPED_TOTAL),
            Some(report.hit_events_dropped as u64)
        );
    }

    #[test]
    fn slow_threshold_alone_populates_the_phase_breakdown() {
        let (src, target_schema, sigma) = university();
        let engine = SedexEngine::with_config(SedexConfig {
            slow_exchange_threshold: Some(Duration::ZERO),
            ..SedexConfig::default()
        });
        let (_, report) = engine.exchange(&src, &target_schema, &sigma).unwrap();
        assert!(!report.phases.is_zero());
        assert!(report.phases.total() <= report.total_time() * 2);
    }

    /// The Section 1.2 / 4.5 headline: SEDEX produces the EXPECTED solution
    /// on the generalization-ambiguity scenario — 2 tuples, not ++Spicy's 4.
    #[test]
    fn ambiguity_scenario_expected_solution() {
        let inst_rel = RelationSchema::with_any_columns(
            "Inst",
            &["name", "studentID", "employeeID", "courseId"],
        )
        .primary_key(&["name"])
        .unwrap()
        .foreign_key(&["courseId"], "Course")
        .unwrap();
        let course = RelationSchema::with_any_columns("Course", &["courseId", "credit"])
            .primary_key(&["courseId"])
            .unwrap();
        let source_schema = Schema::from_relations(vec![inst_rel, course]).unwrap();
        let mut src = Instance::new(source_schema);
        let p = ConflictPolicy::Allow;
        src.insert(
            "Inst",
            sedex_storage::tuple!["I1", "st1", Value::Null, "c1"],
            p,
        )
        .unwrap();
        src.insert(
            "Inst",
            sedex_storage::tuple!["I2", Value::Null, "e1", "c2"],
            p,
        )
        .unwrap();
        src.insert("Course", sedex_storage::tuple!["c1", 3i64], p)
            .unwrap();
        src.insert("Course", sedex_storage::tuple!["c2", 2i64], p)
            .unwrap();

        let grad = RelationSchema::with_any_columns("Grad", &["name", "stId", "course"])
            .primary_key(&["name"])
            .unwrap();
        let prof_t = RelationSchema::with_any_columns("Prof", &["name", "empId", "course"])
            .primary_key(&["name"])
            .unwrap();
        let target = Schema::from_relations(vec![grad, prof_t]).unwrap();

        let mut sigma = Correspondences::new();
        sigma.add_qualified("Inst", "name", "Grad", "name");
        sigma.add_qualified("Inst", "name", "Prof", "name");
        sigma.add_qualified("Inst", "studentID", "Grad", "stId");
        sigma.add_qualified("Inst", "employeeID", "Prof", "empId");
        sigma.add_qualified("Inst", "courseId", "Grad", "course");
        sigma.add_qualified("Inst", "courseId", "Prof", "course");

        let engine = SedexEngine::new();
        let (out, _) = engine.exchange(&src, &target, &sigma).unwrap();
        // Expected solution: Grad(I1, st1, c1) and Prof(I2, e1, c2) ONLY.
        assert_eq!(out.relation("Grad").unwrap().len(), 1, "{out}");
        assert_eq!(out.relation("Prof").unwrap().len(), 1, "{out}");
        assert_eq!(
            out.relation("Grad").unwrap().row(0).unwrap(),
            &sedex_storage::tuple!["I1", "st1", "c1"]
        );
        assert_eq!(
            out.relation("Prof").unwrap().row(0).unwrap(),
            &sedex_storage::tuple!["I2", "e1", "c2"]
        );
        assert_eq!(out.stats().nulls, 0);
    }
}
