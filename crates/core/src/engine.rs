//! The SEDEX engine: the pay-as-you-go pipeline of Fig. 1.
//!
//! ```text
//! load CFDs → order relations by tree height → per unseen tuple:
//!   build tuple tree (mark referenced tuples seen)
//!   shape key → script repository?
//!     hit  → reuse script
//!     miss → Match → translate (Alg. 1) → generate script (Alg. 2) → store
//!   run script under target egds
//! ```
//!
//! Every knob the paper discusses (and every ablation DESIGN.md calls out)
//! is a field of [`SedexConfig`].

use std::sync::Arc;
use std::time::{Duration, Instant};

use sedex_mapping::Correspondences;
use sedex_observe::{Observer, Phase};
use sedex_storage::{Instance, Schema, StorageError};
use sedex_treerep::{tuple_shape_key, tuple_tree, SchemaForest, TreeConfig, TupleTree};

use crate::cfd::CfdInterpreter;
use crate::marking::SeenSet;
use crate::matcher::Matcher;
use crate::metrics::ExchangeReport;
use crate::repository::ScriptRepository;
use crate::script::{run_script, RunOutcome, Script};
use crate::scriptgen::generate_script;
use crate::trace::Trace;
use crate::translate::{slot_values, translate};

/// Configuration of a SEDEX exchange.
#[derive(Debug, Clone)]
pub struct SedexConfig {
    /// pq-gram stem length (the paper's examples use 2).
    pub p: usize,
    /// pq-gram window width (the paper's examples use 1).
    pub q: usize,
    /// Use the windowed pq-gram construction with this window width
    /// (`w ≥ q`). `None` (default) uses sorted plain pq-grams, which
    /// coincide with the windowed ones at `q = 1`.
    pub window: Option<usize>,
    /// Reuse scripts via the shape-keyed repository (Section 4.4.2). Off =
    /// the `ablation_reuse` configuration: every tuple is re-matched and
    /// re-translated.
    pub reuse_scripts: bool,
    /// Process relations in descending relation-tree height (Section 4.1).
    /// Off = schema order, which can fragment entities.
    pub order_by_height: bool,
    /// Skip tuples already reached through a referencing tuple
    /// (Section 4.2).
    pub mark_seen: bool,
    /// Drop null properties from tuple trees (the paper's semantics). Off =
    /// SEDEX degenerates to a pure schema-level mapper on ambiguous
    /// scenarios.
    pub prune_nulls: bool,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Worker threads for the tuple-tree building phase; 1 = serial.
    /// The output instance is identical regardless of thread count.
    pub threads: usize,
    /// Record per-lookup hit events (needed only for the Fig. 14 curve).
    pub record_hit_events: bool,
    /// Tuples are processed in batches of this many rows (bounds memory in
    /// the parallel phase).
    pub batch_size: usize,
    /// Exchanges slower than this emit a one-line structured record (with
    /// per-phase breakdown) to stderr and an
    /// [`Event::SlowExchange`] to the attached observer. `None` (default)
    /// disables the check and the per-phase clock reads it needs.
    pub slow_exchange_threshold: Option<Duration>,
}

impl Default for SedexConfig {
    fn default() -> Self {
        SedexConfig {
            p: 2,
            q: 1,
            window: None,
            reuse_scripts: true,
            order_by_height: true,
            mark_seen: true,
            prune_nulls: true,
            max_depth: 32,
            threads: 1,
            record_hit_events: false,
            batch_size: 8192,
            slow_exchange_threshold: None,
        }
    }
}

/// The SEDEX engine.
#[derive(Clone, Default)]
pub struct SedexEngine {
    config: SedexConfig,
    cfds: CfdInterpreter,
    observer: Option<Arc<dyn Observer>>,
}

impl std::fmt::Debug for SedexEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SedexEngine")
            .field("config", &self.config)
            .field("cfds", &self.cfds)
            .field(
                "observer",
                &self.observer.as_ref().map(|_| "<dyn Observer>"),
            )
            .finish()
    }
}

impl SedexEngine {
    /// An engine with the default configuration and no CFDs.
    pub fn new() -> Self {
        SedexEngine::default()
    }

    /// An engine with an explicit configuration.
    pub fn with_config(config: SedexConfig) -> Self {
        SedexEngine {
            config,
            ..SedexEngine::default()
        }
    }

    /// Attach a CFD interpreter (Fig. 1's "Load CFDs" step).
    pub fn with_cfds(mut self, cfds: CfdInterpreter) -> Self {
        self.cfds = cfds;
        self
    }

    /// Attach a trace observer: every pipeline phase, repository lookup,
    /// egd merge and violation is reported to it as a structured
    /// [`Event`]. Without an observer (the default) the tracing hooks
    /// cost a `None` check — no clock reads, no allocation, no atomics.
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The configuration.
    pub fn config(&self) -> &SedexConfig {
        &self.config
    }

    /// Run the exchange: translate `source` into a fresh instance of
    /// `target_schema` under the correspondences Σ. Target egds are the
    /// target schema's key constraints, applied at script-run time.
    ///
    /// ```
    /// use sedex_core::SedexEngine;
    /// use sedex_mapping::Correspondences;
    /// use sedex_storage::{tuple, ConflictPolicy, Instance, RelationSchema, Schema};
    ///
    /// let src_schema = Schema::from_relations(vec![
    ///     RelationSchema::with_any_columns("R", &["k", "v"]).primary_key(&["k"]).unwrap(),
    /// ]).unwrap();
    /// let tgt_schema = Schema::from_relations(vec![
    ///     RelationSchema::with_any_columns("T", &["tk", "tv"]).primary_key(&["tk"]).unwrap(),
    /// ]).unwrap();
    /// let sigma = Correspondences::from_name_pairs([("k", "tk"), ("v", "tv")]);
    ///
    /// let mut src = Instance::new(src_schema);
    /// src.insert("R", tuple!["k1", "hello"], ConflictPolicy::Reject).unwrap();
    ///
    /// let (out, report) = SedexEngine::new().exchange(&src, &tgt_schema, &sigma).unwrap();
    /// assert_eq!(out.relation("T").unwrap().row(0).unwrap(), &tuple!["k1", "hello"]);
    /// assert_eq!(report.scripts_generated, 1);
    /// ```
    pub fn exchange(
        &self,
        source: &Instance,
        target_schema: &Schema,
        sigma: &Correspondences,
    ) -> Result<(Instance, ExchangeReport), StorageError> {
        let cfg = &self.config;
        let tree_cfg = TreeConfig {
            max_depth: cfg.max_depth,
            prune_nulls: cfg.prune_nulls,
        };
        let mut report = ExchangeReport::default();
        let mut trace = Trace::new(self.observer.as_deref(), cfg.slow_exchange_threshold);
        let tg_start = Instant::now();

        // Fig. 1: load + apply CFDs before tuple trees are generated.
        let prepared;
        let src: &Instance = if self.cfds.is_empty() {
            source
        } else {
            let mut clone = source.clone();
            self.cfds.apply(&mut clone)?;
            prepared = clone;
            &prepared
        };

        let source_forest = SchemaForest::new(src.schema(), &tree_cfg)?;
        let target_forest = SchemaForest::new(target_schema, &tree_cfg)?;
        let matcher = match cfg.window {
            None => Matcher::new(&target_forest, cfg.p, cfg.q),
            Some(w) => Matcher::windowed(&target_forest, cfg.p, cfg.q, w),
        };

        let order: Vec<String> = if cfg.order_by_height {
            source_forest
                .processing_order()
                .into_iter()
                .map(str::to_owned)
                .collect()
        } else {
            src.schema().relation_names().map(str::to_owned).collect()
        };

        let mut repo = ScriptRepository::new(cfg.record_hit_events);
        let mut seen = SeenSet::for_instance(src);
        let mut target = Instance::new(target_schema.clone());
        let mut outcome = RunOutcome::default();
        let mut fresh_counter: u64 = 0;
        report.tg = tg_start.elapsed();

        for rel_name in &order {
            let row_count = src.relation_or_err(rel_name)?.len() as u32;
            let mut batch_start = 0u32;
            while batch_start < row_count {
                let batch_end = (batch_start + cfg.batch_size as u32).min(row_count);
                let tg0 = Instant::now();
                let tb = trace.start();
                let (trees, skipped) =
                    self.build_batch(src, rel_name, batch_start..batch_end, &seen, &tree_cfg)?;
                trace.end(Phase::TreeBuild, tb);
                report.tuples_skipped_seen += skipped;
                let mut tg_batch = tg0.elapsed();

                for (row, tx) in trees {
                    // Re-check: a tuple earlier in this batch may have
                    // marked this one.
                    if cfg.mark_seen && seen.is_seen(rel_name, row) {
                        report.tuples_skipped_seen += 1;
                        continue;
                    }
                    let t0 = Instant::now();
                    if cfg.mark_seen {
                        seen.mark_all(&tx.visited);
                    }
                    let mut key = String::with_capacity(rel_name.len() + 64);
                    key.push_str(rel_name);
                    key.push('|');
                    key.push_str(&tuple_shape_key(&tx));
                    let script = if cfg.reuse_scripts {
                        repo.lookup(&key)
                    } else {
                        None
                    };
                    let script = match script {
                        Some(s) => {
                            report.scripts_reused += 1;
                            trace.lookup(true);
                            s
                        }
                        None => {
                            report.scripts_generated += 1;
                            trace.lookup(false);
                            let generated = self.generate_for(
                                &tx,
                                &matcher,
                                &target_forest,
                                sigma,
                                target_schema,
                                &mut trace,
                            );
                            if generated.is_empty() {
                                report.tuples_unmatched += 1;
                            }
                            repo.insert(key, generated)
                        }
                    };
                    report.tuples_processed += 1;
                    tg_batch += t0.elapsed();

                    let t1 = Instant::now();
                    if !script.is_empty() {
                        let sr = trace.start();
                        let delta = run_script(
                            &script,
                            &slot_values(&tx),
                            &mut target,
                            &mut fresh_counter,
                        )?;
                        trace.end(Phase::ScriptRun, sr);
                        trace.outcome(&delta);
                        outcome += delta;
                    }
                    report.te += t1.elapsed();
                }
                report.tg += tg_batch;
                batch_start = batch_end;
            }
        }

        report.inserted = outcome.inserted;
        report.merged = outcome.merged;
        report.violations = outcome.violations;
        report.stats = target.stats();
        report.hit_events = repo.take_events();
        report.phases = trace.totals;
        trace.finish_exchange(
            report.total_time(),
            report.tuples_processed as u64,
            cfg.slow_exchange_threshold,
        );
        Ok((target, report))
    }

    /// Build tuple trees for the unseen rows of one batch, optionally in
    /// parallel. Returns `(row, tree)` pairs in ascending row order, plus
    /// the number of rows skipped because they were already seen.
    fn build_batch(
        &self,
        src: &Instance,
        rel_name: &str,
        rows: std::ops::Range<u32>,
        seen: &SeenSet,
        tree_cfg: &TreeConfig,
    ) -> Result<(Vec<(u32, TupleTree)>, usize), StorageError> {
        let total = rows.len();
        let todo: Vec<u32> = rows
            .filter(|&r| !(self.config.mark_seen && seen.is_seen(rel_name, r)))
            .collect();
        let skipped = total - todo.len();
        if todo.is_empty() {
            return Ok((Vec::new(), skipped));
        }
        if self.config.threads <= 1 || todo.len() < 64 {
            return todo
                .into_iter()
                .map(|r| tuple_tree(src, rel_name, r, tree_cfg).map(|t| (r, t)))
                .collect::<Result<Vec<_>, _>>()
                .map(|v| (v, skipped));
        }
        let threads = self.config.threads.min(todo.len());
        let chunk = todo.len().div_ceil(threads);
        let mut out: Vec<Result<Vec<(u32, TupleTree)>, StorageError>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = todo
                .chunks(chunk)
                .map(|part| {
                    s.spawn(move || {
                        part.iter()
                            .map(|&r| tuple_tree(src, rel_name, r, tree_cfg).map(|t| (r, t)))
                            .collect::<Result<Vec<_>, _>>()
                    })
                })
                .collect();
            for h in handles {
                out.push(h.join().expect("tree-building worker panicked"));
            }
        });
        let mut flat = Vec::with_capacity(todo_len(&out));
        for part in out {
            flat.extend(part?);
        }
        Ok((flat, skipped))
    }

    /// The miss path: Match → translate → generate.
    fn generate_for(
        &self,
        tx: &TupleTree,
        matcher: &Matcher,
        target_forest: &SchemaForest,
        sigma: &Correspondences,
        target_schema: &Schema,
        trace: &mut Trace,
    ) -> Script {
        let m0 = trace.start();
        let m = matcher.best_match(tx, sigma);
        trace.end(Phase::Match, m0);
        let Some(m) = m else {
            return Script::default();
        };
        let Some(tr) = target_forest.tree(&m.relation) else {
            return Script::default();
        };
        let t0 = trace.start();
        let ty = translate(tx, tr, sigma);
        trace.end(Phase::Translate, t0);
        let g0 = trace.start();
        let script = generate_script(&ty, target_schema);
        trace.end(Phase::ScriptGen, g0);
        script
    }
}

fn todo_len(parts: &[Result<Vec<(u32, TupleTree)>, StorageError>]) -> usize {
    parts.iter().map(|p| p.as_ref().map_or(0, Vec::len)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::{ConflictPolicy, RelationSchema, Value};

    /// Source/target of the running example (Figs. 2–3).
    fn university() -> (Instance, Schema, Correspondences) {
        let student =
            RelationSchema::with_any_columns("Student", &["sname", "program", "dep", "supervisor"])
                .primary_key(&["sname"])
                .unwrap()
                .foreign_key(&["dep"], "Dep")
                .unwrap()
                .foreign_key(&["supervisor"], "Prof")
                .unwrap();
        let prof = RelationSchema::with_any_columns("Prof", &["pname", "degree", "profdep"])
            .primary_key(&["pname"])
            .unwrap()
            .foreign_key(&["profdep"], "Dep")
            .unwrap();
        let dep = RelationSchema::with_any_columns("Dep", &["dname", "building"])
            .primary_key(&["dname"])
            .unwrap();
        let reg = RelationSchema::with_any_columns("Registration", &["sname", "course", "regdate"])
            .foreign_key(&["sname"], "Student")
            .unwrap();
        let schema = Schema::from_relations(vec![student, prof, dep, reg]).unwrap();
        let mut inst = Instance::new(schema);
        let p = ConflictPolicy::Reject;
        inst.insert("Dep", sedex_storage::tuple!["d1", "b1"], p)
            .unwrap();
        inst.insert("Dep", sedex_storage::tuple!["d2", "b2"], p)
            .unwrap();
        inst.insert("Prof", sedex_storage::tuple!["prof1", "deg1", "d1"], p)
            .unwrap();
        inst.insert("Prof", sedex_storage::tuple!["prof2", "deg2", "d2"], p)
            .unwrap();
        inst.insert(
            "Student",
            sedex_storage::tuple!["s1", "p1", "d1", "prof1"],
            p,
        )
        .unwrap();
        inst.insert(
            "Student",
            sedex_storage::tuple!["s2", "p2", "d2", Value::Null],
            p,
        )
        .unwrap();
        inst.insert("Registration", sedex_storage::tuple!["s1", "c1", "dt1"], p)
            .unwrap();

        let stu =
            RelationSchema::with_any_columns("Stu", &["student", "prog", "dpt", "supervisor"])
                .primary_key(&["student"])
                .unwrap();
        let course = RelationSchema::with_any_columns("Course", &["cname", "credit"])
            .primary_key(&["cname"])
            .unwrap();
        let reg_t = RelationSchema::with_any_columns("Reg", &["student", "cname", "date"])
            .foreign_key(&["student"], "Stu")
            .unwrap()
            .foreign_key(&["cname"], "Course")
            .unwrap();
        let target = Schema::from_relations(vec![stu, course, reg_t]).unwrap();

        let sigma = Correspondences::from_name_pairs([
            ("sname", "student"),
            ("course", "cname"),
            ("regdate", "date"),
            ("program", "prog"),
            ("dep", "dpt"),
        ]);
        (inst, target, sigma)
    }

    #[test]
    fn university_end_to_end() {
        let (src, target_schema, sigma) = university();
        let engine = SedexEngine::new();
        let (out, report) = engine.exchange(&src, &target_schema, &sigma).unwrap();
        // Registration (height 5) is processed first: s1 flows through it.
        // Students s1 (seen) is skipped; s2 processed directly.
        let stu = out.relation("Stu").unwrap();
        assert_eq!(stu.len(), 2, "{out}");
        assert!(stu.lookup_pk(&[Value::text("s1")]).is_some());
        assert!(stu.lookup_pk(&[Value::text("s2")]).is_some());
        assert_eq!(out.relation("Reg").unwrap().len(), 1);
        assert!(report.tuples_skipped_seen >= 1, "report: {report:?}");
        assert!(report.violations == 0);
    }

    #[test]
    fn no_entity_fragmentation_single_student_reference() {
        // s1 is reachable via Registration AND present in Student: exactly
        // one Stu tuple must exist for it, with merged (not fragmented)
        // properties.
        let (src, target_schema, sigma) = university();
        let engine = SedexEngine::new();
        let (out, _) = engine.exchange(&src, &target_schema, &sigma).unwrap();
        let stu = out.relation("Stu").unwrap();
        let s1 = stu.lookup_pk(&[Value::text("s1")]).unwrap();
        assert_eq!(s1.values()[1], Value::text("p1"));
        assert_eq!(s1.values()[2], Value::text("d1"));
    }

    #[test]
    fn reuse_and_no_reuse_agree() {
        let (src, target_schema, sigma) = university();
        let with = SedexEngine::new();
        let without = SedexEngine::with_config(SedexConfig {
            reuse_scripts: false,
            ..SedexConfig::default()
        });
        let (out1, r1) = with.exchange(&src, &target_schema, &sigma).unwrap();
        let (out2, r2) = without.exchange(&src, &target_schema, &sigma).unwrap();
        assert_eq!(out1.stats(), out2.stats());
        assert_eq!(r2.scripts_reused, 0);
        assert!(r1.scripts_generated <= r2.scripts_generated);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let (mut src, target_schema, sigma) = university();
        // Enough rows to exercise the parallel path.
        for i in 0..500 {
            src.insert(
                "Registration",
                sedex_storage::tuple!["s1", format!("c{i}"), format!("dt{i}")],
                ConflictPolicy::Allow,
            )
            .unwrap();
        }
        let serial = SedexEngine::new();
        let parallel = SedexEngine::with_config(SedexConfig {
            threads: 4,
            batch_size: 128,
            ..SedexConfig::default()
        });
        let (o1, _) = serial.exchange(&src, &target_schema, &sigma).unwrap();
        let (o2, _) = parallel.exchange(&src, &target_schema, &sigma).unwrap();
        assert_eq!(o1.stats(), o2.stats());
        assert_eq!(
            o1.relation("Reg").unwrap().len(),
            o2.relation("Reg").unwrap().len()
        );
    }

    #[test]
    fn scripts_are_reused_for_same_shape() {
        let (mut src, target_schema, sigma) = university();
        for i in 0..50 {
            src.insert(
                "Registration",
                sedex_storage::tuple!["s1", format!("c{i}"), format!("dt{i}")],
                ConflictPolicy::Allow,
            )
            .unwrap();
        }
        let engine = SedexEngine::new();
        let (_, report) = engine.exchange(&src, &target_schema, &sigma).unwrap();
        assert!(report.scripts_reused >= 49, "report: {report:?}");
        assert!(report.hit_ratio() > 0.5);
    }

    /// Acceptance criterion of the observability issue: with no observer
    /// attached and no slow threshold, the engine takes no phase clock
    /// readings at all — the breakdown stays identically zero.
    #[test]
    fn no_observer_no_threshold_records_no_phase_timings() {
        let (src, target_schema, sigma) = university();
        let (_, report) = SedexEngine::new()
            .exchange(&src, &target_schema, &sigma)
            .unwrap();
        assert!(report.phases.is_zero(), "phases: {:?}", report.phases);
    }

    #[test]
    fn attached_registry_observer_fills_the_registry_live() {
        use sedex_observe::{names, MetricsRegistry, RegistryObserver};
        let (src, target_schema, sigma) = university();
        let registry = MetricsRegistry::new();
        let engine = SedexEngine::new().with_observer(Arc::new(RegistryObserver::new(&registry)));
        let (_, report) = engine.exchange(&src, &target_schema, &sigma).unwrap();
        assert!(!report.phases.is_zero());
        assert_eq!(registry.counter_value(names::EXCHANGE_TOTAL), Some(1));
        assert_eq!(
            registry.counter_value(names::TUPLES_TOTAL),
            Some(report.tuples_processed as u64)
        );
        assert_eq!(
            registry.counter_value(names::ROWS_INSERTED_TOTAL),
            Some(report.inserted as u64)
        );
    }

    #[test]
    fn slow_threshold_alone_populates_the_phase_breakdown() {
        let (src, target_schema, sigma) = university();
        let engine = SedexEngine::with_config(SedexConfig {
            slow_exchange_threshold: Some(Duration::ZERO),
            ..SedexConfig::default()
        });
        let (_, report) = engine.exchange(&src, &target_schema, &sigma).unwrap();
        assert!(!report.phases.is_zero());
        assert!(report.phases.total() <= report.total_time() * 2);
    }

    /// The Section 1.2 / 4.5 headline: SEDEX produces the EXPECTED solution
    /// on the generalization-ambiguity scenario — 2 tuples, not ++Spicy's 4.
    #[test]
    fn ambiguity_scenario_expected_solution() {
        let inst_rel = RelationSchema::with_any_columns(
            "Inst",
            &["name", "studentID", "employeeID", "courseId"],
        )
        .primary_key(&["name"])
        .unwrap()
        .foreign_key(&["courseId"], "Course")
        .unwrap();
        let course = RelationSchema::with_any_columns("Course", &["courseId", "credit"])
            .primary_key(&["courseId"])
            .unwrap();
        let source_schema = Schema::from_relations(vec![inst_rel, course]).unwrap();
        let mut src = Instance::new(source_schema);
        let p = ConflictPolicy::Allow;
        src.insert(
            "Inst",
            sedex_storage::tuple!["I1", "st1", Value::Null, "c1"],
            p,
        )
        .unwrap();
        src.insert(
            "Inst",
            sedex_storage::tuple!["I2", Value::Null, "e1", "c2"],
            p,
        )
        .unwrap();
        src.insert("Course", sedex_storage::tuple!["c1", 3i64], p)
            .unwrap();
        src.insert("Course", sedex_storage::tuple!["c2", 2i64], p)
            .unwrap();

        let grad = RelationSchema::with_any_columns("Grad", &["name", "stId", "course"])
            .primary_key(&["name"])
            .unwrap();
        let prof_t = RelationSchema::with_any_columns("Prof", &["name", "empId", "course"])
            .primary_key(&["name"])
            .unwrap();
        let target = Schema::from_relations(vec![grad, prof_t]).unwrap();

        let mut sigma = Correspondences::new();
        sigma.add_qualified("Inst", "name", "Grad", "name");
        sigma.add_qualified("Inst", "name", "Prof", "name");
        sigma.add_qualified("Inst", "studentID", "Grad", "stId");
        sigma.add_qualified("Inst", "employeeID", "Prof", "empId");
        sigma.add_qualified("Inst", "courseId", "Grad", "course");
        sigma.add_qualified("Inst", "courseId", "Prof", "course");

        let engine = SedexEngine::new();
        let (out, _) = engine.exchange(&src, &target, &sigma).unwrap();
        // Expected solution: Grad(I1, st1, c1) and Prof(I2, e1, c2) ONLY.
        assert_eq!(out.relation("Grad").unwrap().len(), 1, "{out}");
        assert_eq!(out.relation("Prof").unwrap().len(), 1, "{out}");
        assert_eq!(
            out.relation("Grad").unwrap().row(0).unwrap(),
            &sedex_storage::tuple!["I1", "st1", "c1"]
        );
        assert_eq!(
            out.relation("Prof").unwrap().row(0).unwrap(),
            &sedex_storage::tuple!["I2", "e1", "c2"]
        );
        assert_eq!(out.stats().nulls, 0);
    }
}
