//! Conditional functional dependencies (Section 4.4.3).
//!
//! CFDs "capture data consistency by enforcing bindings of semantically
//! related values", conditionally on a subset of a relation:
//!
//! * **intra-table** — `Treat('dialysis' ⇒ 'kidney disease')`: within one
//!   table, the value of one property determines another's;
//! * **inter-table** — `PATIENT.disease('kidney problem') ⇒
//!   Doctor.Specialty('Urologist')`: a property value in one table
//!   determines a property of the FK-related tuple in another.
//!
//! SEDEX does not *discover* CFDs (that is separate research the paper
//! cites); it loads and interprets them. The interpreter builds one hash
//! table per kind, keyed exactly as the paper describes — the left-hand
//! property (intra) or table+property (inter) — and the engine consults them
//! before tuple trees are generated, filling in determined values that the
//! source left null.

use std::collections::HashMap;

use sedex_storage::{Instance, StorageError, Value};

/// One conditional functional dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cfd {
    /// Within `relation`: `cond_col = cond_val ⇒ det_col = det_val`.
    Intra {
        /// Constrained relation.
        relation: String,
        /// Condition column.
        cond_col: String,
        /// Condition value.
        cond_val: Value,
        /// Determined column.
        det_col: String,
        /// Determined value.
        det_val: Value,
    },
    /// Across a foreign key: a tuple of `left_rel` with
    /// `left_col = left_val` determines `right_col = right_val` on the
    /// FK-related tuple of `right_rel`.
    Inter {
        /// Conditioning relation.
        left_rel: String,
        /// Conditioning column.
        left_col: String,
        /// Conditioning value.
        left_val: Value,
        /// Determined relation.
        right_rel: String,
        /// Determined column.
        right_col: String,
        /// Determined value.
        right_val: Value,
    },
}

/// Error produced when parsing the textual CFD format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfdParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CfdParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CFD parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CfdParseError {}

/// Parse one side of a CFD: `Relation.column = 'value'`.
fn parse_side(s: &str, line: usize) -> Result<(String, String, Value), CfdParseError> {
    let err = |message: &str| CfdParseError {
        line,
        message: message.to_owned(),
    };
    let (lhs, rhs) = s
        .split_once('=')
        .ok_or_else(|| err("expected `Relation.column = 'value'`"))?;
    let (rel, col) = lhs
        .trim()
        .split_once('.')
        .ok_or_else(|| err("expected `Relation.column` before `=`"))?;
    let val = rhs.trim();
    let val = val
        .strip_prefix('\'')
        .and_then(|v| v.strip_suffix('\''))
        .ok_or_else(|| err("expected a single-quoted value"))?;
    if rel.trim().is_empty() || col.trim().is_empty() {
        return Err(err("empty relation or column name"));
    }
    Ok((
        rel.trim().to_owned(),
        col.trim().to_owned(),
        Value::text(val),
    ))
}

/// The CFD interpreter: hash tables over loaded CFDs plus the application
/// pass (Fig. 1's "Load CFDs" → "Apply" steps).
#[derive(Debug, Clone, Default)]
pub struct CfdInterpreter {
    /// (relation, cond column) → CFDs with that left side.
    intra: HashMap<(String, String), Vec<Cfd>>,
    /// (left relation, left column) → CFDs with that left side.
    inter: HashMap<(String, String), Vec<Cfd>>,
    count: usize,
}

impl CfdInterpreter {
    /// An interpreter with no CFDs loaded.
    pub fn new() -> Self {
        CfdInterpreter::default()
    }

    /// Load a set of CFDs into the hash tables.
    pub fn load(cfds: impl IntoIterator<Item = Cfd>) -> Self {
        let mut i = CfdInterpreter::new();
        for c in cfds {
            i.add(c);
        }
        i
    }

    /// Parse the textual CFD format the repository ships instead of the
    /// paper's XML (one dependency per line; `#` comments):
    ///
    /// ```text
    /// # intra-table: same relation on both sides
    /// Patient.treatment = 'dialysis' => Patient.disease = 'kidney disease'
    /// # inter-table: constraint across a foreign key
    /// Patient.disease = 'kidney disease' => Doctor.specialty = 'Urologist'
    /// ```
    pub fn parse(text: &str) -> Result<Self, CfdParseError> {
        let mut interp = CfdInterpreter::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (lhs, rhs) = line.split_once("=>").ok_or_else(|| CfdParseError {
                line: line_no,
                message: "expected `left => right`".to_owned(),
            })?;
            let (l_rel, l_col, l_val) = parse_side(lhs, line_no)?;
            let (r_rel, r_col, r_val) = parse_side(rhs, line_no)?;
            if l_rel == r_rel {
                interp.add(Cfd::Intra {
                    relation: l_rel,
                    cond_col: l_col,
                    cond_val: l_val,
                    det_col: r_col,
                    det_val: r_val,
                });
            } else {
                interp.add(Cfd::Inter {
                    left_rel: l_rel,
                    left_col: l_col,
                    left_val: l_val,
                    right_rel: r_rel,
                    right_col: r_col,
                    right_val: r_val,
                });
            }
        }
        Ok(interp)
    }

    /// Add one CFD.
    pub fn add(&mut self, cfd: Cfd) {
        self.count += 1;
        match &cfd {
            Cfd::Intra {
                relation, cond_col, ..
            } => self
                .intra
                .entry((relation.clone(), cond_col.clone()))
                .or_default()
                .push(cfd),
            Cfd::Inter {
                left_rel, left_col, ..
            } => self
                .inter
                .entry((left_rel.clone(), left_col.clone()))
                .or_default()
                .push(cfd),
        }
    }

    /// Number of loaded CFDs.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no CFDs are loaded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Apply all CFDs to an instance, filling in *null* determined values
    /// (never overwriting existing constants: CFDs infer missing implicit
    /// properties). Returns the number of values filled in.
    pub fn apply(&self, instance: &mut Instance) -> Result<usize, StorageError> {
        if self.is_empty() {
            return Ok(0);
        }
        let mut filled = 0;
        filled += self.apply_intra(instance)?;
        filled += self.apply_inter(instance)?;
        Ok(filled)
    }

    fn apply_intra(&self, instance: &mut Instance) -> Result<usize, StorageError> {
        let mut filled = 0;
        let rel_names: Vec<String> = instance
            .schema()
            .relation_names()
            .map(str::to_owned)
            .collect();
        for name in rel_names {
            // Collect this relation's applicable CFDs up front.
            let applicable: Vec<&Cfd> = {
                let schema = instance.schema().relation_or_err(&name)?;
                schema
                    .columns
                    .iter()
                    .filter_map(|c| self.intra.get(&(name.clone(), c.name.clone())))
                    .flatten()
                    .collect()
            };
            if applicable.is_empty() {
                continue;
            }
            // Resolve column indexes.
            let resolved: Vec<(usize, Value, usize, Value)> = {
                let schema = instance.schema().relation_or_err(&name)?;
                applicable
                    .iter()
                    .filter_map(|c| {
                        let Cfd::Intra {
                            cond_col,
                            cond_val,
                            det_col,
                            det_val,
                            ..
                        } = c
                        else {
                            return None;
                        };
                        Some((
                            schema.column_index(cond_col)?,
                            cond_val.clone(),
                            schema.column_index(det_col)?,
                            det_val.clone(),
                        ))
                    })
                    .collect()
            };
            let rel = instance.relation_mut(&name)?;
            let mut rows = rel.rows().to_vec();
            let mut changed = false;
            for t in &mut rows {
                for (ci, cv, di, dv) in &resolved {
                    if &t.values()[*ci] == cv && t.values()[*di].is_null() {
                        t.values_mut()[*di] = dv.clone();
                        filled += 1;
                        changed = true;
                    }
                }
            }
            if changed {
                rel.set_rows(rows);
            }
        }
        Ok(filled)
    }

    fn apply_inter(&self, instance: &mut Instance) -> Result<usize, StorageError> {
        let mut filled = 0;
        // Gather updates first (immutable pass), then apply.
        let mut updates: Vec<(String, Vec<sedex_storage::Tuple>)> = Vec::new();
        let rel_names: Vec<String> = instance
            .schema()
            .relation_names()
            .map(str::to_owned)
            .collect();
        for left_name in &rel_names {
            let left_schema = instance.schema().relation_or_err(left_name)?.clone();
            for (col_idx, col) in left_schema.columns.iter().enumerate() {
                let Some(cfds) = self.inter.get(&(left_name.clone(), col.name.clone())) else {
                    continue;
                };
                for cfd in cfds {
                    let Cfd::Inter {
                        left_val,
                        right_rel,
                        right_col,
                        right_val,
                        ..
                    } = cfd
                    else {
                        continue;
                    };
                    // Find an FK from left_rel into right_rel.
                    let Some((fk_idx, _)) = left_schema
                        .foreign_keys
                        .iter()
                        .enumerate()
                        .find(|(_, fk)| &fk.ref_relation == right_rel)
                    else {
                        continue;
                    };
                    let right_schema = instance.schema().relation_or_err(right_rel)?;
                    let Some(det_idx) = right_schema.column_index(right_col) else {
                        continue;
                    };
                    // For each conditioning tuple, update the related tuple.
                    let mut right_rows = instance.relation_or_err(right_rel)?.rows().to_vec();
                    let mut changed = false;
                    let left_rows: Vec<sedex_storage::Tuple> =
                        instance.relation_or_err(left_name)?.rows().to_vec();
                    for lt in &left_rows {
                        if &lt.values()[col_idx] != left_val {
                            continue;
                        }
                        if let Some((_, rid)) = instance.deref_fk_row(left_name, fk_idx, lt) {
                            let row = &mut right_rows[rid as usize];
                            if row.values()[det_idx].is_null() {
                                row.values_mut()[det_idx] = right_val.clone();
                                filled += 1;
                                changed = true;
                            }
                        }
                    }
                    if changed {
                        updates.push((right_rel.clone(), right_rows));
                    }
                }
            }
        }
        for (rel, rows) in updates {
            instance.relation_mut(&rel)?.set_rows(rows);
        }
        Ok(filled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::{ConflictPolicy, RelationSchema, Schema};

    fn hospital() -> Instance {
        let doctor = RelationSchema::with_any_columns("Doctor", &["did", "specialty"])
            .primary_key(&["did"])
            .unwrap();
        let patient =
            RelationSchema::with_any_columns("Patient", &["pid", "disease", "treatment", "doctor"])
                .primary_key(&["pid"])
                .unwrap()
                .foreign_key(&["doctor"], "Doctor")
                .unwrap();
        let schema = Schema::from_relations(vec![doctor, patient]).unwrap();
        let mut inst = Instance::new(schema);
        inst.insert(
            "Doctor",
            sedex_storage::tuple!["doc1", Value::Null],
            ConflictPolicy::Reject,
        )
        .unwrap();
        inst.insert(
            "Patient",
            sedex_storage::tuple!["p1", Value::Null, "dialysis", "doc1"],
            ConflictPolicy::Reject,
        )
        .unwrap();
        inst.insert(
            "Patient",
            sedex_storage::tuple!["p2", "flu", "rest", "doc1"],
            ConflictPolicy::Reject,
        )
        .unwrap();
        inst
    }

    fn dialysis_cfd() -> Cfd {
        // Treat('dialysis' ⇒ 'kidney disease') — the paper's intra example.
        Cfd::Intra {
            relation: "Patient".into(),
            cond_col: "treatment".into(),
            cond_val: Value::text("dialysis"),
            det_col: "disease".into(),
            det_val: Value::text("kidney disease"),
        }
    }

    fn urologist_cfd() -> Cfd {
        // PATIENT.disease('kidney disease') ⇒ Doctor.Specialty('Urologist').
        Cfd::Inter {
            left_rel: "Patient".into(),
            left_col: "disease".into(),
            left_val: Value::text("kidney disease"),
            right_rel: "Doctor".into(),
            right_col: "specialty".into(),
            right_val: Value::text("Urologist"),
        }
    }

    #[test]
    fn intra_cfd_fills_null_determined_value() {
        let mut inst = hospital();
        let interp = CfdInterpreter::load([dialysis_cfd()]);
        let filled = interp.apply(&mut inst).unwrap();
        assert_eq!(filled, 1);
        let p1 = inst
            .relation("Patient")
            .unwrap()
            .lookup_pk(&[Value::text("p1")])
            .unwrap();
        assert_eq!(p1.values()[1], Value::text("kidney disease"));
        // p2's constant disease untouched.
        let p2 = inst
            .relation("Patient")
            .unwrap()
            .lookup_pk(&[Value::text("p2")])
            .unwrap();
        assert_eq!(p2.values()[1], Value::text("flu"));
    }

    #[test]
    fn inter_cfd_follows_foreign_key() {
        let mut inst = hospital();
        // Chain: dialysis ⇒ kidney disease (intra), then kidney disease ⇒
        // doctor is a Urologist (inter).
        let interp = CfdInterpreter::load([dialysis_cfd(), urologist_cfd()]);
        let filled = interp.apply(&mut inst).unwrap();
        assert_eq!(filled, 2);
        let doc = inst
            .relation("Doctor")
            .unwrap()
            .lookup_pk(&[Value::text("doc1")])
            .unwrap();
        assert_eq!(doc.values()[1], Value::text("Urologist"));
    }

    #[test]
    fn cfds_never_overwrite_constants() {
        let mut inst = hospital();
        let interp = CfdInterpreter::load([Cfd::Intra {
            relation: "Patient".into(),
            cond_col: "treatment".into(),
            cond_val: Value::text("rest"),
            det_col: "disease".into(),
            det_val: Value::text("SHOULD NOT APPEAR"),
        }]);
        interp.apply(&mut inst).unwrap();
        let p2 = inst
            .relation("Patient")
            .unwrap()
            .lookup_pk(&[Value::text("p2")])
            .unwrap();
        assert_eq!(p2.values()[1], Value::text("flu"));
    }

    #[test]
    fn parse_textual_format() {
        let text = "\n\
            # the paper's two examples\n\
            Patient.treatment = 'dialysis' => Patient.disease = 'kidney disease'\n\
            Patient.disease = 'kidney disease' => Doctor.specialty = 'Urologist'\n";
        let interp = CfdInterpreter::parse(text).unwrap();
        assert_eq!(interp.len(), 2);
        // Behaviourally identical to the hand-built interpreter.
        let mut inst = hospital();
        assert_eq!(interp.apply(&mut inst).unwrap(), 2);
        let doc = inst
            .relation("Doctor")
            .unwrap()
            .lookup_pk(&[Value::text("doc1")])
            .unwrap();
        assert_eq!(doc.values()[1], Value::text("Urologist"));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = CfdInterpreter::parse("Patient.x = 'a'").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("=>"));

        let e = CfdInterpreter::parse("\n\nnope => Doctor.s = 'x'").unwrap_err();
        assert_eq!(e.line, 3);

        let e = CfdInterpreter::parse("A.b = unquoted => C.d = 'x'").unwrap_err();
        assert!(e.message.contains("quoted"));
    }

    #[test]
    fn empty_interpreter_is_a_noop() {
        let mut inst = hospital();
        let before = inst.stats();
        let interp = CfdInterpreter::new();
        assert_eq!(interp.apply(&mut inst).unwrap(), 0);
        assert_eq!(inst.stats(), before);
    }
}
